//! # frost
//!
//! A from-scratch reproduction of *"Taming Undefined Behavior in LLVM"*
//! (Lee, Kim, Song, Hur, Das, Majnemer, Regehr, Lopes — PLDI 2017):
//! an LLVM-flavoured compiler whose IR carries the paper's *proposed*
//! undefined-behavior semantics — a single deferred-UB value
//! (`poison`), the new `freeze` instruction, and branch-on-poison as
//! immediate UB — together with the machinery to *evaluate* that
//! proposal the way the paper does.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! one roof.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ir`] | `frost-ir` | types, instructions, parser/printer, verifier, analyses |
//! | [`core`](mod@core) | `frost-core` | Figure 5 operational semantics, pluggable UB models, outcome enumeration |
//! | [`refine`] | `frost-refine` | Alive-style exhaustive refinement checking |
//! | [`opt`] | `frost-opt` | the optimizer: every §3/§5 pass in legacy and fixed variants |
//! | [`fuzz`] | `frost-fuzz` | opt-fuzz: exhaustive/random function generation + validation |
//! | [`backend`] | `frost-backend` | isel (freeze→copy, poison→pinned undef reg), regalloc, simulator |
//! | [`cc`] | `frost-cc` | mini-C frontend with the §5.3 bit-field freeze lowering |
//! | [`workloads`] | `frost-workloads` | SPEC-/LNT-shaped synthetic benchmark programs |
//! | [`telemetry`] | `frost-telemetry` | structured tracing, counters, JSONL artifact tooling |
//!
//! ## Quickstart
//!
//! ```
//! use frost::core::{enumerate_outcomes, Limits, Memory, Semantics};
//! use frost::ir::parse_module;
//! use frost::refine::{check_refinement, CheckOptions};
//!
//! // The §2.3 example: with nsw, `a + b > a` folds to `b > 0`.
//! let src = parse_module(
//!     "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %s = add nsw i4 %a, %b\n  %c = icmp sgt i4 %s, %a\n  ret i1 %c\n}",
//! )?;
//! let tgt = parse_module(
//!     "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %c = icmp sgt i4 %b, 0\n  ret i1 %c\n}",
//! )?;
//! assert!(check_refinement(&src, "f", &tgt, "f", &CheckOptions::new(Semantics::proposed()))
//!     .is_refinement());
//!
//! // freeze stops poison: all four i2 values are possible, never UB.
//! let m = parse_module("define i2 @g() {\nentry:\n  %x = freeze i2 poison\n  ret i2 %x\n}")?;
//! let outcomes =
//!     enumerate_outcomes(&m, "g", &[], &Memory::zeroed(0), Semantics::proposed(), Limits::default())?;
//! assert_eq!(outcomes.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

/// The IR: types, instructions, parser, printer, verifier, analyses.
pub use frost_ir as ir;

/// The executable semantics: Figure 5, UB models, outcome enumeration.
pub use frost_core as core;

/// Exhaustive refinement checking (translation validation).
pub use frost_refine as refine;

/// The optimizer: legacy and fixed pass variants.
pub use frost_opt as opt;

/// opt-fuzz: function generation and validation campaigns.
pub use frost_fuzz as fuzz;

/// The backend: instruction selection, register allocation, simulator.
pub use frost_backend as backend;

/// The mini-C frontend.
pub use frost_cc as cc;

/// Synthetic benchmark programs.
pub use frost_workloads as workloads;

/// The observability layer: spans, counters, telemetry artifacts (see
/// docs/OBSERVABILITY.md for the contract).
pub use frost_telemetry as telemetry;

/// The one-import working set: everything a typical check-an-optimization
/// or run-a-campaign program needs.
///
/// ```
/// use frost::prelude::*;
///
/// let report = Campaign::new(Semantics::proposed())
///     .with_workers(1)
///     .run_random(&GenConfig::arithmetic(2), 7, 20, |m| {
///         o2_pipeline(PipelineMode::Fixed).run(m);
///     });
/// assert!(report.is_clean(), "{report}");
///
/// // Everything above was metered: the campaign and every pass bumped
/// // their always-on counters (see docs/OBSERVABILITY.md).
/// assert!(telemetry::snapshot().counter("frost.fuzz.campaign.checked") >= 20);
/// ```
pub mod prelude {
    pub use frost_core::{
        enumerate_function, enumerate_outcomes, Engine, FrostError, Limits, Machine, Memory,
        ModulePlan, OutcomeCache, PlanCache, Semantics, Val,
    };
    pub use frost_fuzz::{
        enumerate_functions, random_functions, validate_transform, Campaign, CampaignCheckpoint,
        CampaignStats, GenConfig, Pruning, ValidationReport,
    };
    pub use frost_ir::{
        check_roundtrip, function_to_string, module_to_string, parse_function, parse_module,
        print_function, print_module, FunctionAnalysisManager, FunctionKey, Module,
        ModuleAnalysisManager, ParseError, PreservedAnalyses,
    };
    pub use frost_opt::{cleanup_pipeline, o2_pipeline, Pass, PassManager, PipelineMode};
    pub use frost_refine::{
        check_refinement, check_refinement_cached, check_transform, CheckOptions, CheckResult,
        InputOptions,
    };
    pub use frost_telemetry as telemetry;
}
