//! # frost-ir
//!
//! The intermediate representation of the *frost* compiler — a from-scratch
//! reproduction of the IR studied in *"Taming Undefined Behavior in LLVM"*
//! (Lee et al., PLDI 2017).
//!
//! The IR is LLVM-flavoured SSA over arbitrary-bitwidth integers, typed
//! pointers, and fixed-length vectors (Figure 4 of the paper). Its
//! distinguishing feature is first-class *deferred undefined behavior*:
//!
//! * the [`poison`](value::Constant::Poison) value — the single deferred-UB
//!   value of the paper's proposed semantics;
//! * the legacy [`undef`](value::Constant::Undef) value — retained so the
//!   pre-taming semantics, and the §3 inconsistencies between them, can be
//!   expressed and mechanically checked;
//! * the [`freeze`](inst::Inst::Freeze) instruction — the paper's new
//!   instruction that stops poison propagation by non-deterministically
//!   picking a defined value;
//! * the `nsw`/`nuw`/`exact` [attributes](inst::Flags) that turn overflow
//!   into poison.
//!
//! This crate holds the data model and the static side: types,
//! instructions, functions/modules, a [builder], a [verifier](verify),
//! the [textual form](text) (a byte-spanned lexer, a parser whose
//! errors render caret-underlined excerpts, and the canonical
//! pretty-printer, held to a `FunctionKey`-exact roundtrip), and the
//! analyses the optimizer needs ([CFG utilities](mod@cfg), [dominators](dom),
//! [natural loops](loops), [known bits](analysis::known_bits), and a small
//! [scalar evolution](analysis::scev)). The executable semantics live in
//! `frost-core`.
//!
//! ## Example
//!
//! ```
//! use frost_ir::{parse_function, Ty};
//!
//! let f = parse_function(
//!     r#"
//! define i32 @add_sat16(i32 %a, i32 %b) {
//! entry:
//!   %t0 = and i32 %a, 65535
//!   %t1 = and i32 %b, 65535
//!   %t2 = add nsw nuw i32 %t0, %t1
//!   ret i32 %t2
//! }
//! "#,
//! )?;
//! assert_eq!(f.ret_ty, Ty::i32());
//! assert_eq!(f.placed_inst_count(), 3);
//! # Ok::<(), frost_ir::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod cfg;
pub mod dom;
pub mod fingerprint;
pub mod function;
pub mod inst;
pub mod loops;
pub mod text;
pub mod types;
pub mod value;
pub mod verify;

pub use analysis::manager::{
    Analysis, AnalysisId, Cfg, CfgAnalysis, DomTreeAnalysis, FunctionAnalysisManager,
    LoopInfoAnalysis, ModuleAnalysisManager, PreservedAnalyses, UseCountsAnalysis,
};
pub use builder::FunctionBuilder;
pub use fingerprint::{FunctionKey, KeyDigest};
pub use function::{Block, DeclAttrs, FuncDecl, Function, Module, Param, UseCounts};
pub use inst::{
    Arity, BinOp, CastKind, Cond, Descriptor, Flags, Inst, Opcode, ResultKind, Terminator, UbClass,
};
pub use text::{
    check_roundtrip, function_to_string, module_to_string, parse_function, parse_module,
    print_function, print_module, ParseError, RoundtripError, Span,
};
pub use types::{Ty, MAX_INT_BITS, PTR_BITS};
pub use value::{BlockId, Constant, InstId, Value};
pub use verify::{verify_function, verify_function_legacy, verify_module, VerifyMode};
