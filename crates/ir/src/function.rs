//! Functions, basic blocks, and modules.
//!
//! A [`Function`] owns an arena of instructions ([`Inst`]) addressed by
//! [`InstId`]; each [`Block`] holds an ordered list of instruction ids
//! plus a [`Terminator`]. Block 0 is always the entry block. The IR is in
//! SSA form: every instruction result is defined exactly once, and uses
//! refer to definitions by [`InstId`].

use std::fmt;

use crate::inst::{Inst, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, InstId, Value};

/// A formal parameter of a function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter name (without the leading `%`).
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
}

/// A basic block: a label, straight-line instructions, and a terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Block label (without the trailing `:`).
    pub name: String,
    /// Instruction ids in execution order. Phis, if any, come first.
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block with the given label terminated by
    /// `unreachable` (callers are expected to set a real terminator).
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

/// Dense per-instruction use counts, indexed by [`InstId`].
///
/// Produced by [`Function::use_counts`]. Ids minted after the table was
/// computed read as zero, so a snapshot stays total while a pass appends
/// instructions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct UseCounts {
    counts: Vec<u32>,
}

impl UseCounts {
    /// The number of uses of `id`'s result.
    pub fn count(&self, id: InstId) -> u32 {
        self.counts.get(id.index()).copied().unwrap_or(0)
    }

    /// Whether `id`'s result is never used.
    pub fn is_unused(&self, id: InstId) -> bool {
        self.count(id) == 0
    }
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbol name (without the leading `@`).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret_ty: Ty,
    /// Basic blocks. `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Instruction arena. Blocks refer into this by [`InstId`]. Slots of
    /// deleted instructions may linger unreferenced; [`Function::compact`]
    /// garbage-collects them.
    pub insts: Vec<Inst>,
}

impl Function {
    /// Creates a function with an empty entry block.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Ty) -> Function {
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: vec![Block::new("entry")],
            insts: Vec::new(),
        }
    }

    /// The instruction behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// The block behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Ids of all blocks, in order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(name));
        id
    }

    /// Adds an instruction to the arena (without inserting it into a
    /// block) and returns its id.
    pub fn add_inst(&mut self, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        id
    }

    /// Appends an instruction to the end of `bb` and returns its id.
    pub fn append_inst(&mut self, bb: BlockId, inst: Inst) -> InstId {
        let id = self.add_inst(inst);
        self.block_mut(bb).insts.push(id);
        id
    }

    /// The type of a value in the context of this function.
    ///
    /// # Panics
    ///
    /// Panics if the value refers to an out-of-range argument or
    /// instruction.
    pub fn value_ty(&self, v: &Value) -> Ty {
        match v {
            Value::Inst(id) => self.inst(*id).result_ty(),
            Value::Arg(i) => self.params[*i as usize].ty.clone(),
            Value::Const(c) => c.ty(),
        }
    }

    /// Finds the block that contains instruction `id`, if it is placed.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|bb| self.block(*bb).insts.contains(&id))
    }

    /// Replaces every use of `from` (an instruction result) with `to`,
    /// across all instructions and terminators.
    pub fn replace_all_uses(&mut self, from: InstId, to: &Value) {
        let from_val = Value::Inst(from);
        for inst in &mut self.insts {
            inst.for_each_operand_mut(|op| {
                if *op == from_val {
                    *op = to.clone();
                }
            });
        }
        for block in &mut self.blocks {
            block.term.for_each_operand_mut(|op| {
                if *op == from_val {
                    *op = to.clone();
                }
            });
        }
    }

    /// Counts the uses of every instruction result (in other
    /// instructions and in terminators) as a dense table indexed by
    /// [`InstId`].
    pub fn use_counts(&self) -> UseCounts {
        let mut counts = vec![0u32; self.insts.len()];
        let mut bump = |v: &Value| {
            if let Value::Inst(id) = v {
                if let Some(c) = counts.get_mut(id.index()) {
                    *c += 1;
                }
            }
        };
        for bb in &self.blocks {
            for &id in &bb.insts {
                self.inst(id).for_each_operand(&mut bump);
            }
            bb.term.for_each_operand(&mut bump);
        }
        UseCounts { counts }
    }

    /// Total number of instructions currently placed in blocks.
    pub fn placed_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of placed `freeze` instructions.
    pub fn freeze_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|&&id| self.inst(id).is_freeze())
            .count()
    }

    /// Predecessor blocks of each block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bb in self.block_ids() {
            for succ in self.block(bb).term.successors() {
                preds[succ.index()].push(bb);
            }
        }
        preds
    }

    /// Garbage-collects unplaced arena slots and renumbers instructions
    /// densely. Phi incoming edges and all operands are rewritten.
    ///
    /// Returns the number of collected slots.
    pub fn compact(&mut self) -> usize {
        let mut placed = vec![false; self.insts.len()];
        for bb in &self.blocks {
            for &id in &bb.insts {
                placed[id.index()] = true;
            }
        }
        let mut remap: Vec<Option<InstId>> = vec![None; self.insts.len()];
        let mut new_insts = Vec::with_capacity(self.insts.len());
        for (i, inst) in self.insts.iter().enumerate() {
            if placed[i] {
                remap[i] = Some(InstId(new_insts.len() as u32));
                new_insts.push(inst.clone());
            }
        }
        let collected = self.insts.len() - new_insts.len();
        self.insts = new_insts;
        let remap_val = |v: &mut Value| {
            if let Value::Inst(id) = v {
                // Uses of unplaced instructions would be a verifier
                // error; map them best-effort to keep compaction total.
                if let Some(new_id) = remap[id.index()] {
                    *id = new_id;
                }
            }
        };
        for inst in &mut self.insts {
            inst.for_each_operand_mut(remap_val);
        }
        for block in &mut self.blocks {
            for id in &mut block.insts {
                *id = remap[id.index()].expect("placed instruction survives compaction");
            }
            block.term.for_each_operand_mut(remap_val);
        }
        collected
    }

    /// An estimate of the heap footprint of this function in bytes, used
    /// by the compile-time/memory evaluation (§7.2 "memory consumption").
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = size_of::<Function>();
        total += self.insts.capacity() * size_of::<Inst>();
        for b in &self.blocks {
            total += size_of::<Block>() + b.insts.capacity() * size_of::<InstId>() + b.name.len();
        }
        for p in &self.params {
            total += size_of::<Param>() + p.name.len();
        }
        total
    }
}

/// Attributes of an external function declaration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DeclAttrs {
    /// The function reads no memory and has no side effects; calls to it
    /// may be removed or duplicated if the result is unused/recomputed.
    pub readnone: bool,
    /// The function is guaranteed to return (no divergence, no exit).
    pub willreturn: bool,
}

/// An external function declaration (callee without a body).
#[derive(Clone, PartialEq, Debug)]
pub struct FuncDecl {
    /// Symbol name (without the leading `@`).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret_ty: Ty,
    /// Attributes.
    pub attrs: DeclAttrs,
}

/// A translation unit: function definitions plus external declarations.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Function definitions, in declaration order.
    pub functions: Vec<Function>,
    /// External declarations.
    pub declarations: Vec<FuncDecl>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Looks up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function definition by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up an external declaration by name.
    pub fn declaration(&self, name: &str) -> Option<&FuncDecl> {
        self.declarations.iter().find(|d| d.name == name)
    }

    /// The signature (param types, return type) of a callee, whether
    /// defined or declared.
    pub fn callee_signature(&self, name: &str) -> Option<(Vec<Ty>, Ty)> {
        if let Some(f) = self.function(name) {
            return Some((
                f.params.iter().map(|p| p.ty.clone()).collect(),
                f.ret_ty.clone(),
            ));
        }
        self.declaration(name)
            .map(|d| (d.params.clone(), d.ret_ty.clone()))
    }

    /// Total placed instructions across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::placed_inst_count).sum()
    }

    /// Total placed `freeze` instructions across all functions.
    pub fn freeze_count(&self) -> usize {
        self.functions.iter().map(Function::freeze_count).sum()
    }

    /// An estimate of the heap footprint of the module in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.functions.iter().map(Function::approx_bytes).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::text::print_module(self, f)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::text::print_function(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Flags};

    fn simple_fn() -> Function {
        let mut f = Function::new(
            "f",
            vec![Param {
                name: "x".into(),
                ty: Ty::i32(),
            }],
            Ty::i32(),
        );
        let a = f.append_inst(
            BlockId::ENTRY,
            Inst::Bin {
                op: BinOp::Add,
                flags: Flags::NSW,
                ty: Ty::i32(),
                lhs: Value::Arg(0),
                rhs: Value::int(32, 1),
            },
        );
        f.block_mut(BlockId::ENTRY).term = Terminator::Ret(Some(Value::Inst(a)));
        f
    }

    #[test]
    fn build_and_query() {
        let f = simple_fn();
        assert_eq!(f.placed_inst_count(), 1);
        assert_eq!(f.value_ty(&Value::Arg(0)), Ty::i32());
        assert_eq!(f.value_ty(&Value::Inst(InstId(0))), Ty::i32());
        assert_eq!(f.block_of(InstId(0)), Some(BlockId::ENTRY));
    }

    #[test]
    fn replace_all_uses_rewrites_terminator() {
        let mut f = simple_fn();
        f.replace_all_uses(InstId(0), &Value::int(32, 7));
        match &f.block(BlockId::ENTRY).term {
            Terminator::Ret(Some(v)) => assert!(v.is_int_const(7)),
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    #[test]
    fn use_counts_cover_terminators() {
        let f = simple_fn();
        let counts = f.use_counts();
        assert_eq!(counts.count(InstId(0)), 1);
        assert!(!counts.is_unused(InstId(0)));
    }

    #[test]
    fn compact_collects_unplaced() {
        let mut f = simple_fn();
        // Add an instruction to the arena but never place it.
        let dead = f.add_inst(Inst::Freeze {
            ty: Ty::i32(),
            val: Value::Arg(0),
        });
        assert_eq!(dead, InstId(1));
        assert_eq!(f.compact(), 1);
        assert_eq!(f.insts.len(), 1);
        assert_eq!(f.placed_inst_count(), 1);
        // The surviving instruction is still referenced by the ret.
        match &f.block(BlockId::ENTRY).term {
            Terminator::Ret(Some(Value::Inst(id))) => assert_eq!(*id, InstId(0)),
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    #[test]
    fn predecessors_follow_edges() {
        let mut f = Function::new("g", vec![], Ty::Void);
        let b1 = f.add_block("left");
        let b2 = f.add_block("right");
        let b3 = f.add_block("join");
        f.block_mut(BlockId::ENTRY).term = Terminator::Br {
            cond: Value::bool(true),
            then_bb: b1,
            else_bb: b2,
        };
        f.block_mut(b1).term = Terminator::Jmp(b3);
        f.block_mut(b2).term = Terminator::Jmp(b3);
        f.block_mut(b3).term = Terminator::Ret(None);
        let preds = f.predecessors();
        assert!(preds[BlockId::ENTRY.index()].is_empty());
        assert_eq!(preds[b3.index()], vec![b1, b2]);
    }

    #[test]
    fn module_lookup_and_counts() {
        let mut m = Module::new();
        m.functions.push(simple_fn());
        m.declarations.push(FuncDecl {
            name: "ext".into(),
            params: vec![Ty::i32()],
            ret_ty: Ty::Void,
            attrs: DeclAttrs::default(),
        });
        assert!(m.function("f").is_some());
        assert!(m.function("missing").is_none());
        assert_eq!(m.inst_count(), 1);
        assert_eq!(m.freeze_count(), 0);
        let (params, ret) = m.callee_signature("ext").unwrap();
        assert_eq!(params, vec![Ty::i32()]);
        assert_eq!(ret, Ty::Void);
        let (params, ret) = m.callee_signature("f").unwrap();
        assert_eq!(params, vec![Ty::i32()]);
        assert_eq!(ret, Ty::i32());
    }
}
