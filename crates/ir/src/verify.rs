//! The IR verifier: structural, type, and SSA-dominance checking.
//!
//! The verifier has two modes mirroring the paper: the *legacy* mode
//! accepts both `undef` and `poison` constants, while the *proposed* mode
//! rejects `undef` (the paper's semantics removes it, §4).

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::function::{Function, Module};
use crate::inst::{Inst, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, Constant, InstId, Value};

/// Which deferred-UB values the verifier admits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyMode {
    /// Accept `undef` and `poison` (pre-taming LLVM).
    Legacy,
    /// Accept only `poison`; `undef` is a verifier error (§4 of the
    /// paper).
    Proposed,
}

/// Verifies a function under the proposed (undef-free) semantics.
///
/// # Errors
///
/// Returns the list of diagnostics if the function is ill-formed.
pub fn verify_function(func: &Function) -> Result<(), Vec<String>> {
    verify_function_mode(func, VerifyMode::Proposed)
}

/// Verifies a function under the legacy semantics (undef admitted).
///
/// # Errors
///
/// Returns the list of diagnostics if the function is ill-formed.
pub fn verify_function_legacy(func: &Function) -> Result<(), Vec<String>> {
    verify_function_mode(func, VerifyMode::Legacy)
}

/// Verifies a function under an explicit mode.
///
/// # Errors
///
/// Returns the list of diagnostics if the function is ill-formed.
pub fn verify_function_mode(func: &Function, mode: VerifyMode) -> Result<(), Vec<String>> {
    let mut v = Verifier {
        func,
        mode,
        errors: Vec::new(),
    };
    v.run();
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

/// Verifies every function in a module plus cross-function call
/// signatures.
///
/// # Errors
///
/// Returns diagnostics prefixed with the offending function's name.
pub fn verify_module(module: &Module, mode: VerifyMode) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let mut names = HashSet::new();
    for f in &module.functions {
        if !names.insert(f.name.as_str()) {
            errors.push(format!("duplicate definition of @{}", f.name));
        }
        if let Err(errs) = verify_function_mode(f, mode) {
            errors.extend(errs.into_iter().map(|e| format!("@{}: {e}", f.name)));
        }
        // Check call signatures against the module.
        for bb in f.block_ids() {
            for &id in &f.block(bb).insts {
                if let Inst::Call {
                    ret_ty,
                    callee,
                    arg_tys,
                    ..
                } = f.inst(id)
                {
                    match module.callee_signature(callee) {
                        None => {
                            errors.push(format!("@{}: call to unknown @{callee}", f.name));
                        }
                        Some((params, ret)) => {
                            if params != *arg_tys || ret != *ret_ty {
                                errors.push(format!(
                                    "@{}: call to @{callee} does not match its signature",
                                    f.name
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    for d in &module.declarations {
        if !names.insert(d.name.as_str()) {
            errors.push(format!("duplicate symbol @{}", d.name));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

struct Verifier<'a> {
    func: &'a Function,
    mode: VerifyMode,
    errors: Vec<String>,
}

impl<'a> Verifier<'a> {
    fn err(&mut self, msg: String) {
        self.errors.push(msg);
    }

    fn run(&mut self) {
        if self.func.blocks.is_empty() {
            self.err("function has no blocks".to_string());
            return;
        }
        self.check_block_structure();
        self.check_types();
        if self.errors.is_empty() {
            // Dominance checking assumes structure/types are sane.
            self.check_dominance();
        }
    }

    fn check_block_structure(&mut self) {
        let mut names = HashSet::new();
        let mut placement: HashMap<InstId, BlockId> = HashMap::new();
        for bb in self.func.block_ids() {
            let block = self.func.block(bb);
            if block.name.is_empty() {
                self.err(format!("block {bb} has an empty name"));
            }
            if !names.insert(block.name.clone()) {
                self.err(format!("duplicate block name '{}'", block.name));
            }
            for &id in &block.insts {
                if id.index() >= self.func.insts.len() {
                    self.err(format!(
                        "{id} referenced by block '{}' is out of bounds",
                        block.name
                    ));
                    continue;
                }
                if let Some(prev) = placement.insert(id, bb) {
                    self.err(format!("{id} placed in both {prev} and {bb}"));
                }
            }
            for succ in block.term.successors() {
                if succ.index() >= self.func.blocks.len() {
                    self.err(format!(
                        "block '{}' branches to out-of-bounds {succ}",
                        block.name
                    ));
                }
            }
            // Phis must be a prefix of the block.
            let mut seen_non_phi = false;
            for &id in &block.insts {
                if id.index() >= self.func.insts.len() {
                    continue;
                }
                match self.func.inst(id) {
                    Inst::Phi { .. } if seen_non_phi => {
                        self.err(format!(
                            "phi {id} is not at the start of block '{}'",
                            block.name
                        ));
                    }
                    Inst::Phi { .. } => {}
                    _ => seen_non_phi = true,
                }
            }
        }
    }

    fn operand_ty(&mut self, where_: &str, v: &Value) -> Option<Ty> {
        match v {
            Value::Inst(id) => {
                if id.index() >= self.func.insts.len() {
                    self.err(format!("{where_}: operand {id} is out of bounds"));
                    return None;
                }
                let ty = self.func.inst(*id).result_ty();
                if ty.is_void() {
                    self.err(format!("{where_}: operand {id} has void type"));
                    return None;
                }
                Some(ty)
            }
            Value::Arg(i) => {
                if *i as usize >= self.func.params.len() {
                    self.err(format!("{where_}: argument index {i} out of range"));
                    return None;
                }
                Some(self.func.params[*i as usize].ty.clone())
            }
            Value::Const(c) => {
                if self.mode == VerifyMode::Proposed && c.contains_undef() {
                    self.err(format!(
                        "{where_}: undef constant is not permitted under the proposed semantics"
                    ));
                }
                if let Constant::Null(ty) = c {
                    if !ty.is_ptr() {
                        self.err(format!("{where_}: null constant must have pointer type"));
                    }
                }
                Some(c.ty())
            }
        }
    }

    fn expect_ty(&mut self, where_: &str, v: &Value, expected: &Ty) {
        if let Some(actual) = self.operand_ty(where_, v) {
            if actual != *expected {
                self.err(format!(
                    "{where_}: expected type {expected}, found {actual}"
                ));
            }
        }
    }

    fn check_types(&mut self) {
        let preds = self.func.predecessors();
        for bb in self.func.block_ids() {
            let block = self.func.block(bb);
            for &id in &block.insts {
                if id.index() >= self.func.insts.len() {
                    continue;
                }
                self.check_inst(id, bb, &preds);
            }
            let where_ = format!("terminator of '{}'", block.name);
            match &block.term {
                Terminator::Ret(Some(v)) => {
                    let ret_ty = self.func.ret_ty.clone();
                    if ret_ty.is_void() {
                        self.err(format!("{where_}: ret with value in a void function"));
                    } else {
                        self.expect_ty(&where_, v, &ret_ty);
                    }
                }
                Terminator::Ret(None) => {
                    if !self.func.ret_ty.is_void() {
                        self.err(format!("{where_}: ret void in a non-void function"));
                    }
                }
                Terminator::Br { cond, .. } => {
                    self.expect_ty(&where_, cond, &Ty::i1());
                }
                Terminator::Jmp(_) | Terminator::Unreachable => {}
            }
        }
    }

    fn check_inst(&mut self, id: InstId, bb: BlockId, preds: &[Vec<BlockId>]) {
        let inst = self.func.inst(id).clone();
        let where_ = format!("{id} ({})", inst.mnemonic());
        // Generic checks driven by the descriptor table; rows that are
        // fully described there (the guards) need no dedicated arm in
        // the per-variant match below.
        let desc = inst.descriptor();
        if desc.bool_operands {
            for v in inst.operands() {
                self.expect_ty(&where_, &v, &Ty::i1());
            }
        }
        if let crate::inst::Arity::Fixed(n) = desc.arity {
            debug_assert_eq!(
                inst.operands().len(),
                n as usize,
                "{where_}: arity drifted from the descriptor table"
            );
        }
        match &inst {
            Inst::Bin {
                op,
                flags,
                ty,
                lhs,
                rhs,
            } => {
                if !ty.scalar_ty().is_int() {
                    self.err(format!("{where_}: operand type {ty} is not integer"));
                }
                self.expect_ty(&where_, lhs, ty);
                self.expect_ty(&where_, rhs, ty);
                if (flags.nsw || flags.nuw) && !op.supports_wrap_flags() {
                    self.err(format!("{where_}: nsw/nuw not supported by {op}"));
                }
                if flags.exact && !op.supports_exact() {
                    self.err(format!("{where_}: exact not supported by {op}"));
                }
            }
            Inst::Icmp { ty, lhs, rhs, .. } => {
                if !ty.scalar_ty().is_int() && !ty.scalar_ty().is_ptr() {
                    self.err(format!("{where_}: cannot compare values of type {ty}"));
                }
                self.expect_ty(&where_, lhs, ty);
                self.expect_ty(&where_, rhs, ty);
            }
            Inst::Select {
                cond,
                ty,
                tval,
                fval,
            } => {
                self.expect_ty(&where_, cond, &Ty::i1());
                self.expect_ty(&where_, tval, ty);
                self.expect_ty(&where_, fval, ty);
            }
            Inst::Phi { ty, incoming } => {
                let expected: HashSet<BlockId> = preds[bb.index()].iter().copied().collect();
                let mut seen = HashSet::new();
                for (v, from) in incoming {
                    self.expect_ty(&where_, v, ty);
                    if !expected.contains(from) {
                        self.err(format!(
                            "{where_}: incoming block {from} is not a predecessor of {bb}"
                        ));
                    }
                    if !seen.insert(*from) {
                        self.err(format!("{where_}: duplicate incoming block {from}"));
                    }
                }
                for p in &expected {
                    if !seen.contains(p) {
                        self.err(format!(
                            "{where_}: missing incoming value for predecessor {p}"
                        ));
                    }
                }
            }
            Inst::Freeze { ty, val } => {
                self.expect_ty(&where_, val, ty);
            }
            Inst::Cast {
                kind,
                from_ty,
                to_ty,
                val,
            } => {
                self.expect_ty(&where_, val, from_ty);
                let ok = match (from_ty.scalar_ty(), to_ty.scalar_ty()) {
                    (Ty::Int(a), Ty::Int(b)) => match kind {
                        crate::inst::CastKind::Trunc => b < a,
                        _ => b > a,
                    },
                    _ => false,
                };
                let same_shape = from_ty.vector_len() == to_ty.vector_len();
                if !ok || !same_shape {
                    self.err(format!(
                        "{where_}: invalid {kind} from {from_ty} to {to_ty}"
                    ));
                }
            }
            Inst::Bitcast {
                from_ty,
                to_ty,
                val,
            } => {
                self.expect_ty(&where_, val, from_ty);
                if from_ty.bitwidth() != to_ty.bitwidth() {
                    self.err(format!(
                        "{where_}: bitcast between different widths ({} vs {})",
                        from_ty.bitwidth(),
                        to_ty.bitwidth()
                    ));
                }
            }
            Inst::Gep {
                elem_ty,
                base,
                idx_ty,
                idx,
                ..
            } => {
                self.expect_ty(&where_, base, &Ty::ptr_to(elem_ty.clone()));
                if !idx_ty.is_int() {
                    self.err(format!(
                        "{where_}: gep index must be an integer, got {idx_ty}"
                    ));
                }
                self.expect_ty(&where_, idx, idx_ty);
            }
            Inst::Load { ty, ptr } => {
                self.expect_ty(&where_, ptr, &Ty::ptr_to(ty.clone()));
            }
            Inst::Store { ty, val, ptr } => {
                self.expect_ty(&where_, val, ty);
                self.expect_ty(&where_, ptr, &Ty::ptr_to(ty.clone()));
            }
            Inst::ExtractElement {
                elem_ty,
                len,
                vec,
                idx,
            } => {
                self.expect_ty(&where_, vec, &Ty::vector(*len, elem_ty.clone()));
                self.check_lane_index(&where_, idx, *len);
            }
            Inst::InsertElement {
                elem_ty,
                len,
                vec,
                elt,
                idx,
            } => {
                self.expect_ty(&where_, vec, &Ty::vector(*len, elem_ty.clone()));
                self.expect_ty(&where_, elt, elem_ty);
                self.check_lane_index(&where_, idx, *len);
            }
            Inst::Call { args, arg_tys, .. } => {
                if args.len() != arg_tys.len() {
                    self.err(format!("{where_}: argument count mismatch"));
                }
                for (a, ty) in args.iter().zip(arg_tys) {
                    self.expect_ty(&where_, a, ty);
                }
            }
            Inst::Alloca { ty } if ty.is_void() || ty.byte_size() == 0 => {
                self.err(format!("{where_}: cannot allocate unsized type {ty}"));
            }
            Inst::PtrToInt {
                from_ty,
                to_ty,
                val,
            } => {
                if !from_ty.is_ptr() {
                    self.err(format!(
                        "{where_}: ptrtoint source must be a pointer, got {from_ty}"
                    ));
                }
                if *to_ty != Ty::Int(crate::types::PTR_BITS) {
                    self.err(format!(
                        "{where_}: ptrtoint result must be i{} (the pointer width), got {to_ty}",
                        crate::types::PTR_BITS
                    ));
                }
                self.expect_ty(&where_, val, from_ty);
            }
            Inst::IntToPtr {
                from_ty,
                to_ty,
                val,
            } => {
                if *from_ty != Ty::Int(crate::types::PTR_BITS) {
                    self.err(format!(
                        "{where_}: inttoptr source must be i{} (the pointer width), got {from_ty}",
                        crate::types::PTR_BITS
                    ));
                }
                if !to_ty.is_ptr() {
                    self.err(format!(
                        "{where_}: inttoptr result must be a pointer, got {to_ty}"
                    ));
                }
                self.expect_ty(&where_, val, from_ty);
            }
            // Instructions whose typing rules live entirely in the
            // descriptor table (`assume`: one i1 operand, void result)
            // were already checked generically above.
            _ => {}
        }
    }

    fn check_lane_index(&mut self, where_: &str, idx: &Value, len: u32) {
        match idx.as_int_const() {
            Some(i) if i < u128::from(len) => {}
            Some(i) => self.err(format!("{where_}: lane index {i} out of range (< {len})")),
            None => self.err(format!("{where_}: lane index must be an integer constant")),
        }
    }

    fn check_dominance(&mut self) {
        let dt = DomTree::compute(self.func);
        // Map each placed instruction to (block, position).
        let mut place: HashMap<InstId, (BlockId, usize)> = HashMap::new();
        for bb in self.func.block_ids() {
            for (i, &id) in self.func.block(bb).insts.iter().enumerate() {
                place.insert(id, (bb, i));
            }
        }

        let check_use = |v: &Value,
                         user_bb: BlockId,
                         user_pos: usize,
                         errors: &mut Vec<String>,
                         label: &str| {
            let Value::Inst(def) = v else { return };
            let Some(&(def_bb, def_pos)) = place.get(def) else {
                errors.push(format!("{label}: uses unplaced instruction {def}"));
                return;
            };
            if !dt.is_reachable(user_bb) {
                return; // uses in unreachable code are not constrained
            }
            let ok = if def_bb == user_bb {
                def_pos < user_pos
            } else {
                dt.strictly_dominates(def_bb, user_bb)
            };
            if !ok {
                errors.push(format!(
                    "{label}: use of {def} is not dominated by its definition"
                ));
            }
        };

        for bb in self.func.block_ids() {
            let block = self.func.block(bb);
            for (pos, &id) in block.insts.iter().enumerate() {
                let inst = self.func.inst(id);
                let label = format!("{id} ({})", inst.mnemonic());
                if let Inst::Phi { incoming, .. } = inst {
                    // A phi use must dominate the end of the incoming
                    // block, not the phi itself.
                    for (v, from) in incoming {
                        let Value::Inst(def) = v else { continue };
                        let Some(&(def_bb, _)) = place.get(def) else {
                            self.errors
                                .push(format!("{label}: uses unplaced instruction {def}"));
                            continue;
                        };
                        if !dt.is_reachable(*from) {
                            continue;
                        }
                        if !dt.dominates(def_bb, *from) {
                            self.errors.push(format!(
                                "{label}: incoming value {def} does not dominate edge from {from}"
                            ));
                        }
                    }
                } else {
                    inst.for_each_operand(|v| {
                        check_use(v, bb, pos, &mut self.errors, &label);
                    });
                }
            }
            let n = block.insts.len();
            block.term.for_each_operand(|v| {
                check_use(
                    v,
                    bb,
                    n,
                    &mut self.errors,
                    &format!("terminator of '{}'", block.name),
                );
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Cond, Flags};

    fn assert_error_containing(result: Result<(), Vec<String>>, needle: &str) {
        match result {
            Ok(()) => panic!("expected verification failure mentioning '{needle}'"),
            Err(errs) => assert!(
                errs.iter().any(|e| e.contains(needle)),
                "no diagnostic contains '{needle}': {errs:?}"
            ),
        }
    }

    #[test]
    fn accepts_well_formed_function() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i32());
        let a = b.add_flags(Flags::NSW, b.arg(0), b.const_int(32, 1));
        b.ret(a);
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_undef_in_proposed_mode() {
        let mut b = FunctionBuilder::new("f", &[], Ty::i32());
        let u = b.undef(Ty::i32());
        let a = b.add(u, b.const_int(32, 1));
        b.ret(a);
        let f = b.finish();
        assert!(verify_function_legacy(&f).is_ok());
        assert_error_containing(verify_function(&f), "undef");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i32());
        // Manually construct an add with mismatched operand types.
        let id = b.func().insts.len();
        assert_eq!(id, 0);
        let a = b.add(b.arg(0), b.const_int(8, 1));
        b.ret(a);
        assert_error_containing(verify_function(&b.finish()), "expected type i32");
    }

    #[test]
    fn rejects_flags_on_unsupported_op() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i32());
        let a = b.bin(BinOp::And, Flags::NSW, b.arg(0), b.const_int(32, 1));
        b.ret(a);
        assert_error_containing(verify_function(&b.finish()), "nsw/nuw not supported");
    }

    #[test]
    fn rejects_use_before_def() {
        use crate::inst::Inst;
        use crate::value::InstId;
        let mut f = Function::new(
            "f",
            vec![crate::function::Param {
                name: "x".into(),
                ty: Ty::i32(),
            }],
            Ty::i32(),
        );
        // %t0 uses %t1 which is defined after it.
        let t0 = f.add_inst(Inst::Bin {
            op: BinOp::Add,
            flags: Flags::NONE,
            ty: Ty::i32(),
            lhs: Value::Inst(InstId(1)),
            rhs: Value::int(32, 1),
        });
        let t1 = f.add_inst(Inst::Bin {
            op: BinOp::Add,
            flags: Flags::NONE,
            ty: Ty::i32(),
            lhs: Value::Arg(0),
            rhs: Value::int(32, 2),
        });
        f.block_mut(BlockId::ENTRY).insts = vec![t0, t1];
        f.block_mut(BlockId::ENTRY).term = Terminator::Ret(Some(Value::Inst(t1)));
        assert_error_containing(verify_function(&f), "not dominated");
    }

    #[test]
    fn rejects_bad_phi_edges() {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::i1())], Ty::i32());
        let t = b.block("t");
        let j = b.block("j");
        b.br(b.arg(0), t, j);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(j);
        // Missing the incoming edge from entry.
        let p = b.phi(Ty::i32(), vec![(Value::int(32, 1), t)]);
        b.ret(p);
        assert_error_containing(verify_function(&b.finish()), "missing incoming");
    }

    #[test]
    fn rejects_branch_on_non_bool() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::Void);
        let t = b.block("t");
        b.br(b.arg(0), t, t);
        b.switch_to(t);
        b.ret_void();
        assert_error_containing(verify_function(&b.finish()), "expected type i1");
    }

    #[test]
    fn rejects_lane_index_out_of_range() {
        let vty = Ty::vector(2, Ty::Int(16));
        let mut b = FunctionBuilder::new("f", &[("v", vty)], Ty::Int(16));
        let e = b.extractelement(b.arg(0), b.const_int(32, 5));
        b.ret(e);
        assert_error_containing(verify_function(&b.finish()), "lane index 5 out of range");
    }

    #[test]
    fn rejects_invalid_cast_direction() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i64());
        let t = b.trunc(b.arg(0), Ty::i64());
        b.ret(t);
        assert_error_containing(verify_function(&b.finish()), "invalid trunc");
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i32());
        let a = b.add(b.arg(0), b.const_int(32, 1));
        let p = b.phi(Ty::i32(), vec![]);
        let _ = p;
        b.ret(a);
        assert_error_containing(verify_function(&b.finish()), "not at the start");
    }

    #[test]
    fn module_checks_call_signatures() {
        let mut b = FunctionBuilder::new("caller", &[("x", Ty::i32())], Ty::Void);
        let _ = b.call(Ty::i32(), "g", vec![b.arg(0)]);
        b.ret_void();
        let mut m = Module::new();
        m.functions.push(b.finish());
        assert_error_containing(verify_module(&m, VerifyMode::Proposed), "unknown @g");

        m.declarations.push(crate::function::FuncDecl {
            name: "g".into(),
            params: vec![Ty::i32()],
            ret_ty: Ty::i32(),
            attrs: Default::default(),
        });
        assert!(verify_module(&m, VerifyMode::Proposed).is_ok());

        m.declarations[0].ret_ty = Ty::i64();
        assert_error_containing(
            verify_module(&m, VerifyMode::Proposed),
            "does not match its signature",
        );
    }

    #[test]
    fn accepts_memory_instructions() {
        let mut b = FunctionBuilder::new("f", &[], Ty::i8());
        let p = b.alloca(Ty::i8());
        b.store(b.const_int(8, 7), p.clone());
        let addr = b.ptrtoint(p, Ty::i32());
        let q = b.inttoptr(addr, Ty::ptr_to(Ty::i8()));
        let v = b.load(Ty::i8(), q);
        b.ret(v);
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_bad_cast_widths_for_memory_casts() {
        // ptrtoint must produce exactly the pointer width (i32).
        let mut b = FunctionBuilder::new("f", &[], Ty::i64());
        let p = b.alloca(Ty::i8());
        let a = b.ptrtoint(p, Ty::i64());
        b.ret(a);
        assert_error_containing(verify_function(&b.finish()), "ptrtoint result must be i32");

        // inttoptr must consume exactly the pointer width (i32).
        let mut b = FunctionBuilder::new("g", &[("x", Ty::i64())], Ty::i8());
        let q = b.inttoptr(b.arg(0), Ty::ptr_to(Ty::i8()));
        let v = b.load(Ty::i8(), q);
        b.ret(v);
        assert_error_containing(verify_function(&b.finish()), "inttoptr source must be i32");

        // ptrtoint source must be a pointer.
        let mut b = FunctionBuilder::new("h", &[("x", Ty::i32())], Ty::i32());
        let id = b.func().insts.len();
        assert_eq!(id, 0);
        let a = b.ptrtoint(b.arg(0), Ty::i32());
        b.ret(a);
        assert_error_containing(
            verify_function(&b.finish()),
            "ptrtoint source must be a pointer",
        );
    }

    #[test]
    fn rejects_alloca_of_unsized_type() {
        let mut b = FunctionBuilder::new("f", &[], Ty::Void);
        let _ = b.alloca(Ty::Void);
        b.ret_void();
        assert_error_containing(verify_function(&b.finish()), "cannot allocate unsized");
    }

    #[test]
    fn verifies_icmp_result_used_as_branch() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i32());
        let t = b.block("t");
        let e = b.block("e");
        let c = b.icmp(Cond::Sgt, b.arg(0), b.const_int(32, 0));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(b.const_int(32, 1));
        b.switch_to(e);
        b.ret(b.const_int(32, 0));
        assert!(verify_function(&b.finish()).is_ok());
    }
}
