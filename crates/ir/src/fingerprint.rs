//! Structural function fingerprints for cache keys.
//!
//! A [`FunctionKey`] is an exact canonical encoding of a function body
//! as a word sequence. Two functions receive equal keys if and only if
//! they are α-equivalent: identical up to the spelling of the function
//! name, parameter names, block labels, and the numbering of the
//! instruction arena (instructions are renumbered by placement order).
//! Everything that affects execution — types, opcodes, attributes,
//! constants, operand wiring, block structure, callee names — is
//! encoded verbatim, so key equality is structural equality and
//! collisions are impossible. None of the α-renamed parts can be
//! observed by the executable semantics, which makes the key safe to
//! use for memoizing *semantic* artifacts (outcome enumerations,
//! compiled execution plans).
//!
//! The encoding is a prefix code: every variant is tagged and every
//! variable-length list is preceded by its length, so distinct bodies
//! cannot serialize to the same word sequence. A 64-bit mix of the
//! words is precomputed and used as the `Hash` value, making hash-map
//! probes O(1) in the body size; full-word comparison only happens on
//! bucket collisions.

use std::hash::{Hash, Hasher};

use crate::function::Function;
use crate::inst::{Inst, Terminator};
use crate::types::Ty;
use crate::value::{Constant, Value};

/// The exact structural fingerprint of one [`Function`] body. See the
/// [module docs](self) for the equivalence it induces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionKey {
    /// Precomputed mix of `data`; equal data implies equal hash.
    hash: u64,
    /// The canonical prefix-coded encoding of the body.
    data: Box<[u64]>,
}

impl FunctionKey {
    /// Computes the fingerprint of `f`.
    pub fn of(f: &Function) -> FunctionKey {
        let mut enc = Encoder {
            out: Vec::with_capacity(16 + 6 * f.insts.len()),
            remap: vec![u64::MAX; f.insts.len()],
        };
        // Renumber instructions by placement order so arena numbering
        // (which passes churn) does not leak into the key.
        let mut next = 0u64;
        for b in &f.blocks {
            for id in &b.insts {
                if let Some(slot) = enc.remap.get_mut(id.index()) {
                    if *slot == u64::MAX {
                        *slot = next;
                        next += 1;
                    }
                }
            }
        }
        enc.ty(&f.ret_ty);
        enc.push(f.params.len() as u64);
        for p in &f.params {
            enc.ty(&p.ty);
        }
        enc.push(f.blocks.len() as u64);
        for b in &f.blocks {
            enc.push(b.insts.len() as u64);
            for id in &b.insts {
                enc.inst(f.inst(*id));
            }
            enc.term(&b.term);
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &w in &enc.out {
            hash = mix(hash ^ w);
        }
        FunctionKey {
            hash,
            data: enc.out.into_boxed_slice(),
        }
    }

    /// Length of the encoding in 64-bit words (size diagnostics).
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// The canonical encoding as a word slice, for serializing the key
    /// (campaign checkpoints persist their dedup sets this way).
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Rebuilds a key from a word sequence produced by
    /// [`FunctionKey::as_words`]; the hash is recomputed, so a
    /// round-tripped key equals (and hashes like) the original.
    pub fn from_words(words: Vec<u64>) -> FunctionKey {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &w in &words {
            hash = mix(hash ^ w);
        }
        FunctionKey {
            hash,
            data: words.into_boxed_slice(),
        }
    }

    /// The compact 128-bit digest of this key: the precomputed 64-bit
    /// probe hash plus an independently-seeded 64-bit verifier word.
    /// Dedup sets that would otherwise hold millions of full encodings
    /// (tens of words each) store [`KeyDigest`]s instead — 16 bytes per
    /// function — and rely on the verifier half to reject probe-hash
    /// collisions; see [`KeyDigest`] for the guarantee.
    pub fn digest(&self) -> KeyDigest {
        let mut verify = 0x9e37_79b9_7f4a_7c15u64;
        for &w in self.data.iter() {
            verify = mix(verify.rotate_left(23) ^ w);
        }
        KeyDigest {
            hash: self.hash,
            verify,
        }
    }
}

/// A fixed-size stand-in for a [`FunctionKey`] in large dedup sets.
///
/// `hash` is the key's precomputed 64-bit probe hash (the same value
/// [`Hash`] writes), `verify` a second 64-bit mix of the encoding under
/// an independent seed and word schedule. Two α-distinct functions
/// collide only if both mixes collide simultaneously — for a corpus of
/// `n` functions the expected number of false merges is about
/// `n² / 2¹²⁹`, far below one for any campaign that fits on hardware.
/// Unlike the full key, a digest cannot be decoded back into a body;
/// it exists purely so multi-hundred-million-function sweeps can keep
/// their dedup set (and its checkpoint serialization) bounded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KeyDigest {
    /// The key's precomputed probe hash.
    pub hash: u64,
    /// The independently-seeded verifier mix.
    pub verify: u64,
}

impl Hash for FunctionKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `hash` is a pure function of `data`, so equal keys write equal
        // words — the `Eq`/`Hash` contract holds.
        state.write_u64(self.hash);
    }
}

/// The 64-bit finalizer of splitmix64 — a full-avalanche mix.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct Encoder {
    out: Vec<u64>,
    /// Arena index → placement order, `u64::MAX` for unplaced slots.
    remap: Vec<u64>,
}

impl Encoder {
    fn push(&mut self, w: u64) {
        self.out.push(w);
    }

    fn ty(&mut self, ty: &Ty) {
        match ty {
            Ty::Int(bits) => {
                self.push(0);
                self.push(*bits as u64);
            }
            Ty::Ptr(pointee) => {
                self.push(1);
                self.ty(pointee);
            }
            Ty::Vector { elems, elem } => {
                self.push(2);
                self.push(*elems as u64);
                self.ty(elem);
            }
            Ty::Void => self.push(3),
        }
    }

    fn constant(&mut self, c: &Constant) {
        match c {
            Constant::Int { bits, value } => {
                self.push(0);
                self.push(*bits as u64);
                self.push(*value as u64);
                self.push((*value >> 64) as u64);
            }
            Constant::Null(ty) => {
                self.push(1);
                self.ty(ty);
            }
            Constant::Poison(ty) => {
                self.push(2);
                self.ty(ty);
            }
            Constant::Undef(ty) => {
                self.push(3);
                self.ty(ty);
            }
            Constant::Vector(elems) => {
                self.push(4);
                self.push(elems.len() as u64);
                for e in elems {
                    self.constant(e);
                }
            }
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Inst(id) => {
                self.push(0);
                // Placement numbers are below the arena size; unplaced
                // or out-of-range ids (malformed IR) are kept distinct
                // by offsetting the raw id past that range.
                let placed = self.remap.get(id.index()).copied().unwrap_or(u64::MAX);
                if placed != u64::MAX {
                    self.push(placed);
                } else {
                    self.push((1 << 32) | id.0 as u64);
                }
            }
            Value::Arg(i) => {
                self.push(1);
                self.push(*i as u64);
            }
            Value::Const(c) => {
                self.push(2);
                self.constant(c);
            }
        }
    }

    fn str_bytes(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.push(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << (8 * i);
            }
            self.push(w);
        }
    }

    fn inst(&mut self, inst: &Inst) {
        // The variant tag comes from the descriptor table (the single
        // registry of fingerprint tags); the match below only encodes
        // per-variant immediates and operands. Rows with no immediates
        // (the guards) fall through to the generic operand encoding.
        self.push(inst.descriptor().tag as u64);
        match inst {
            Inst::Bin {
                op,
                flags,
                ty,
                lhs,
                rhs,
            } => {
                self.push(*op as u64);
                self.push(flags.nsw as u64 | (flags.nuw as u64) << 1 | (flags.exact as u64) << 2);
                self.ty(ty);
                self.value(lhs);
                self.value(rhs);
            }
            Inst::Icmp { cond, ty, lhs, rhs } => {
                self.push(*cond as u64);
                self.ty(ty);
                self.value(lhs);
                self.value(rhs);
            }
            Inst::Select {
                cond,
                ty,
                tval,
                fval,
            } => {
                self.ty(ty);
                self.value(cond);
                self.value(tval);
                self.value(fval);
            }
            Inst::Phi { ty, incoming } => {
                self.ty(ty);
                self.push(incoming.len() as u64);
                for (v, bb) in incoming {
                    self.value(v);
                    self.push(bb.0 as u64);
                }
            }
            Inst::Freeze { ty, val } => {
                self.ty(ty);
                self.value(val);
            }
            Inst::Cast {
                kind,
                from_ty,
                to_ty,
                val,
            } => {
                self.push(*kind as u64);
                self.ty(from_ty);
                self.ty(to_ty);
                self.value(val);
            }
            Inst::Bitcast {
                from_ty,
                to_ty,
                val,
            } => {
                self.ty(from_ty);
                self.ty(to_ty);
                self.value(val);
            }
            Inst::Gep {
                elem_ty,
                base,
                idx_ty,
                idx,
                inbounds,
            } => {
                self.ty(elem_ty);
                self.ty(idx_ty);
                self.push(*inbounds as u64);
                self.value(base);
                self.value(idx);
            }
            Inst::Load { ty, ptr } => {
                self.ty(ty);
                self.value(ptr);
            }
            Inst::Store { ty, val, ptr } => {
                self.ty(ty);
                self.value(val);
                self.value(ptr);
            }
            Inst::ExtractElement {
                elem_ty,
                len,
                vec,
                idx,
            } => {
                self.ty(elem_ty);
                self.push(*len as u64);
                self.value(vec);
                self.value(idx);
            }
            Inst::InsertElement {
                elem_ty,
                len,
                vec,
                elt,
                idx,
            } => {
                self.ty(elem_ty);
                self.push(*len as u64);
                self.value(vec);
                self.value(elt);
                self.value(idx);
            }
            Inst::Call {
                ret_ty,
                callee,
                arg_tys,
                args,
            } => {
                self.ty(ret_ty);
                // Callee names are symbol references into the enclosing
                // module, not α-renamable locals: keep them verbatim.
                self.str_bytes(callee);
                self.push(arg_tys.len() as u64);
                for t in arg_tys {
                    self.ty(t);
                }
                self.push(args.len() as u64);
                for a in args {
                    self.value(a);
                }
            }
            Inst::Alloca { ty } => {
                self.ty(ty);
            }
            Inst::PtrToInt {
                from_ty,
                to_ty,
                val,
            } => {
                self.ty(from_ty);
                self.ty(to_ty);
                self.value(val);
            }
            Inst::IntToPtr {
                from_ty,
                to_ty,
                val,
            } => {
                self.ty(from_ty);
                self.ty(to_ty);
                self.value(val);
            }
            // Rows with no immediates beyond their operand list (the
            // guards): the descriptor tag plus the operands is the
            // whole encoding. `assume`'s operand is always i1, so no
            // type word is needed for injectivity.
            _ => inst.for_each_operand(|v| self.value(v)),
        }
    }

    fn term(&mut self, t: &Terminator) {
        match t {
            Terminator::Ret(None) => self.push(0),
            Terminator::Ret(Some(v)) => {
                self.push(1);
                self.value(v);
            }
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                self.push(2);
                self.value(cond);
                self.push(then_bb.0 as u64);
                self.push(else_bb.0 as u64);
            }
            Terminator::Jmp(bb) => {
                self.push(3);
                self.push(bb.0 as u64);
            }
            Terminator::Unreachable => self.push(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_function;

    fn key(src: &str) -> FunctionKey {
        FunctionKey::of(&parse_function(src).expect("parses"))
    }

    #[test]
    fn alpha_renaming_is_canonicalized_away() {
        let a = key("define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}");
        let b = key("define i2 @renamed(i2 %y) {\nstart:\n  %t = add i2 %y, 1\n  ret i2 %t\n}");
        assert_eq!(a, b);
    }

    #[test]
    fn arena_numbering_is_canonicalized_away() {
        use crate::function::{Function, Param};
        use crate::inst::{BinOp, Flags};
        use crate::value::{BlockId, Value};
        // Same placed program, arena slots filled in opposite orders.
        let build = |reversed: bool| {
            let mut f = Function::new(
                "f",
                vec![Param {
                    name: "x".into(),
                    ty: Ty::i8(),
                }],
                Ty::i8(),
            );
            let bin = |rhs: u128| Inst::Bin {
                op: BinOp::Add,
                flags: Flags::NONE,
                ty: Ty::i8(),
                lhs: Value::Arg(0),
                rhs: Value::int(8, rhs),
            };
            let (first, second) = if reversed {
                let b = f.add_inst(bin(2));
                let a = f.add_inst(bin(1));
                (a, b)
            } else {
                let a = f.add_inst(bin(1));
                let b = f.add_inst(bin(2));
                (a, b)
            };
            let entry = f.block_mut(BlockId::ENTRY);
            entry.insts = vec![first, second];
            entry.term = Terminator::Ret(Some(Value::Inst(second)));
            f
        };
        assert_eq!(
            FunctionKey::of(&build(false)),
            FunctionKey::of(&build(true))
        );
    }

    #[test]
    fn semantic_differences_separate_keys() {
        let base = key("define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}");
        for other in [
            // different opcode
            "define i2 @f(i2 %x) {\nentry:\n  %a = sub i2 %x, 1\n  ret i2 %a\n}",
            // different flags
            "define i2 @f(i2 %x) {\nentry:\n  %a = add nsw i2 %x, 1\n  ret i2 %a\n}",
            // different constant
            "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 2\n  ret i2 %a\n}",
            // different operand wiring
            "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 1, %x\n  ret i2 %a\n}",
            // different type
            "define i4 @f(i4 %x) {\nentry:\n  %a = add i4 %x, 1\n  ret i4 %a\n}",
            // poison constant instead of an int
            "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, poison\n  ret i2 %a\n}",
        ] {
            assert_ne!(base, key(other), "{other}");
        }
    }

    #[test]
    fn control_flow_and_phis_are_encoded() {
        let a = key(
            "define i8 @f(i1 %c) {\nentry:\n  br i1 %c, label %t, label %e\nt:\n  br label %j\ne:\n  br label %j\nj:\n  %p = phi i8 [ 1, %t ], [ 2, %e ]\n  ret i8 %p\n}",
        );
        let b = key(
            "define i8 @f(i1 %c) {\nentry:\n  br i1 %c, label %t, label %e\nt:\n  br label %j\ne:\n  br label %j\nj:\n  %p = phi i8 [ 2, %t ], [ 1, %e ]\n  ret i8 %p\n}",
        );
        assert_ne!(a, b, "swapped phi incomings must not collide");
    }

    #[test]
    fn callee_names_stay_significant() {
        let a = key("define void @f() {\nentry:\n  call void @g()\n  ret void\n}");
        let b = key("define void @f() {\nentry:\n  call void @h()\n  ret void\n}");
        assert_ne!(a, b);
    }

    #[test]
    fn hash_is_stable_across_recomputation() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let src = "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}";
        let h = |k: &FunctionKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&key(src)), h(&key(src)));
        assert!(key(src).words() > 0);
    }
}
