//! Parser for the textual IR form produced by [`crate::print`].
//!
//! The syntax is LLVM-flavoured; see the crate-level documentation for an
//! example. Parsing is two-pass within each function: a pre-scan assigns
//! [`InstId`]s and [`BlockId`]s in textual order so that forward
//! references (phis, loop back edges) resolve without placeholders.

use std::collections::HashMap;
use std::fmt;

use crate::function::{Block, DeclAttrs, FuncDecl, Function, Module, Param};
use crate::inst::{BinOp, CastKind, Cond, Flags, Inst, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, Constant, InstId, Value};

/// A parse failure, with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    /// Bare word: keywords, mnemonics, type names, labels.
    Word(String),
    /// `%name` local reference.
    Local(String),
    /// `@name` global reference.
    Global(String),
    /// Integer literal (possibly negative).
    Int(i128),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Comma,
    Eq,
    Colon,
    Star,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "'{w}'"),
            Tok::Local(n) => write!(f, "'%{n}'"),
            Tok::Global(n) => write!(f, "'@{n}'"),
            Tok::Int(v) => write!(f, "'{v}'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBrace => write!(f, "'{{'"),
            Tok::RBrace => write!(f, "'}}'"),
            Tok::LBracket => write!(f, "'['"),
            Tok::RBracket => write!(f, "']'"),
            Tok::Lt => write!(f, "'<'"),
            Tok::Gt => write!(f, "'>'"),
            Tok::Comma => write!(f, "','"),
            Tok::Eq => write!(f, "'='"),
            Tok::Colon => write!(f, "':'"),
            Tok::Star => write!(f, "'*'"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let is_word = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c == b'.';
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b';' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push((Tok::LParen, line));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, line));
                i += 1;
            }
            b'{' => {
                toks.push((Tok::LBrace, line));
                i += 1;
            }
            b'}' => {
                toks.push((Tok::RBrace, line));
                i += 1;
            }
            b'[' => {
                toks.push((Tok::LBracket, line));
                i += 1;
            }
            b']' => {
                toks.push((Tok::RBracket, line));
                i += 1;
            }
            b'<' => {
                toks.push((Tok::Lt, line));
                i += 1;
            }
            b'>' => {
                toks.push((Tok::Gt, line));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, line));
                i += 1;
            }
            b'=' => {
                toks.push((Tok::Eq, line));
                i += 1;
            }
            b':' => {
                toks.push((Tok::Colon, line));
                i += 1;
            }
            b'*' => {
                toks.push((Tok::Star, line));
                i += 1;
            }
            b'%' | b'@' => {
                let sigil = c;
                i += 1;
                let start = i;
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                if start == i {
                    return Err(ParseError {
                        line,
                        message: format!("expected a name after '{}'", sigil as char),
                    });
                }
                let name = input[start..i].to_string();
                toks.push((
                    if sigil == b'%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    },
                    line,
                ));
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                if c == b'-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i128 = text.parse().map_err(|_| ParseError {
                    line,
                    message: format!("invalid integer literal '{text}'"),
                })?;
                toks.push((Tok::Int(v), line));
            }
            _ if is_word(c) => {
                let start = i;
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                toks.push((Tok::Word(input[start..i].to_string()), line));
            }
            _ => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character '{}'", c as char),
                });
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    /// Line of the most recently consumed token (for diagnostics about
    /// a token that has already been read).
    fn prev_line(&self) -> usize {
        if self.pos == 0 {
            return 1;
        }
        self.toks.get(self.pos - 1).map(|(_, l)| *l).unwrap_or(1)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn next(&mut self) -> Result<Tok> {
        match self.toks.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        let got = self.next()?;
        if got == tok {
            Ok(())
        } else {
            self.pos -= 1;
            self.err(format!("expected {tok}, found {got}"))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        if self.eat_word(word) {
            Ok(())
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn expect_local(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Local(n) => Ok(n),
            got => {
                self.pos -= 1;
                self.err(format!("expected a %name, found {got}"))
            }
        }
    }

    fn expect_global(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Global(n) => Ok(n),
            got => {
                self.pos -= 1;
                self.err(format!("expected an @name, found {got}"))
            }
        }
    }

    /// Parses a type. `void` is accepted only when `allow_void` is set.
    fn parse_ty(&mut self, allow_void: bool) -> Result<Ty> {
        let base = match self.next()? {
            Tok::Word(w) if w == "void" => {
                if !allow_void {
                    return self.err("void is not valid here");
                }
                Ty::Void
            }
            Tok::Word(w) if w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) => {
                let bits: u32 = w[1..].parse().map_err(|_| ParseError {
                    line: self.line(),
                    message: "bad width".into(),
                })?;
                if bits == 0 || bits > crate::types::MAX_INT_BITS {
                    return self.err(format!("integer width {bits} out of range"));
                }
                Ty::Int(bits)
            }
            Tok::Lt => {
                let elems = match self.next()? {
                    Tok::Int(v) if v > 0 => v as u32,
                    _ => return self.err("expected a positive vector length"),
                };
                self.expect_word("x")?;
                let elem = self.parse_ty(false)?;
                self.expect(Tok::Gt)?;
                if !matches!(elem, Ty::Int(_) | Ty::Ptr(_)) {
                    return self.err("vector elements must be integers or pointers");
                }
                Ty::Vector {
                    elems,
                    elem: Box::new(elem),
                }
            }
            got => {
                self.pos -= 1;
                return self.err(format!("expected a type, found {got}"));
            }
        };
        let mut ty = base;
        while self.eat(&Tok::Star) {
            if ty.is_void() {
                return self.err("cannot form a pointer to void");
            }
            ty = Ty::ptr_to(ty);
        }
        Ok(ty)
    }
}

/// Symbol tables of the function being parsed.
struct FnContext {
    /// Parameter name -> index.
    params: HashMap<String, u32>,
    /// Local definition name -> pre-assigned instruction id.
    defs: HashMap<String, InstId>,
    /// Block label -> pre-assigned block id.
    labels: HashMap<String, BlockId>,
}

impl FnContext {
    fn resolve_local(&self, p: &Parser, name: &str) -> Result<Value> {
        if let Some(&i) = self.params.get(name) {
            return Ok(Value::Arg(i));
        }
        if let Some(&id) = self.defs.get(name) {
            return Ok(Value::Inst(id));
        }
        Err(ParseError {
            line: p.prev_line(),
            message: format!("unknown local %{name}"),
        })
    }

    fn resolve_label(&self, p: &Parser, name: &str) -> Result<BlockId> {
        self.labels.get(name).copied().ok_or_else(|| ParseError {
            line: p.prev_line(),
            message: format!("unknown label %{name}"),
        })
    }
}

/// Parses a constant or local of the given expected type.
fn parse_value(p: &mut Parser, ctx: &FnContext, ty: &Ty) -> Result<Value> {
    match p.next()? {
        Tok::Local(name) => ctx.resolve_local(p, &name),
        Tok::Int(v) => match ty.int_bits() {
            Some(bits) => Ok(Value::int(bits, v as u128)),
            None => p.err(format!("integer literal cannot have type {ty}")),
        },
        Tok::Word(w) if w == "true" => Ok(Value::bool(true)),
        Tok::Word(w) if w == "false" => Ok(Value::bool(false)),
        Tok::Word(w) if w == "poison" => Ok(Value::poison(ty.clone())),
        Tok::Word(w) if w == "undef" => Ok(Value::undef(ty.clone())),
        Tok::Word(w) if w == "null" => Ok(Value::Const(Constant::Null(ty.clone()))),
        Tok::Lt => {
            // Vector constant: `<i16 1, i16 poison>`.
            let mut elems = Vec::new();
            loop {
                let ety = p.parse_ty(false)?;
                let v = parse_value(p, ctx, &ety)?;
                match v {
                    Value::Const(c) => elems.push(c),
                    _ => return p.err("vector constant elements must be constants"),
                }
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            p.expect(Tok::Gt)?;
            Ok(Value::Const(Constant::Vector(elems)))
        }
        got => {
            p.pos -= 1;
            p.err(format!("expected a value, found {got}"))
        }
    }
}

fn parse_flags(p: &mut Parser) -> Flags {
    let mut flags = Flags::NONE;
    loop {
        if p.eat_word("nsw") {
            flags.nsw = true;
        } else if p.eat_word("nuw") {
            flags.nuw = true;
        } else if p.eat_word("exact") {
            flags.exact = true;
        } else {
            return flags;
        }
    }
}

fn binop_from_word(w: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|op| op.mnemonic() == w)
}

fn cond_from_word(w: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.mnemonic() == w)
}

fn cast_from_word(w: &str) -> Option<CastKind> {
    match w {
        "zext" => Some(CastKind::Zext),
        "sext" => Some(CastKind::Sext),
        "trunc" => Some(CastKind::Trunc),
        _ => None,
    }
}

/// Parses one instruction after the optional `%name =` prefix.
fn parse_inst(p: &mut Parser, ctx: &FnContext) -> Result<Inst> {
    let word = match p.next()? {
        Tok::Word(w) => w,
        got => {
            p.pos -= 1;
            return p.err(format!("expected an instruction mnemonic, found {got}"));
        }
    };
    if let Some(op) = binop_from_word(&word) {
        let flags = parse_flags(p);
        let ty = p.parse_ty(false)?;
        let lhs = parse_value(p, ctx, &ty)?;
        p.expect(Tok::Comma)?;
        let rhs = parse_value(p, ctx, &ty)?;
        return Ok(Inst::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        });
    }
    if let Some(kind) = cast_from_word(&word) {
        let from_ty = p.parse_ty(false)?;
        let val = parse_value(p, ctx, &from_ty)?;
        p.expect_word("to")?;
        let to_ty = p.parse_ty(false)?;
        return Ok(Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        });
    }
    match word.as_str() {
        "icmp" => {
            let cond = match p.next()? {
                Tok::Word(w) => cond_from_word(&w).ok_or_else(|| ParseError {
                    line: p.line(),
                    message: format!("unknown icmp condition '{w}'"),
                })?,
                got => {
                    p.pos -= 1;
                    return p.err(format!("expected an icmp condition, found {got}"));
                }
            };
            let ty = p.parse_ty(false)?;
            let lhs = parse_value(p, ctx, &ty)?;
            p.expect(Tok::Comma)?;
            let rhs = parse_value(p, ctx, &ty)?;
            Ok(Inst::Icmp { cond, ty, lhs, rhs })
        }
        "select" => {
            let cond_ty = p.parse_ty(false)?;
            let cond = parse_value(p, ctx, &cond_ty)?;
            p.expect(Tok::Comma)?;
            let ty = p.parse_ty(false)?;
            let tval = parse_value(p, ctx, &ty)?;
            p.expect(Tok::Comma)?;
            let fty = p.parse_ty(false)?;
            if fty != ty {
                return p.err("select arms must have the same type");
            }
            let fval = parse_value(p, ctx, &ty)?;
            Ok(Inst::Select {
                cond,
                ty,
                tval,
                fval,
            })
        }
        "phi" => {
            let ty = p.parse_ty(false)?;
            let mut incoming = Vec::new();
            loop {
                p.expect(Tok::LBracket)?;
                let v = parse_value(p, ctx, &ty)?;
                p.expect(Tok::Comma)?;
                let label = p.expect_local()?;
                let bb = ctx.resolve_label(p, &label)?;
                p.expect(Tok::RBracket)?;
                incoming.push((v, bb));
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            Ok(Inst::Phi { ty, incoming })
        }
        "freeze" => {
            let ty = p.parse_ty(false)?;
            let val = parse_value(p, ctx, &ty)?;
            Ok(Inst::Freeze { ty, val })
        }
        "bitcast" => {
            let from_ty = p.parse_ty(false)?;
            let val = parse_value(p, ctx, &from_ty)?;
            p.expect_word("to")?;
            let to_ty = p.parse_ty(false)?;
            Ok(Inst::Bitcast {
                from_ty,
                to_ty,
                val,
            })
        }
        "getelementptr" => {
            let inbounds = p.eat_word("inbounds");
            let elem_ty = p.parse_ty(false)?;
            p.expect(Tok::Comma)?;
            let ptr_ty = p.parse_ty(false)?;
            if ptr_ty != Ty::ptr_to(elem_ty.clone()) {
                return p.err(format!("gep pointer type must be {elem_ty}*"));
            }
            let base = parse_value(p, ctx, &ptr_ty)?;
            p.expect(Tok::Comma)?;
            let idx_ty = p.parse_ty(false)?;
            let idx = parse_value(p, ctx, &idx_ty)?;
            Ok(Inst::Gep {
                elem_ty,
                base,
                idx_ty,
                idx,
                inbounds,
            })
        }
        "load" => {
            let ty = p.parse_ty(false)?;
            p.expect(Tok::Comma)?;
            let ptr_ty = p.parse_ty(false)?;
            if ptr_ty != Ty::ptr_to(ty.clone()) {
                return p.err(format!("load pointer type must be {ty}*"));
            }
            let ptr = parse_value(p, ctx, &ptr_ty)?;
            Ok(Inst::Load { ty, ptr })
        }
        "store" => {
            let ty = p.parse_ty(false)?;
            let val = parse_value(p, ctx, &ty)?;
            p.expect(Tok::Comma)?;
            let ptr_ty = p.parse_ty(false)?;
            if ptr_ty != Ty::ptr_to(ty.clone()) {
                return p.err(format!("store pointer type must be {ty}*"));
            }
            let ptr = parse_value(p, ctx, &ptr_ty)?;
            Ok(Inst::Store { ty, val, ptr })
        }
        "extractelement" => {
            let vec_ty = p.parse_ty(false)?;
            let (len, elem_ty) = match &vec_ty {
                Ty::Vector { elems, elem } => (*elems, (**elem).clone()),
                _ => return p.err("extractelement needs a vector type"),
            };
            let vec = parse_value(p, ctx, &vec_ty)?;
            p.expect(Tok::Comma)?;
            let idx_ty = p.parse_ty(false)?;
            let idx = parse_value(p, ctx, &idx_ty)?;
            Ok(Inst::ExtractElement {
                elem_ty,
                len,
                vec,
                idx,
            })
        }
        "insertelement" => {
            let vec_ty = p.parse_ty(false)?;
            let (len, elem_ty) = match &vec_ty {
                Ty::Vector { elems, elem } => (*elems, (**elem).clone()),
                _ => return p.err("insertelement needs a vector type"),
            };
            let vec = parse_value(p, ctx, &vec_ty)?;
            p.expect(Tok::Comma)?;
            let ety = p.parse_ty(false)?;
            if ety != elem_ty {
                return p.err("insertelement element type mismatch");
            }
            let elt = parse_value(p, ctx, &elem_ty)?;
            p.expect(Tok::Comma)?;
            let idx_ty = p.parse_ty(false)?;
            let idx = parse_value(p, ctx, &idx_ty)?;
            Ok(Inst::InsertElement {
                elem_ty,
                len,
                vec,
                elt,
                idx,
            })
        }
        "call" => {
            let ret_ty = p.parse_ty(true)?;
            let callee = p.expect_global()?;
            p.expect(Tok::LParen)?;
            let mut arg_tys = Vec::new();
            let mut args = Vec::new();
            if !p.eat(&Tok::RParen) {
                loop {
                    let ty = p.parse_ty(false)?;
                    let v = parse_value(p, ctx, &ty)?;
                    arg_tys.push(ty);
                    args.push(v);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(Tok::RParen)?;
            }
            Ok(Inst::Call {
                ret_ty,
                callee,
                arg_tys,
                args,
            })
        }
        other => p.err(format!("unknown instruction '{other}'")),
    }
}

fn parse_terminator(p: &mut Parser, ctx: &FnContext, ret_ty: &Ty) -> Result<Terminator> {
    if p.eat_word("ret") {
        if p.eat_word("void") {
            return Ok(Terminator::Ret(None));
        }
        let ty = p.parse_ty(false)?;
        if ty != *ret_ty {
            return p.err(format!(
                "ret type {ty} does not match function return type {ret_ty}"
            ));
        }
        let v = parse_value(p, ctx, &ty)?;
        return Ok(Terminator::Ret(Some(v)));
    }
    if p.eat_word("br") {
        if p.eat_word("label") {
            let label = p.expect_local()?;
            return Ok(Terminator::Jmp(ctx.resolve_label(p, &label)?));
        }
        let ty = p.parse_ty(false)?;
        if !ty.is_bool() {
            return p.err("br condition must have type i1");
        }
        let cond = parse_value(p, ctx, &ty)?;
        p.expect(Tok::Comma)?;
        p.expect_word("label")?;
        let t = p.expect_local()?;
        let then_bb = ctx.resolve_label(p, &t)?;
        p.expect(Tok::Comma)?;
        p.expect_word("label")?;
        let e = p.expect_local()?;
        let else_bb = ctx.resolve_label(p, &e)?;
        return Ok(Terminator::Br {
            cond,
            then_bb,
            else_bb,
        });
    }
    if p.eat_word("unreachable") {
        return Ok(Terminator::Unreachable);
    }
    p.err("expected a terminator (ret, br, unreachable)")
}

/// Pre-scans a function body (tokens between `{` and its matching `}`)
/// to assign block and instruction ids in textual order.
///
/// Statements are line-delimited (as produced by the printer): a line
/// starting with `word:` introduces a block, `%name = ...` a named
/// instruction, `store`/`call` an unnamed (void) instruction, and
/// `ret`/`br`/`unreachable` a terminator. Unnamed instructions consume
/// an instruction id so that ids assigned here match parse order.
fn prescan(p: &Parser, ctx: &mut FnContext) -> Result<()> {
    let mut i = p.pos;
    let mut next_block = 0u32;
    let mut next_inst = 0u32;
    let mut cur_line = 0usize;
    while let Some((tok, line)) = p.toks.get(i) {
        if *tok == Tok::RBrace {
            break;
        }
        if *line == cur_line {
            // Not at a statement start; skip.
            i += 1;
            continue;
        }
        cur_line = *line;
        match tok {
            Tok::Word(w) => {
                // `label:` introduces a block.
                if matches!(p.toks.get(i + 1).map(|(t, _)| t), Some(Tok::Colon)) {
                    if ctx.labels.insert(w.clone(), BlockId(next_block)).is_some() {
                        return Err(ParseError {
                            line: *line,
                            message: format!("duplicate block label '{w}'"),
                        });
                    }
                    next_block += 1;
                    i += 1; // skip the colon too
                } else if w == "store" || w == "call" {
                    // Unnamed (void-result) instruction.
                    next_inst += 1;
                } else if w != "ret" && w != "br" && w != "unreachable" {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unexpected statement start '{w}'"),
                    });
                }
            }
            Tok::Local(name) => {
                // `%name =` introduces a definition.
                if matches!(p.toks.get(i + 1).map(|(t, _)| t), Some(Tok::Eq)) {
                    if ctx.params.contains_key(name) {
                        return Err(ParseError {
                            line: *line,
                            message: format!("%{name} shadows a parameter"),
                        });
                    }
                    if ctx.defs.insert(name.clone(), InstId(next_inst)).is_some() {
                        return Err(ParseError {
                            line: *line,
                            message: format!("duplicate definition of %{name}"),
                        });
                    }
                    next_inst += 1;
                    i += 1;
                } else {
                    return Err(ParseError {
                        line: *line,
                        message: format!("expected '=' after %{name} at statement start"),
                    });
                }
            }
            other => {
                return Err(ParseError {
                    line: *line,
                    message: format!("unexpected statement start {other}"),
                });
            }
        }
        i += 1;
    }
    Ok(())
}

fn parse_function_body(
    p: &mut Parser,
    name: String,
    params: Vec<Param>,
    ret_ty: Ty,
) -> Result<Function> {
    let mut ctx = FnContext {
        params: params
            .iter()
            .enumerate()
            .map(|(i, pa)| (pa.name.clone(), i as u32))
            .collect(),
        defs: HashMap::new(),
        labels: HashMap::new(),
    };
    prescan(p, &mut ctx)?;
    if ctx.labels.is_empty() {
        return p.err("function body must contain at least one labelled block");
    }

    let mut func = Function {
        name,
        params,
        ret_ty: ret_ty.clone(),
        blocks: Vec::new(),
        insts: Vec::with_capacity(ctx.defs.len()),
    };
    // Pre-create the blocks so ids match the pre-scan.
    let mut labels_in_order: Vec<(String, BlockId)> =
        ctx.labels.iter().map(|(n, b)| (n.clone(), *b)).collect();
    labels_in_order.sort_by_key(|(_, b)| *b);
    for (label, _) in &labels_in_order {
        func.blocks.push(Block::new(label.clone()));
    }

    // Now parse for real.
    let mut cur_block: Option<BlockId> = None;
    let mut next_inst = 0u32;
    loop {
        if p.eat(&Tok::RBrace) {
            break;
        }
        // Block label?
        if let Some(Tok::Word(w)) = p.peek() {
            let w = w.clone();
            if p.toks.get(p.pos + 1).map(|(t, _)| t) == Some(&Tok::Colon) {
                p.pos += 2;
                cur_block = Some(ctx.labels[&w]);
                continue;
            }
            // Terminator?
            if w == "ret" || w == "br" || w == "unreachable" {
                let Some(bb) = cur_block else {
                    return p.err("terminator outside of a block");
                };
                let term = parse_terminator(p, &ctx, &ret_ty)?;
                func.block_mut(bb).term = term;
                continue;
            }
        }
        let Some(bb) = cur_block else {
            return p.err("instruction outside of a block");
        };
        // `%name = inst` or bare `store`/void `call`.
        let named = if let Some(Tok::Local(n)) = p.peek() {
            let n = n.clone();
            p.pos += 1;
            p.expect(Tok::Eq)?;
            Some(n)
        } else {
            None
        };
        let inst = parse_inst(p, &ctx)?;
        if named.is_some() && inst.result_ty().is_void() {
            return p.err(format!("{} produces no value to name", inst.mnemonic()));
        }
        if named.is_none() && !inst.result_ty().is_void() {
            return p.err(format!("result of {} must be named", inst.mnemonic()));
        }
        let id = func.add_inst(inst);
        debug_assert_eq!(id, InstId(next_inst));
        next_inst += 1;
        if let Some(n) = &named {
            debug_assert_eq!(ctx.defs[n], id, "pre-scan id matches parse order");
        }
        func.block_mut(bb).insts.push(id);
    }
    Ok(func)
}

fn parse_define(p: &mut Parser) -> Result<Function> {
    let ret_ty = p.parse_ty(true)?;
    let name = p.expect_global()?;
    p.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !p.eat(&Tok::RParen) {
        loop {
            let ty = p.parse_ty(false)?;
            let pname = p.expect_local()?;
            params.push(Param { name: pname, ty });
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(Tok::RParen)?;
    }
    p.expect(Tok::LBrace)?;
    parse_function_body(p, name, params, ret_ty)
}

fn parse_declare(p: &mut Parser) -> Result<FuncDecl> {
    let ret_ty = p.parse_ty(true)?;
    let name = p.expect_global()?;
    p.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !p.eat(&Tok::RParen) {
        loop {
            params.push(p.parse_ty(false)?);
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(Tok::RParen)?;
    }
    let mut attrs = DeclAttrs::default();
    loop {
        if p.eat_word("readnone") {
            attrs.readnone = true;
        } else if p.eat_word("willreturn") {
            attrs.willreturn = true;
        } else {
            break;
        }
    }
    Ok(FuncDecl {
        name,
        params,
        ret_ty,
        attrs,
    })
}

/// Parses a whole module (any number of `define` and `declare` items).
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
pub fn parse_module(input: &str) -> Result<Module> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let mut module = Module::new();
    while p.peek().is_some() {
        if p.eat_word("define") {
            module.functions.push(parse_define(&mut p)?);
        } else if p.eat_word("declare") {
            module.declarations.push(parse_declare(&mut p)?);
        } else {
            return p.err("expected 'define' or 'declare'");
        }
    }
    Ok(module)
}

/// Parses input containing exactly one function definition.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or if the input does not
/// contain exactly one `define`.
pub fn parse_function(input: &str) -> Result<Function> {
    let module = parse_module(input)?;
    if module.functions.len() != 1 {
        return Err(ParseError {
            line: 1,
            message: format!(
                "expected exactly one function, found {}",
                module.functions.len()
            ),
        });
    }
    Ok(module.functions.into_iter().next().expect("checked length"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::function_to_string;

    #[test]
    fn parses_simple_function() {
        let f = parse_function(
            r#"
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add nsw i32 %x, %y
  %c = icmp sgt i32 %a, %x
  %r = select i1 %c, i32 %a, i32 0
  ret i32 %r
}
"#,
        )
        .unwrap();
        assert_eq!(f.name, "f");
        assert_eq!(f.placed_inst_count(), 3);
        assert!(crate::verify::verify_function(&f).is_ok());
    }

    #[test]
    fn parses_loop_with_forward_references() {
        let f = parse_function(
            r#"
define void @loop(i32 %n, i32 %x, i32* %a) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i32 %x, 1
  %ptr = getelementptr inbounds i32, i32* %a, i32 %i
  store i32 %x1, i32* %ptr
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret void
}
"#,
        )
        .unwrap();
        assert_eq!(f.blocks.len(), 4);
        assert!(crate::verify::verify_function(&f).is_ok());
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"
define i8 @rt(i1 %c, i8 %x) {
entry:
  %t0 = freeze i8 %x
  %t1 = select i1 %c, i8 %t0, i8 poison
  %t2 = xor i8 %t1, 255
  ret i8 %t2
}
"#;
        let f = parse_function(src).unwrap();
        let printed = function_to_string(&f);
        let f2 = parse_function(&printed).unwrap();
        assert_eq!(function_to_string(&f2), printed);
    }

    #[test]
    fn parses_declarations_and_calls() {
        let m = parse_module(
            r#"
declare i32 @g(i32) readnone willreturn
define void @caller(i32 %x) {
entry:
  %r = call i32 @g(i32 %x)
  call void @h()
  ret void
}
declare void @h()
"#,
        )
        .unwrap();
        assert_eq!(m.declarations.len(), 2);
        assert!(m.declarations[0].attrs.readnone);
        assert!(m.declarations[0].attrs.willreturn);
        assert!(!m.declarations[1].attrs.readnone);
        assert_eq!(m.functions[0].placed_inst_count(), 2);
    }

    #[test]
    fn parses_vectors_and_casts() {
        let f = parse_function(
            r#"
define i16 @v(<2 x i16> %v, i32 %w) {
entry:
  %t = trunc i32 %w to i16
  %v2 = insertelement <2 x i16> %v, i16 %t, i32 1
  %e = extractelement <2 x i16> %v2, i32 0
  %z = zext i16 %e to i64
  %s = sext i16 %e to i32
  %b = bitcast <2 x i16> %v2 to i32
  %q = trunc i32 %b to i16
  ret i16 %q
}
"#,
        )
        .unwrap();
        assert!(crate::verify::verify_function(&f).is_ok());
        assert_eq!(f.placed_inst_count(), 7);
    }

    #[test]
    fn parses_negative_and_boolean_constants() {
        let f = parse_function(
            r#"
define i1 @c(i8 %x) {
entry:
  %a = add i8 %x, -1
  %c = icmp eq i8 %a, 255
  %r = select i1 %c, i1 true, i1 false
  ret i1 %r
}
"#,
        )
        .unwrap();
        // -1 as i8 is 255.
        let Inst::Bin { rhs, .. } = f.inst(InstId(0)) else {
            panic!()
        };
        assert!(rhs.is_int_const(255));
    }

    #[test]
    fn rejects_unknown_local() {
        let err = parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, %missing\n  ret i32 %a\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown local"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_duplicate_definition() {
        let err = parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  %a = add i32 %x, 2\n  ret i32 %a\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate definition"));
    }

    #[test]
    fn rejects_unnamed_result() {
        let err =
            parse_function("define i32 @f(i32 %x) {\nentry:\n  add i32 %x, 1\n  ret i32 %x\n}")
                .unwrap_err();
        assert!(err.message.contains("unexpected statement start 'add'"));
    }

    #[test]
    fn comments_are_ignored() {
        let f = parse_function(
            "; header comment\ndefine i32 @f(i32 %x) { ; trailing\nentry:\n  ret i32 %x ; done\n}",
        )
        .unwrap();
        assert_eq!(f.name, "f");
    }

    #[test]
    fn parses_poison_and_undef_operands() {
        let f =
            parse_function("define i8 @p() {\nentry:\n  %a = add i8 poison, undef\n  ret i8 %a\n}")
                .unwrap();
        assert!(crate::verify::verify_function_legacy(&f).is_ok());
        assert!(crate::verify::verify_function(&f).is_err());
    }
}
