//! Known-bits analysis, including the paper's `isKnownToBeAPowerOfTwo`
//! example (§5.6).
//!
//! Facts are *conditional on the analyzed values not being poison*: for
//! `%x = shl i8 1, %y`, the analysis reports "`%x` is a power of two
//! assuming `%y` is not poison" — if `%y` is poison, `%x` is poison and
//! can "take" any value. The one instruction whose facts are
//! unconditional is `freeze`, whose result is never poison.

use std::collections::HashMap;

use crate::function::Function;
use crate::inst::{BinOp, CastKind, Inst};
use crate::value::{truncate, Constant, InstId, Value};

use super::Conditional;

/// Bit-level knowledge about an integer value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnownBits {
    /// Width of the value in bits.
    pub bits: u32,
    /// Mask of bits known to be zero.
    pub zeros: u128,
    /// Mask of bits known to be one.
    pub ones: u128,
}

impl KnownBits {
    /// No knowledge about a `bits`-wide value.
    pub fn unknown(bits: u32) -> KnownBits {
        KnownBits {
            bits,
            zeros: 0,
            ones: 0,
        }
    }

    /// Full knowledge of a constant.
    pub fn constant(bits: u32, value: u128) -> KnownBits {
        let value = truncate(value, bits);
        KnownBits {
            bits,
            zeros: truncate(!value, bits),
            ones: value,
        }
    }

    /// Returns `true` if every bit is known.
    pub fn is_constant(&self) -> bool {
        truncate(self.zeros | self.ones, self.bits) == truncate(u128::MAX, self.bits)
    }

    /// The constant value, if fully known.
    pub fn as_constant(&self) -> Option<u128> {
        if self.is_constant() {
            Some(self.ones)
        } else {
            None
        }
    }

    /// Returns `true` if the value is known to be non-zero.
    pub fn is_known_nonzero(&self) -> bool {
        self.ones != 0
    }

    /// Number of bits known (either way).
    pub fn num_known(&self) -> u32 {
        truncate(self.zeros | self.ones, self.bits).count_ones()
    }

    /// Intersection of knowledge (used at phi/select joins).
    pub fn join(self, other: KnownBits) -> KnownBits {
        debug_assert_eq!(self.bits, other.bits);
        KnownBits {
            bits: self.bits,
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
    }
}

/// Known-bits engine over one function. Results are memoized.
#[derive(Debug)]
pub struct KnownBitsAnalysis<'a> {
    func: &'a Function,
    cache: HashMap<InstId, Conditional<KnownBits>>,
}

impl<'a> KnownBitsAnalysis<'a> {
    /// Creates the analysis for `func`.
    pub fn new(func: &'a Function) -> KnownBitsAnalysis<'a> {
        KnownBitsAnalysis {
            func,
            cache: HashMap::new(),
        }
    }

    /// Known bits of `v`, with the non-poison side conditions the result
    /// depends on.
    pub fn query(&mut self, v: &Value) -> Conditional<KnownBits> {
        self.query_depth(v, 8)
    }

    fn query_depth(&mut self, v: &Value, depth: u32) -> Conditional<KnownBits> {
        match v {
            Value::Const(Constant::Int { bits, value }) => {
                Conditional::unconditional(KnownBits::constant(*bits, *value))
            }
            Value::Const(Constant::Poison(ty)) | Value::Const(Constant::Undef(ty)) => {
                // Poison/undef can be any value; no bits are known and a
                // non-poison assumption on the value itself is recorded.
                let bits = ty.int_bits().unwrap_or(0);
                Conditional::assuming(KnownBits::unknown(bits), vec![v.clone()])
            }
            Value::Arg(_) => {
                let bits = self.func.value_ty(v).int_bits().unwrap_or(0);
                Conditional::assuming(KnownBits::unknown(bits), vec![v.clone()])
            }
            Value::Inst(id) => {
                if let Some(hit) = self.cache.get(id) {
                    return hit.clone();
                }
                let bits = self.func.inst(*id).result_ty().int_bits().unwrap_or(0);
                if depth == 0 || bits == 0 {
                    return Conditional::assuming(KnownBits::unknown(bits), vec![v.clone()]);
                }
                let result = self.compute_inst(*id, bits, depth);
                self.cache.insert(*id, result.clone());
                result
            }
            _ => {
                let bits = self.func.value_ty(v).int_bits().unwrap_or(0);
                Conditional::assuming(KnownBits::unknown(bits), vec![v.clone()])
            }
        }
    }

    fn compute_inst(&mut self, id: InstId, bits: u32, depth: u32) -> Conditional<KnownBits> {
        let inst = self.func.inst(id).clone();
        match &inst {
            Inst::Freeze { val, .. } => {
                // A frozen value is never poison: whatever bits we know
                // about the operand hold for the result *unconditionally
                // with respect to the result itself*; conditions about
                // the operand being non-poison are dropped only for the
                // operand itself (if the operand is poison, freeze picks
                // an arbitrary value, so only trivial facts survive).
                let inner = self.query_depth(val, depth - 1);
                if inner.is_unconditional() {
                    Conditional::unconditional(inner.value)
                } else {
                    // Bits derived under a non-poison assumption do not
                    // survive freezing a possibly-poison value.
                    Conditional::unconditional(KnownBits::unknown(bits))
                }
            }
            Inst::Bin { op, lhs, rhs, .. } => {
                let l = self.query_depth(lhs, depth - 1);
                let r = self.query_depth(rhs, depth - 1);
                let mut assumes = l.assumes_nonpoison;
                assumes.extend(r.assumes_nonpoison);
                let (lk, rk) = (l.value, r.value);
                let kb = match op {
                    BinOp::And => KnownBits {
                        bits,
                        zeros: truncate(lk.zeros | rk.zeros, bits),
                        ones: lk.ones & rk.ones,
                    },
                    BinOp::Or => KnownBits {
                        bits,
                        zeros: lk.zeros & rk.zeros,
                        ones: truncate(lk.ones | rk.ones, bits),
                    },
                    BinOp::Xor => {
                        let known = (lk.zeros | lk.ones) & (rk.zeros | rk.ones);
                        let val = lk.ones ^ rk.ones;
                        KnownBits {
                            bits,
                            zeros: truncate(known & !val, bits),
                            ones: known & val,
                        }
                    }
                    BinOp::Shl => match rk.as_constant() {
                        Some(sh) if sh < u128::from(bits) => {
                            let sh = sh as u32;
                            KnownBits {
                                bits,
                                zeros: truncate((lk.zeros << sh) | ((1u128 << sh) - 1), bits),
                                ones: truncate(lk.ones << sh, bits),
                            }
                        }
                        _ => KnownBits::unknown(bits),
                    },
                    BinOp::LShr => match rk.as_constant() {
                        Some(sh) if sh < u128::from(bits) => {
                            let sh = sh as u32;
                            let high = truncate(u128::MAX, bits) & !truncate(u128::MAX, bits - sh);
                            KnownBits {
                                bits,
                                zeros: truncate(lk.zeros >> sh, bits) | high,
                                ones: truncate(lk.ones, bits) >> sh,
                            }
                        }
                        _ => KnownBits::unknown(bits),
                    },
                    BinOp::Add => {
                        // Track known-zero low bits: if the low k bits of
                        // both operands are zero, so are the result's.
                        let low_zeros = (lk.zeros.trailing_ones())
                            .min(rk.zeros.trailing_ones())
                            .min(bits);
                        KnownBits {
                            bits,
                            zeros: if low_zeros == 0 {
                                0
                            } else {
                                truncate((1u128 << low_zeros) - 1, bits)
                            },
                            ones: 0,
                        }
                    }
                    _ => KnownBits::unknown(bits),
                };
                Conditional::assuming(kb, assumes)
            }
            Inst::Cast {
                kind, from_ty, val, ..
            } => {
                let inner = self.query_depth(val, depth - 1);
                let from_bits = from_ty.int_bits().unwrap_or(0);
                let kb = match kind {
                    CastKind::Zext => KnownBits {
                        bits,
                        zeros: truncate(inner.value.zeros, from_bits)
                            | (truncate(u128::MAX, bits) & !truncate(u128::MAX, from_bits)),
                        ones: inner.value.ones,
                    },
                    CastKind::Trunc => KnownBits {
                        bits,
                        zeros: truncate(inner.value.zeros, bits),
                        ones: truncate(inner.value.ones, bits),
                    },
                    CastKind::Sext => {
                        // Only known if the sign bit of the source is known.
                        let sign = 1u128 << (from_bits - 1);
                        if inner.value.zeros & sign != 0 {
                            KnownBits {
                                bits,
                                zeros: inner.value.zeros
                                    | (truncate(u128::MAX, bits) & !truncate(u128::MAX, from_bits)),
                                ones: inner.value.ones,
                            }
                        } else if inner.value.ones & sign != 0 {
                            KnownBits {
                                bits,
                                zeros: truncate(inner.value.zeros, from_bits - 1),
                                ones: inner.value.ones
                                    | (truncate(u128::MAX, bits)
                                        & !truncate(u128::MAX, from_bits - 1)),
                            }
                        } else {
                            KnownBits::unknown(bits)
                        }
                    }
                };
                Conditional::assuming(kb, inner.assumes_nonpoison)
            }
            Inst::Select {
                tval, fval, cond, ..
            } => {
                let t = self.query_depth(tval, depth - 1);
                let f = self.query_depth(fval, depth - 1);
                let mut assumes = t.assumes_nonpoison;
                assumes.extend(f.assumes_nonpoison);
                assumes.push(cond.clone());
                Conditional::assuming(t.value.join(f.value), assumes)
            }
            Inst::Phi { incoming, .. } => {
                let mut kb: Option<KnownBits> = None;
                let mut assumes = Vec::new();
                for (v, _) in incoming {
                    // Break cycles: a phi that feeds itself contributes
                    // nothing new.
                    if *v == Value::Inst(id) {
                        continue;
                    }
                    let inner = self.query_depth(v, depth.saturating_sub(2));
                    assumes.extend(inner.assumes_nonpoison);
                    kb = Some(match kb {
                        None => inner.value,
                        Some(acc) => acc.join(inner.value),
                    });
                }
                Conditional::assuming(kb.unwrap_or_else(|| KnownBits::unknown(bits)), assumes)
            }
            _ => Conditional::assuming(KnownBits::unknown(bits), vec![Value::Inst(id)]),
        }
    }

    /// The paper's §5.6 example: is `v` known to be a power of two?
    ///
    /// The result is conditional: `shl i8 1, %y` *is* a power of two —
    /// but only if `%y` is not poison (and the shift does not overflow
    /// the width, which would yield poison as well).
    pub fn is_known_power_of_two(&mut self, v: &Value) -> Conditional<bool> {
        // Structural special case first, mirroring LLVM.
        if let Value::Inst(id) = v {
            if let Inst::Bin {
                op: BinOp::Shl,
                lhs,
                rhs,
                ..
            } = self.func.inst(*id)
            {
                if lhs.is_int_const(1) {
                    return Conditional::assuming(true, vec![rhs.clone()]);
                }
            }
        }
        let kb = self.query(v);
        // Exactly one bit set and all others known zero.
        let known_one_bits = kb.value.ones.count_ones();
        let pow2 = known_one_bits == 1 && kb.value.num_known() == kb.value.bits;
        kb.map(|_| pow2)
    }

    /// Is `v` known to be non-zero (conditional on non-poison inputs)?
    pub fn is_known_nonzero(&mut self, v: &Value) -> Conditional<bool> {
        let kb = self.query(v);
        let nz = kb.value.is_known_nonzero();
        kb.map(|_| nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Ty;

    #[test]
    fn constants_are_fully_known() {
        let mut b = FunctionBuilder::new("f", &[], Ty::i8());
        b.ret(b.const_int(8, 5));
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let kb = a.query(&Value::int(8, 5));
        assert!(kb.is_unconditional());
        assert_eq!(kb.value.as_constant(), Some(5));
    }

    #[test]
    fn and_with_mask_knows_zeros() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32())], Ty::i32());
        let masked = b.and(b.arg(0), b.const_int(32, 0xffff));
        b.ret(masked.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let kb = a.query(&masked);
        assert_eq!(kb.value.zeros & 0xffff_0000, 0xffff_0000);
        // The fact depends on %x being non-poison.
        assert!(!kb.is_unconditional());
        assert!(kb.assumes_nonpoison.contains(&Value::Arg(0)));
    }

    #[test]
    fn shl_one_is_power_of_two_conditionally() {
        // The §5.6 example: %x = shl 1, %y.
        let mut b = FunctionBuilder::new("f", &[("y", Ty::i8())], Ty::i8());
        let x = b.shl(b.const_int(8, 1), b.arg(0));
        b.ret(x.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let fact = a.is_known_power_of_two(&x);
        assert!(fact.value, "shl 1, %y is a power of two");
        assert!(
            fact.assumes_nonpoison.contains(&Value::Arg(0)),
            "...but only if %y is not poison: {:?}",
            fact.assumes_nonpoison
        );
    }

    #[test]
    fn freeze_results_are_unconditional() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let fr = b.freeze(b.arg(0));
        b.ret(fr.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let kb = a.query(&fr);
        assert!(kb.is_unconditional(), "freeze output is never poison");
    }

    #[test]
    fn zext_knows_high_zeros() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i32());
        let z = b.zext(b.arg(0), Ty::i32());
        b.ret(z.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let kb = a.query(&z);
        assert_eq!(kb.value.zeros & 0xffff_ff00, 0xffff_ff00);
    }

    #[test]
    fn or_with_one_is_nonzero() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let o = b.or(b.arg(0), b.const_int(8, 1));
        b.ret(o.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let nz = a.is_known_nonzero(&o);
        assert!(nz.value);
        assert!(!nz.is_unconditional());
    }

    #[test]
    fn add_preserves_low_zeros() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8()), ("y", Ty::i8())], Ty::i8());
        let x4 = b.shl(b.arg(0), b.const_int(8, 2));
        let y4 = b.shl(b.arg(1), b.const_int(8, 2));
        let s = b.add(x4, y4);
        b.ret(s.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let kb = a.query(&s);
        assert_eq!(kb.value.zeros & 0b11, 0b11, "low two bits are zero");
    }

    #[test]
    fn select_joins_and_conditions_on_cond() {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::i1()), ("x", Ty::i8())], Ty::i8());
        let a1 = b.and(b.arg(1), b.const_int(8, 0x0f));
        let s = b.select(b.arg(0), a1, b.const_int(8, 3));
        b.ret(s.clone());
        let f = b.finish();
        let mut a = KnownBitsAnalysis::new(&f);
        let kb = a.query(&s);
        assert_eq!(
            kb.value.zeros & 0xf0,
            0xf0,
            "both arms have high nibble zero"
        );
        assert!(
            kb.assumes_nonpoison.contains(&Value::Arg(0)),
            "conditional on %c"
        );
    }
}
