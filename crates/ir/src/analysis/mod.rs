//! Static analyses over the IR.
//!
//! Per §5.6 of the paper, most dataflow facts computed here hold only
//! *if the analyzed values are not poison*: analyses would be useless if
//! they had to return ⊤ whenever an input might be poison. Each analysis
//! therefore returns an [`Conditional`] result that records which values
//! the fact is conditional on. Clients rewriting expressions may ignore
//! the condition (the rewritten expression is poison exactly when the
//! original is); clients *moving code past control flow* (e.g. hoisting
//! a division out of a loop) must discharge it, typically by freezing.

pub mod known_bits;
pub mod manager;
pub mod scev;

use crate::value::Value;

/// An analysis fact that holds only if certain values are not poison
/// (an "upto" result in the terminology of §5.6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conditional<T> {
    /// The fact.
    pub value: T,
    /// Values that must be non-poison for the fact to hold. Empty means
    /// the fact holds unconditionally (e.g. facts about `freeze`
    /// results).
    pub assumes_nonpoison: Vec<Value>,
}

impl<T> Conditional<T> {
    /// A fact that holds unconditionally.
    pub fn unconditional(value: T) -> Conditional<T> {
        Conditional {
            value,
            assumes_nonpoison: Vec::new(),
        }
    }

    /// A fact conditional on the given values being non-poison.
    pub fn assuming(value: T, assumes: Vec<Value>) -> Conditional<T> {
        Conditional {
            value,
            assumes_nonpoison: assumes,
        }
    }

    /// Returns `true` if the fact holds without poison side conditions,
    /// and so may be used to justify speculation (§5.6).
    pub fn is_unconditional(&self) -> bool {
        self.assumes_nonpoison.is_empty()
    }

    /// Maps the fact, keeping the side conditions.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Conditional<U> {
        Conditional {
            value: f(self.value),
            assumes_nonpoison: self.assumes_nonpoison,
        }
    }
}
