//! The invalidation-aware analysis manager.
//!
//! This module is frost's analogue of LLVM's *new pass manager* analysis
//! layer: analyses ([`Analysis`]) are computed lazily, cached per
//! function in a [`FunctionAnalysisManager`], and invalidated *precisely*
//! between passes according to the [`PreservedAnalyses`] set each pass
//! reports. The legacy shape — every loop pass calling
//! `DomTree::compute` from scratch — is gone: all analysis access in the
//! optimizer goes through [`FunctionAnalysisManager::get`].
//!
//! ## Staleness model
//!
//! Every manager carries a per-function *modification epoch*
//! ([`FunctionAnalysisManager::epoch`]). Whoever mutates a function is
//! responsible for calling [`FunctionAnalysisManager::invalidate`] with
//! the preserved set of the transformation; invalidation eagerly drops
//! every cache entry that is not preserved and bumps the epoch, so a
//! stale result is structurally impossible to observe through
//! [`FunctionAnalysisManager::get`] — the cache simply no longer holds
//! it. The `ir.analysis.compute` trace span records the epoch each
//! result was computed at for debugging.
//!
//! As a safety net for *lying* passes, debug builds additionally keep a
//! fingerprint of the block graph (block count plus every terminator's
//! successor list) alongside any CFG-dependent cache entry. If a pass
//! mutates the CFG but claims to preserve CFG-dependent analyses,
//! [`FunctionAnalysisManager::invalidate`] panics with the offending
//! function's name instead of letting the stale dominator tree drive the
//! next pass.
//!
//! ## Observability
//!
//! The manager is metered through `frost-telemetry` (see
//! docs/OBSERVABILITY.md): the counters
//! `frost.ir.analysis.<name>.{hits,misses,invalidations}` are always on,
//! and every cache-miss computation is wrapped in an
//! `ir.analysis.compute` span carrying the analysis name, the epoch,
//! and the function's block count when tracing is enabled.
//!
//! ## Example
//!
//! ```
//! use frost_ir::analysis::manager::{DomTreeAnalysis, FunctionAnalysisManager, PreservedAnalyses};
//! use frost_ir::parse_function;
//!
//! let f = parse_function(
//!     "define i32 @id(i32 %x) {\nentry:\n  ret i32 %x\n}\n",
//! ).unwrap();
//! let mut fam = FunctionAnalysisManager::new();
//! let dt = fam.get::<DomTreeAnalysis>(&f); // computed
//! let dt2 = fam.get::<DomTreeAnalysis>(&f); // cached
//! assert!(std::rc::Rc::ptr_eq(&dt, &dt2));
//! fam.invalidate(&f, &PreservedAnalyses::none()); // dropped
//! ```

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use frost_telemetry::{counter, Counter};

use crate::cfg;
use crate::dom::DomTree;
use crate::function::{Function, UseCounts};
use crate::loops::LoopInfo;
use crate::value::BlockId;

/// A stable, process-wide identity for an analysis kind.
///
/// The wrapped name doubles as the telemetry key segment:
/// `frost.ir.analysis.<name>.hits` and friends.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AnalysisId(&'static str);

impl AnalysisId {
    /// Creates an id from a short, stable, lowercase name.
    pub const fn of(name: &'static str) -> AnalysisId {
        AnalysisId(name)
    }

    /// The analysis name (used in telemetry and reports).
    pub fn name(self) -> &'static str {
        self.0
    }
}

/// A lazily computed, cacheable per-function analysis.
///
/// Implementations are unit structs acting as type-level keys; the
/// payload lives in [`Analysis::Result`]. `compute` receives the manager
/// so analyses can be layered (e.g. [`LoopInfoAnalysis`] requests
/// [`DomTreeAnalysis`] instead of recomputing dominators).
pub trait Analysis: 'static {
    /// The computed result type.
    type Result: 'static;

    /// Stable identity; must be unique among all analyses.
    const ID: AnalysisId;

    /// Whether the result depends on the shape of the block graph.
    /// CFG-dependent entries participate in the debug-mode fingerprint
    /// check that catches passes lying about CFG preservation.
    const CFG_DEPENDENT: bool;

    /// Computes the analysis from scratch.
    fn compute(func: &Function, fam: &FunctionAnalysisManager) -> Self::Result;
}

/// The set of analyses a transformation promises it did not invalidate.
///
/// By convention a pass returns [`PreservedAnalyses::all`] **iff it made
/// no change at all**; any actual rewrite must return a strictly smaller
/// set (e.g. [`PreservedAnalyses::cfg`] for instruction-level rewrites
/// that leave the block graph intact, or [`PreservedAnalyses::none`] for
/// CFG surgery). The pass manager uses `preserves_all()` as its
/// "unchanged" signal for fixpoint detection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreservedAnalyses {
    all: bool,
    preserved: Vec<AnalysisId>,
}

impl PreservedAnalyses {
    /// Everything preserved — the transformation changed nothing.
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses {
            all: true,
            preserved: Vec::new(),
        }
    }

    /// Nothing preserved — every cached analysis is dropped.
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses {
            all: false,
            preserved: Vec::new(),
        }
    }

    /// The set preserved by instruction-level rewrites that do not touch
    /// the block graph: [`CfgAnalysis`], [`DomTreeAnalysis`] and
    /// [`LoopInfoAnalysis`] survive; value-level analyses (use counts,
    /// known bits) are invalidated.
    pub fn cfg() -> PreservedAnalyses {
        PreservedAnalyses::none()
            .preserve::<CfgAnalysis>()
            .preserve::<DomTreeAnalysis>()
            .preserve::<LoopInfoAnalysis>()
    }

    /// Returns the set with `A` additionally marked preserved.
    #[must_use]
    pub fn preserve<A: Analysis>(mut self) -> PreservedAnalyses {
        if !self.all && !self.preserved.contains(&A::ID) {
            self.preserved.push(A::ID);
        }
        self
    }

    /// Whether every analysis is preserved (the "no change" signal).
    pub fn preserves_all(&self) -> bool {
        self.all
    }

    /// Whether the analysis with `id` is preserved.
    pub fn is_preserved(&self, id: AnalysisId) -> bool {
        self.all || self.preserved.contains(&id)
    }

    /// Narrows `self` to the analyses preserved by *both* sets —
    /// the preserved set of running two transformations in sequence.
    pub fn intersect(&mut self, other: &PreservedAnalyses) {
        if other.all {
            return;
        }
        if self.all {
            *self = other.clone();
            return;
        }
        self.preserved.retain(|id| other.is_preserved(*id));
    }
}

/// One cached analysis result plus the bookkeeping invalidation needs.
struct CacheEntry {
    value: Rc<dyn Any>,
    /// Whether the result depends on the block graph — consulted by the
    /// debug-build lie detector ([`FunctionAnalysisManager::invalidate`]).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    cfg_dependent: bool,
}

/// Telemetry handles for one analysis kind, resolved once per manager so
/// steady-state cache traffic is plain atomic adds.
struct AnalysisStats {
    id: AnalysisId,
    hits: &'static Counter,
    misses: &'static Counter,
    invalidations: &'static Counter,
}

fn resolve_stats(id: AnalysisId) -> AnalysisStats {
    let name = id.name();
    AnalysisStats {
        id,
        hits: counter(&format!("frost.ir.analysis.{name}.hits")),
        misses: counter(&format!("frost.ir.analysis.{name}.misses")),
        invalidations: counter(&format!("frost.ir.analysis.{name}.invalidations")),
    }
}

/// Lazily computes and caches analyses for **one** function.
///
/// The manager does not hold a reference to the function; callers pass
/// it to [`FunctionAnalysisManager::get`] and are responsible for using
/// one manager per function (the pass manager keys its managers by
/// function index — see `ModuleAnalysisManager`).
///
/// Interior mutability (`RefCell`) keeps `get` usable from `&self`, so
/// passes can query analyses while holding `&mut Function`. The manager
/// is deliberately `!Sync`: each validation-campaign worker builds its
/// own.
pub struct FunctionAnalysisManager {
    entries: RefCell<HashMap<AnalysisId, CacheEntry>>,
    stats: RefCell<Vec<AnalysisStats>>,
    epoch: Cell<u64>,
    /// Fingerprint of the block graph at the time a CFG-dependent entry
    /// was last computed (debug-mode lie detection).
    cfg_stamp: Cell<u64>,
    force_recompute: bool,
}

impl FunctionAnalysisManager {
    /// An empty manager.
    pub fn new() -> FunctionAnalysisManager {
        FunctionAnalysisManager {
            entries: RefCell::new(HashMap::new()),
            stats: RefCell::new(Vec::new()),
            epoch: Cell::new(0),
            cfg_stamp: Cell::new(0),
            force_recompute: false,
        }
    }

    /// A manager that never serves from cache: every
    /// [`FunctionAnalysisManager::get`] recomputes. This is the
    /// reference configuration the differential tests and the
    /// `analysis_cache` microbench compare against.
    pub fn with_forced_recompute() -> FunctionAnalysisManager {
        FunctionAnalysisManager {
            force_recompute: true,
            ..FunctionAnalysisManager::new()
        }
    }

    /// Whether this manager is in forced-recompute mode.
    pub fn forced_recompute(&self) -> bool {
        self.force_recompute
    }

    /// The modification epoch: bumped on every invalidation.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    fn with_stats<R>(&self, id: AnalysisId, f: impl FnOnce(&AnalysisStats) -> R) -> R {
        let mut stats = self.stats.borrow_mut();
        if let Some(s) = stats.iter().find(|s| s.id == id) {
            return f(s);
        }
        stats.push(resolve_stats(id));
        f(stats.last().expect("just pushed"))
    }

    /// Returns the (possibly cached) result of analysis `A` on `func`.
    ///
    /// On a cache miss the result is computed — inside an
    /// `ir.analysis.compute` span when tracing is enabled — and cached
    /// until an [`FunctionAnalysisManager::invalidate`] call drops it.
    pub fn get<A: Analysis>(&self, func: &Function) -> Rc<A::Result> {
        if !self.force_recompute {
            let cached = self.entries.borrow().get(&A::ID).map(|e| e.value.clone());
            if let Some(value) = cached {
                self.with_stats(A::ID, |s| s.hits.incr());
                return value
                    .downcast::<A::Result>()
                    .expect("analysis id maps to one result type");
            }
        }
        self.with_stats(A::ID, |s| s.misses.incr());
        let value = if frost_telemetry::enabled() {
            let mut sp = frost_telemetry::span("ir.analysis.compute")
                .field("analysis", A::ID.name())
                .field("epoch", self.epoch.get());
            let value = Rc::new(A::compute(func, self));
            sp.set("blocks", func.blocks.len() as u64);
            value
        } else {
            Rc::new(A::compute(func, self))
        };
        if A::CFG_DEPENDENT {
            self.cfg_stamp.set(cfg_fingerprint(func));
        }
        self.entries.borrow_mut().insert(
            A::ID,
            CacheEntry {
                value: value.clone(),
                cfg_dependent: A::CFG_DEPENDENT,
            },
        );
        value
    }

    /// Returns the cached result of `A`, if present (never computes).
    pub fn cached<A: Analysis>(&self) -> Option<Rc<A::Result>> {
        let value = self.entries.borrow().get(&A::ID)?.value.clone();
        value.downcast::<A::Result>().ok()
    }

    /// Drops every cache entry not in `pa` and bumps the epoch.
    ///
    /// This is the *only* way cached results die, so the code that
    /// mutates a function must call it with an honest preserved set. In
    /// debug builds, if a CFG-dependent entry survives (the set claims
    /// the block graph is intact) the current CFG fingerprint is checked
    /// against the one recorded at compute time, catching passes that
    /// mutate the CFG while claiming `PreservedAnalyses::all()` or
    /// [`PreservedAnalyses::cfg`].
    pub fn invalidate(&mut self, func: &Function, pa: &PreservedAnalyses) {
        if !pa.preserves_all() {
            let mut entries = self.entries.borrow_mut();
            let mut dropped: Vec<AnalysisId> = Vec::new();
            entries.retain(|id, _| {
                let keep = pa.is_preserved(*id);
                if !keep {
                    dropped.push(*id);
                }
                keep
            });
            drop(entries);
            for id in dropped {
                self.with_stats(id, |s| s.invalidations.incr());
            }
            self.epoch.set(self.epoch.get() + 1);
        }
        #[cfg(debug_assertions)]
        self.assert_cfg_honest(func);
        #[cfg(not(debug_assertions))]
        let _ = func;
    }

    /// Drops everything (used after `Function::compact`, which renumbers
    /// every `InstId`) and bumps the epoch.
    pub fn clear(&mut self) {
        let dropped: Vec<AnalysisId> = self.entries.borrow().keys().copied().collect();
        if dropped.is_empty() {
            return;
        }
        self.entries.borrow_mut().clear();
        for id in dropped {
            self.with_stats(id, |s| s.invalidations.incr());
        }
        self.epoch.set(self.epoch.get() + 1);
    }

    #[cfg(debug_assertions)]
    fn assert_cfg_honest(&self, func: &Function) {
        let entries = self.entries.borrow();
        if entries.values().any(|e| e.cfg_dependent) {
            assert!(
                self.cfg_stamp.get() == cfg_fingerprint(func),
                "analysis invalidation bug: the CFG of `@{}` changed, but the \
                 preserved set kept a CFG-dependent analysis alive \
                 (a pass claimed PreservedAnalyses::all()/cfg() after mutating \
                 the block graph)",
                func.name
            );
        }
    }
}

impl Default for FunctionAnalysisManager {
    fn default() -> FunctionAnalysisManager {
        FunctionAnalysisManager::new()
    }
}

/// Per-function analysis managers for a module, keyed by function index.
///
/// The pass manager threads one of these through a whole pipeline run so
/// analyses survive across passes (and across fixpoint iterations) for
/// every function in the module.
pub struct ModuleAnalysisManager {
    fams: Vec<FunctionAnalysisManager>,
    force_recompute: bool,
}

impl ModuleAnalysisManager {
    /// An empty manager.
    pub fn new() -> ModuleAnalysisManager {
        ModuleAnalysisManager {
            fams: Vec::new(),
            force_recompute: false,
        }
    }

    /// A manager whose per-function managers never serve from cache
    /// (see [`FunctionAnalysisManager::with_forced_recompute`]).
    pub fn with_forced_recompute() -> ModuleAnalysisManager {
        ModuleAnalysisManager {
            fams: Vec::new(),
            force_recompute: true,
        }
    }

    /// Whether this manager is in forced-recompute mode.
    pub fn forced_recompute(&self) -> bool {
        self.force_recompute
    }

    /// The analysis manager for the function at `index` in the module's
    /// function list (created on first access).
    pub fn function(&mut self, index: usize) -> &mut FunctionAnalysisManager {
        while self.fams.len() <= index {
            self.fams.push(if self.force_recompute {
                FunctionAnalysisManager::with_forced_recompute()
            } else {
                FunctionAnalysisManager::new()
            });
        }
        &mut self.fams[index]
    }

    /// Clears every per-function cache (module-level surgery such as
    /// inlining, or post-pipeline `compact`, invalidates everything).
    pub fn invalidate_all(&mut self) {
        for fam in &mut self.fams {
            fam.clear();
        }
    }
}

impl Default for ModuleAnalysisManager {
    fn default() -> ModuleAnalysisManager {
        ModuleAnalysisManager::new()
    }
}

/// A fingerprint of the block graph: block count plus every terminator's
/// successor list. Instruction-level rewrites leave it unchanged;
/// adding/removing blocks or retargeting edges does not.
pub fn cfg_fingerprint(func: &Function) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    func.blocks.len().hash(&mut h);
    for bb in &func.blocks {
        for succ in bb.term.successors() {
            succ.index().hash(&mut h);
        }
        u32::MAX.hash(&mut h); // block separator
    }
    h.finish()
}

/// The cached CFG shape: predecessors, successors, and a reverse
/// postorder (see [`CfgAnalysis`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cfg {
    /// Predecessor blocks of each block, indexed by block index.
    pub preds: Vec<Vec<BlockId>>,
    /// Successor blocks of each block, indexed by block index.
    pub succs: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse postorder.
    pub rpo: Vec<BlockId>,
    /// RPO position of each block (`None` for unreachable blocks).
    pub rpo_number: Vec<Option<usize>>,
}

/// Analysis key for the CFG predecessor/successor maps and RPO.
pub struct CfgAnalysis;

impl Analysis for CfgAnalysis {
    type Result = Cfg;
    const ID: AnalysisId = AnalysisId::of("cfg");
    const CFG_DEPENDENT: bool = true;

    fn compute(func: &Function, _fam: &FunctionAnalysisManager) -> Cfg {
        let succs = func
            .block_ids()
            .map(|bb| func.block(bb).term.successors())
            .collect();
        Cfg {
            preds: func.predecessors(),
            succs,
            rpo: cfg::reverse_postorder(func),
            rpo_number: cfg::rpo_numbers(func),
        }
    }
}

/// Analysis key for the dominator tree ([`DomTree`]).
pub struct DomTreeAnalysis;

impl Analysis for DomTreeAnalysis {
    type Result = DomTree;
    const ID: AnalysisId = AnalysisId::of("domtree");
    const CFG_DEPENDENT: bool = true;

    fn compute(func: &Function, _fam: &FunctionAnalysisManager) -> DomTree {
        DomTree::compute(func)
    }
}

/// Analysis key for natural-loop structure ([`LoopInfo`]); layered on
/// [`DomTreeAnalysis`] through the manager.
pub struct LoopInfoAnalysis;

impl Analysis for LoopInfoAnalysis {
    type Result = LoopInfo;
    const ID: AnalysisId = AnalysisId::of("loopinfo");
    const CFG_DEPENDENT: bool = true;

    fn compute(func: &Function, fam: &FunctionAnalysisManager) -> LoopInfo {
        let dt = fam.get::<DomTreeAnalysis>(func);
        LoopInfo::compute(func, &dt)
    }
}

/// Analysis key for dense per-instruction use counts
/// ([`UseCounts`], a `Vec<u32>` indexed by `InstId`).
pub struct UseCountsAnalysis;

impl Analysis for UseCountsAnalysis {
    type Result = UseCounts;
    const ID: AnalysisId = AnalysisId::of("use_counts");
    const CFG_DEPENDENT: bool = false;

    fn compute(func: &Function, _fam: &FunctionAnalysisManager) -> UseCounts {
        func.use_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;
    use crate::Terminator;

    fn loopy() -> Function {
        parse_function(
            r#"
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %head ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %head, label %exit
exit:
  ret i32 %i2
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn caches_and_layers() {
        let f = loopy();
        let fam = FunctionAnalysisManager::new();
        let li = fam.get::<LoopInfoAnalysis>(&f);
        assert_eq!(li.loops.len(), 1);
        // LoopInfo computed DomTree through the manager: it is cached.
        assert!(fam.cached::<DomTreeAnalysis>().is_some());
        let li2 = fam.get::<LoopInfoAnalysis>(&f);
        assert!(Rc::ptr_eq(&li, &li2));
    }

    #[test]
    fn precise_invalidation() {
        let f = loopy();
        let mut fam = FunctionAnalysisManager::new();
        let _ = fam.get::<DomTreeAnalysis>(&f);
        let _ = fam.get::<UseCountsAnalysis>(&f);
        let epoch = fam.epoch();
        fam.invalidate(&f, &PreservedAnalyses::cfg());
        assert!(fam.cached::<DomTreeAnalysis>().is_some());
        assert!(fam.cached::<UseCountsAnalysis>().is_none());
        assert!(fam.epoch() > epoch);
        fam.invalidate(&f, &PreservedAnalyses::none());
        assert!(fam.cached::<DomTreeAnalysis>().is_none());
    }

    #[test]
    fn preserves_all_keeps_everything() {
        let f = loopy();
        let mut fam = FunctionAnalysisManager::new();
        let dt = fam.get::<DomTreeAnalysis>(&f);
        let epoch = fam.epoch();
        fam.invalidate(&f, &PreservedAnalyses::all());
        assert!(Rc::ptr_eq(&dt, &fam.get::<DomTreeAnalysis>(&f)));
        assert_eq!(fam.epoch(), epoch);
    }

    #[test]
    fn forced_recompute_never_hits() {
        let f = loopy();
        let fam = FunctionAnalysisManager::with_forced_recompute();
        let a = fam.get::<DomTreeAnalysis>(&f);
        let b = fam.get::<DomTreeAnalysis>(&f);
        assert!(!Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn intersect_narrows() {
        let mut pa = PreservedAnalyses::all();
        pa.intersect(&PreservedAnalyses::cfg());
        assert!(!pa.preserves_all());
        assert!(pa.is_preserved(DomTreeAnalysis::ID));
        assert!(!pa.is_preserved(UseCountsAnalysis::ID));
        pa.intersect(&PreservedAnalyses::none());
        assert!(!pa.is_preserved(DomTreeAnalysis::ID));
        let mut pb = PreservedAnalyses::none();
        pb.intersect(&PreservedAnalyses::all());
        assert_eq!(pb, PreservedAnalyses::none());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "analysis invalidation bug")]
    fn lying_preserved_set_is_caught() {
        let mut f = loopy();
        let mut fam = FunctionAnalysisManager::new();
        let _ = fam.get::<DomTreeAnalysis>(&f);
        // Mutate the CFG: cut the back edge.
        f.block_mut(crate::BlockId(1)).term = Terminator::Jmp(crate::BlockId(2));
        // ...but claim nothing changed.
        fam.invalidate(&f, &PreservedAnalyses::all());
    }
}
