//! A small scalar-evolution analysis: recognition of affine induction
//! variables `{start, +, step}` in natural loops.
//!
//! This is the analysis the paper's §2.4/Figure 3 induction-variable
//! widening rests on: the `nsw` flag on the increment means overflow
//! produces poison, which (under the proposed semantics) justifies
//! widening the induction variable to a wider type. §10.1 notes that
//! scalar evolution "currently fails to analyze expressions involving
//! freeze" — mirrored here: a frozen increment is *not* recognized.

use crate::function::Function;
use crate::inst::{BinOp, Flags, Inst};
use crate::loops::Loop;
use crate::value::{BlockId, InstId, Value};

/// An affine recurrence `{start, +, step}` for a loop phi.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineRec {
    /// The phi instruction defining the induction variable.
    pub phi: InstId,
    /// Value on loop entry.
    pub start: Value,
    /// Per-iteration increment (a loop-invariant value; usually a
    /// constant).
    pub step: Value,
    /// The increment instruction in the latch.
    pub step_inst: InstId,
    /// Attributes of the increment: `nsw` here is what makes widening
    /// sound under poison semantics.
    pub flags: Flags,
}

impl AffineRec {
    /// Returns `true` if signed overflow of the recurrence is deferred
    /// UB (the increment carries `nsw`), which justifies widening
    /// (§2.4).
    pub fn overflow_is_poison(&self) -> bool {
        self.flags.nsw
    }
}

/// Recognizes the affine induction variables of `lp`.
///
/// A phi `%i = phi [start, preheader], [%i.next, latch]` qualifies when
/// `%i.next = add %i, step` with loop-invariant `step`, the phi sits in
/// the loop header, and the add sits inside the loop.
pub fn find_affine_ivs(func: &Function, lp: &Loop) -> Vec<AffineRec> {
    let mut out = Vec::new();
    let header = func.block(lp.header);
    for &phi_id in &header.insts {
        let Inst::Phi { incoming, .. } = func.inst(phi_id) else {
            continue;
        };
        if incoming.len() != 2 {
            continue;
        }
        // Identify the loop edge and the entry edge.
        let (entry, back) = {
            let (a, b) = (&incoming[0], &incoming[1]);
            if lp.contains(a.1) && !lp.contains(b.1) {
                (b.clone(), a.clone())
            } else if lp.contains(b.1) && !lp.contains(a.1) {
                (a.clone(), b.clone())
            } else {
                continue;
            }
        };
        let Value::Inst(step_inst) = back.0 else {
            continue;
        };
        let Inst::Bin {
            op: BinOp::Add,
            flags,
            lhs,
            rhs,
            ..
        } = func.inst(step_inst)
        else {
            continue;
        };
        // The add must be `phi + step` (either operand order) with a
        // loop-invariant step.
        let phi_val = Value::Inst(phi_id);
        let step = if *lhs == phi_val {
            rhs.clone()
        } else if *rhs == phi_val {
            lhs.clone()
        } else {
            continue;
        };
        if !is_loop_invariant(func, lp, &step) {
            continue;
        }
        // The increment must live in the loop.
        let Some(add_bb) = func.block_of(step_inst) else {
            continue;
        };
        if !lp.contains(add_bb) {
            continue;
        }
        out.push(AffineRec {
            phi: phi_id,
            start: entry.0,
            step,
            step_inst,
            flags: *flags,
        });
    }
    out
}

/// Returns `true` if `v` does not depend on any instruction inside the
/// loop (constants, arguments, and instructions defined outside).
pub fn is_loop_invariant(func: &Function, lp: &Loop, v: &Value) -> bool {
    match v {
        Value::Const(_) | Value::Arg(_) => true,
        Value::Inst(id) => match func.block_of(*id) {
            Some(bb) => !lp.contains(bb),
            None => false,
        },
    }
}

/// The trip-count bound of a loop whose header compares an affine IV
/// against a loop-invariant bound: `icmp <cond> %iv, %n` controlling the
/// header branch. Returns the comparison instruction and bound.
pub fn header_exit_test(func: &Function, lp: &Loop) -> Option<(InstId, Value)> {
    let header = func.block(lp.header);
    let crate::inst::Terminator::Br { cond, .. } = &header.term else {
        return None;
    };
    let Value::Inst(cmp_id) = cond else {
        return None;
    };
    let Inst::Icmp { lhs, rhs, .. } = func.inst(*cmp_id) else {
        return None;
    };
    // One side must be an IV phi in this header, the other loop-invariant.
    let ivs = find_affine_ivs(func, lp);
    let is_iv = |v: &Value| matches!(v, Value::Inst(id) if ivs.iter().any(|r| r.phi == *id));
    if is_iv(lhs) && is_loop_invariant(func, lp, rhs) {
        Some((*cmp_id, rhs.clone()))
    } else if is_iv(rhs) && is_loop_invariant(func, lp, lhs) {
        Some((*cmp_id, lhs.clone()))
    } else {
        None
    }
}

/// Marker struct exposing [`BlockId`] in this module's public API for
/// documentation purposes.
#[doc(hidden)]
pub struct _Uses(pub BlockId);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::dom::DomTree;
    use crate::inst::Cond;
    use crate::loops::LoopInfo;
    use crate::types::Ty;

    /// Figure 3's loop: for (i = 0; i <= n; ++i) a[i] = 42.
    fn figure3() -> (Function, Loop) {
        let mut b = FunctionBuilder::new(
            "fig3",
            &[("n", Ty::i32()), ("a", Ty::ptr_to(Ty::i32()))],
            Ty::Void,
        );
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let i = b.phi(Ty::i32(), vec![(b.const_int(32, 0), BlockId::ENTRY)]);
        let c = b.icmp(Cond::Sle, i.clone(), b.arg(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let iext = b.sext(i.clone(), Ty::i64());
        let ptr = b.gep(b.arg(1), iext, true);
        b.store(b.const_int(32, 42), ptr);
        let i1 = b.add_flags(Flags::NSW, i.clone(), b.const_int(32, 1));
        b.phi_add_incoming(&i, i1, body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish_verified();
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        let lp = li.loops[0].clone();
        (f, lp)
    }

    #[test]
    fn recognizes_figure3_iv() {
        let (f, lp) = figure3();
        let ivs = find_affine_ivs(&f, &lp);
        assert_eq!(ivs.len(), 1);
        let iv = &ivs[0];
        assert!(iv.start.is_int_const(0));
        assert!(iv.step.is_int_const(1));
        assert!(iv.overflow_is_poison(), "increment is nsw");
    }

    #[test]
    fn finds_header_exit_test() {
        let (f, lp) = figure3();
        let (cmp, bound) = header_exit_test(&f, &lp).expect("exit test found");
        assert!(matches!(
            f.inst(cmp),
            Inst::Icmp {
                cond: Cond::Sle,
                ..
            }
        ));
        assert_eq!(bound, Value::Arg(0));
    }

    #[test]
    fn frozen_increment_defeats_scev() {
        // §10.1: scalar evolution fails on freeze.
        let mut b = FunctionBuilder::new("fr", &[("n", Ty::i32())], Ty::Void);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let i = b.phi(Ty::i32(), vec![(b.const_int(32, 0), BlockId::ENTRY)]);
        let c = b.icmp(Cond::Slt, i.clone(), b.arg(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add_flags(Flags::NSW, i.clone(), b.const_int(32, 1));
        let frozen = b.freeze(i1);
        b.phi_add_incoming(&i, frozen, body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish_verified();
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        let ivs = find_affine_ivs(&f, &li.loops[0]);
        assert!(ivs.is_empty(), "freeze blocks IV recognition");
    }

    #[test]
    fn non_invariant_step_is_rejected() {
        let mut b = FunctionBuilder::new("ni", &[("n", Ty::i32())], Ty::Void);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let i = b.phi(Ty::i32(), vec![(b.const_int(32, 0), BlockId::ENTRY)]);
        let c = b.icmp(Cond::Slt, i.clone(), b.arg(0));
        b.br(c, body, exit);
        b.switch_to(body);
        // step = i itself (i doubles): not loop-invariant.
        let i1 = b.add(i.clone(), i.clone());
        b.phi_add_incoming(&i, i1, body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish_verified();
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        let ivs = find_affine_ivs(&f, &li.loops[0]);
        assert!(ivs.is_empty());
    }
}
