//! An ergonomic builder for constructing functions in SSA form.
//!
//! ```
//! use frost_ir::{FunctionBuilder, Ty, Cond, Flags};
//!
//! // Build: define i32 @inc(i32 %x) { %a = add nsw i32 %x, 1; ret i32 %a }
//! let mut b = FunctionBuilder::new("inc", &[("x", Ty::i32())], Ty::i32());
//! let x = b.arg(0);
//! let a = b.add_flags(Flags::NSW, x, b.const_int(32, 1));
//! b.ret(a);
//! let f = b.finish();
//! assert_eq!(f.placed_inst_count(), 1);
//! ```

use crate::function::{Function, Param};
use crate::inst::{BinOp, CastKind, Cond, Flags, Inst, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, Constant, InstId, Value};

/// Incrementally builds a [`Function`].
///
/// Instructions are appended to the *current block*, which starts as the
/// entry block and is changed with [`FunctionBuilder::switch_to`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Starts a function with the given name, parameters, and return
    /// type. The current block is the entry block.
    pub fn new(name: &str, params: &[(&str, Ty)], ret_ty: Ty) -> FunctionBuilder {
        let params = params
            .iter()
            .map(|(n, ty)| Param {
                name: (*n).to_string(),
                ty: ty.clone(),
            })
            .collect();
        FunctionBuilder {
            func: Function::new(name, params, ret_ty),
            cur: BlockId::ENTRY,
        }
    }

    /// The `i`-th function argument as a value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: u32) -> Value {
        assert!(
            (i as usize) < self.func.params.len(),
            "argument index {i} out of range for @{}",
            self.func.name
        );
        Value::Arg(i)
    }

    /// An integer constant operand.
    pub fn const_int(&self, bits: u32, value: u128) -> Value {
        Value::int(bits, value)
    }

    /// The poison constant of type `ty`.
    pub fn poison(&self, ty: Ty) -> Value {
        Value::poison(ty)
    }

    /// The legacy undef constant of type `ty`.
    pub fn undef(&self, ty: Ty) -> Value {
        Value::undef(ty)
    }

    /// Creates a new block (does not switch to it).
    pub fn block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Makes `bb` the current block for subsequent instructions.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    fn emit(&mut self, inst: Inst) -> Value {
        Value::Inst(self.func.append_inst(self.cur, inst))
    }

    /// Emits a binary instruction, inferring the type from `lhs`.
    pub fn bin(&mut self, op: BinOp, flags: Flags, lhs: Value, rhs: Value) -> Value {
        let ty = self.func.value_ty(&lhs);
        self.emit(Inst::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        })
    }

    /// `add` without attributes.
    pub fn add(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Add, Flags::NONE, lhs, rhs)
    }

    /// `add` with the given attributes.
    pub fn add_flags(&mut self, flags: Flags, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Add, flags, lhs, rhs)
    }

    /// `sub` without attributes.
    pub fn sub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Sub, Flags::NONE, lhs, rhs)
    }

    /// `mul` without attributes.
    pub fn mul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Mul, Flags::NONE, lhs, rhs)
    }

    /// `udiv` without attributes.
    pub fn udiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::UDiv, Flags::NONE, lhs, rhs)
    }

    /// `sdiv` without attributes.
    pub fn sdiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::SDiv, Flags::NONE, lhs, rhs)
    }

    /// `and`.
    pub fn and(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::And, Flags::NONE, lhs, rhs)
    }

    /// `or`.
    pub fn or(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Or, Flags::NONE, lhs, rhs)
    }

    /// `xor`.
    pub fn xor(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Xor, Flags::NONE, lhs, rhs)
    }

    /// `shl` without attributes.
    pub fn shl(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Shl, Flags::NONE, lhs, rhs)
    }

    /// `lshr` without attributes.
    pub fn lshr(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::LShr, Flags::NONE, lhs, rhs)
    }

    /// `ashr` without attributes.
    pub fn ashr(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::AShr, Flags::NONE, lhs, rhs)
    }

    /// `icmp`, inferring the operand type from `lhs`.
    pub fn icmp(&mut self, cond: Cond, lhs: Value, rhs: Value) -> Value {
        let ty = self.func.value_ty(&lhs);
        self.emit(Inst::Icmp { cond, ty, lhs, rhs })
    }

    /// `select`, inferring the arm type from `tval`.
    pub fn select(&mut self, cond: Value, tval: Value, fval: Value) -> Value {
        let ty = self.func.value_ty(&tval);
        self.emit(Inst::Select {
            cond,
            ty,
            tval,
            fval,
        })
    }

    /// `freeze`, inferring the type from the operand.
    pub fn freeze(&mut self, val: Value) -> Value {
        let ty = self.func.value_ty(&val);
        self.emit(Inst::Freeze { ty, val })
    }

    /// `phi` with explicit type and incoming edges.
    pub fn phi(&mut self, ty: Ty, incoming: Vec<(Value, BlockId)>) -> Value {
        self.emit(Inst::Phi { ty, incoming })
    }

    fn cast(&mut self, kind: CastKind, val: Value, to_ty: Ty) -> Value {
        let from_ty = self.func.value_ty(&val);
        self.emit(Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        })
    }

    /// `zext ... to to_ty`.
    pub fn zext(&mut self, val: Value, to_ty: Ty) -> Value {
        self.cast(CastKind::Zext, val, to_ty)
    }

    /// `sext ... to to_ty`.
    pub fn sext(&mut self, val: Value, to_ty: Ty) -> Value {
        self.cast(CastKind::Sext, val, to_ty)
    }

    /// `trunc ... to to_ty`.
    pub fn trunc(&mut self, val: Value, to_ty: Ty) -> Value {
        self.cast(CastKind::Trunc, val, to_ty)
    }

    /// `bitcast ... to to_ty`.
    pub fn bitcast(&mut self, val: Value, to_ty: Ty) -> Value {
        let from_ty = self.func.value_ty(&val);
        self.emit(Inst::Bitcast {
            from_ty,
            to_ty,
            val,
        })
    }

    /// `getelementptr` with an `inbounds` choice. The stride is the size
    /// of `base`'s pointee type.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a pointer.
    pub fn gep(&mut self, base: Value, idx: Value, inbounds: bool) -> Value {
        let base_ty = self.func.value_ty(&base);
        let elem_ty = base_ty
            .pointee()
            .unwrap_or_else(|| panic!("gep base must be a pointer, got {base_ty}"))
            .clone();
        let idx_ty = self.func.value_ty(&idx);
        self.emit(Inst::Gep {
            elem_ty,
            base,
            idx_ty,
            idx,
            inbounds,
        })
    }

    /// `alloca ty` — a fresh logical block of `sizeof(ty)` bytes; the
    /// result has type `ty*`.
    pub fn alloca(&mut self, ty: Ty) -> Value {
        self.emit(Inst::Alloca { ty })
    }

    /// `ptrtoint val to to_ty` — observe a pointer's address (forces the
    /// finite memory phase).
    pub fn ptrtoint(&mut self, val: Value, to_ty: Ty) -> Value {
        let from_ty = self.func.value_ty(&val);
        self.emit(Inst::PtrToInt {
            from_ty,
            to_ty,
            val,
        })
    }

    /// `inttoptr val to to_ty` — forge a pointer from an integer address
    /// (forces the finite memory phase).
    pub fn inttoptr(&mut self, val: Value, to_ty: Ty) -> Value {
        let from_ty = self.func.value_ty(&val);
        self.emit(Inst::IntToPtr {
            from_ty,
            to_ty,
            val,
        })
    }

    /// `load` of type `ty` from `ptr`.
    pub fn load(&mut self, ty: Ty, ptr: Value) -> Value {
        self.emit(Inst::Load { ty, ptr })
    }

    /// `store val, ptr`.
    pub fn store(&mut self, val: Value, ptr: Value) {
        let ty = self.func.value_ty(&val);
        self.emit(Inst::Store { ty, val, ptr });
    }

    /// `assume i1 cond` — asserts a fact; produces no value.
    pub fn assume(&mut self, cond: Value) {
        self.emit(Inst::Assume { cond });
    }

    /// `extractelement vec, idx` (constant index).
    pub fn extractelement(&mut self, vec: Value, idx: Value) -> Value {
        let vec_ty = self.func.value_ty(&vec);
        let elem_ty = vec_ty
            .vector_elem()
            .unwrap_or_else(|| panic!("extractelement needs a vector, got {vec_ty}"))
            .clone();
        let len = vec_ty.vector_len().expect("vector has length");
        self.emit(Inst::ExtractElement {
            elem_ty,
            len,
            vec,
            idx,
        })
    }

    /// `insertelement vec, elt, idx` (constant index).
    pub fn insertelement(&mut self, vec: Value, elt: Value, idx: Value) -> Value {
        let vec_ty = self.func.value_ty(&vec);
        let elem_ty = vec_ty
            .vector_elem()
            .unwrap_or_else(|| panic!("insertelement needs a vector, got {vec_ty}"))
            .clone();
        let len = vec_ty.vector_len().expect("vector has length");
        self.emit(Inst::InsertElement {
            elem_ty,
            len,
            vec,
            elt,
            idx,
        })
    }

    /// Direct call. Argument types are inferred from the operands.
    pub fn call(&mut self, ret_ty: Ty, callee: &str, args: Vec<Value>) -> Value {
        let arg_tys = args.iter().map(|a| self.func.value_ty(a)).collect();
        self.emit(Inst::Call {
            ret_ty,
            callee: callee.to_string(),
            arg_tys,
            args,
        })
    }

    /// Terminates the current block with `ret <v>`.
    pub fn ret(&mut self, v: Value) {
        self.func.block_mut(self.cur).term = Terminator::Ret(Some(v));
    }

    /// Terminates the current block with `ret void`.
    pub fn ret_void(&mut self) {
        self.func.block_mut(self.cur).term = Terminator::Ret(None);
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Br {
            cond,
            then_bb,
            else_bb,
        };
    }

    /// Terminates the current block with an unconditional branch.
    pub fn jmp(&mut self, dest: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Jmp(dest);
    }

    /// Terminates the current block with `unreachable`.
    pub fn unreachable(&mut self) {
        self.func.block_mut(self.cur).term = Terminator::Unreachable;
    }

    /// Adds an incoming edge to an already-built phi (needed for loops,
    /// where a phi refers to values defined later).
    ///
    /// # Panics
    ///
    /// Panics if `phi` does not refer to a phi instruction.
    pub fn phi_add_incoming(&mut self, phi: &Value, val: Value, from: BlockId) {
        let id = phi.as_inst().expect("phi operand must be an instruction");
        match self.func.inst_mut(id) {
            Inst::Phi { incoming, .. } => incoming.push((val, from)),
            other => panic!("expected phi, found {}", other.mnemonic()),
        }
    }

    /// Finalizes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Finalizes the function and asserts it verifies.
    ///
    /// # Panics
    ///
    /// Panics with the verifier diagnostics if the function is ill-formed
    /// under the legacy semantics (which accept both `undef` and
    /// `poison`).
    pub fn finish_verified(self) -> Function {
        let f = self.func;
        if let Err(errs) = crate::verify::verify_function_legacy(&f) {
            panic!(
                "built function @{} fails verification:\n{}\n{}",
                f.name,
                errs.join("\n"),
                f
            );
        }
        f
    }
}

/// Convenience: builds the i1 constant `true`/`false`.
pub fn bool_const(v: bool) -> Value {
    Value::Const(Constant::bool(v))
}

/// Returns the id a freshly built instruction got, for tests that need
/// [`InstId`]s.
pub fn inst_id(v: &Value) -> InstId {
    v.as_inst().expect("value is an instruction result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i32()), ("y", Ty::i32())], Ty::i1());
        let x = b.arg(0);
        let y = b.arg(1);
        let sum = b.add_flags(Flags::NSW, x.clone(), y);
        let cmp = b.icmp(Cond::Sgt, sum, x);
        b.ret(cmp);
        let f = b.finish();
        assert_eq!(f.placed_inst_count(), 2);
        assert_eq!(f.value_ty(&Value::Inst(InstId(1))), Ty::i1());
    }

    #[test]
    fn builds_loop_with_phi_backfill() {
        // Figure 1 of the paper: count up to n, storing x+1.
        let mut b = FunctionBuilder::new(
            "store_loop",
            &[
                ("n", Ty::i32()),
                ("x", Ty::i32()),
                ("a", Ty::ptr_to(Ty::i32())),
            ],
            Ty::Void,
        );
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);

        b.switch_to(head);
        let i = b.phi(Ty::i32(), vec![(b.const_int(32, 0), BlockId::ENTRY)]);
        let c = b.icmp(Cond::Slt, i.clone(), b.arg(0));
        b.br(c, body, exit);

        b.switch_to(body);
        let x1 = b.add_flags(Flags::NSW, b.arg(1), b.const_int(32, 1));
        let ptr = b.gep(b.arg(2), i.clone(), true);
        b.store(x1, ptr);
        let i1 = b.add_flags(Flags::NSW, i.clone(), b.const_int(32, 1));
        b.phi_add_incoming(&i, i1, body);
        b.jmp(head);

        b.switch_to(exit);
        b.ret_void();

        let f = b.finish_verified();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.placed_inst_count(), 6);
    }

    #[test]
    fn gep_infers_stride_type() {
        let mut b = FunctionBuilder::new(
            "g",
            &[("p", Ty::ptr_to(Ty::i64())), ("i", Ty::i32())],
            Ty::Void,
        );
        let p = b.gep(b.arg(0), b.arg(1), false);
        let f_ref = b.func();
        assert_eq!(f_ref.value_ty(&p), Ty::ptr_to(Ty::i64()));
        match f_ref.inst(inst_id(&p)) {
            Inst::Gep {
                elem_ty, inbounds, ..
            } => {
                assert_eq!(*elem_ty, Ty::i64());
                assert!(!inbounds);
            }
            other => panic!("expected gep, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arg_out_of_range_panics() {
        let b = FunctionBuilder::new("f", &[], Ty::Void);
        let _ = b.arg(0);
    }

    #[test]
    fn vector_ops_infer_types() {
        let vty = Ty::vector(2, Ty::Int(16));
        let mut b = FunctionBuilder::new("v", &[("v", vty.clone())], Ty::Int(16));
        let e = b.extractelement(b.arg(0), b.const_int(32, 0));
        let v2 = b.insertelement(b.arg(0), e.clone(), b.const_int(32, 1));
        let f_ref = b.func();
        assert_eq!(f_ref.value_ty(&e), Ty::Int(16));
        assert_eq!(f_ref.value_ty(&v2), vty);
    }

    #[test]
    fn call_infers_arg_types() {
        let mut b = FunctionBuilder::new("caller", &[("x", Ty::i32())], Ty::Void);
        let r = b.call(Ty::i32(), "g", vec![b.arg(0)]);
        b.ret_void();
        let f = b.finish();
        match f.inst(inst_id(&r)) {
            Inst::Call {
                arg_tys, callee, ..
            } => {
                assert_eq!(arg_tys, &[Ty::i32()]);
                assert_eq!(callee, "g");
            }
            other => panic!("expected call, got {other:?}"),
        }
    }
}
