//! Control-flow-graph utilities: reachability, postorder, and reverse
//! postorder over a [`Function`]'s blocks.

use crate::function::Function;
use crate::value::BlockId;

/// Computes the set of blocks reachable from the entry block.
pub fn reachable(func: &Function) -> Vec<bool> {
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![BlockId::ENTRY];
    while let Some(bb) = stack.pop() {
        if seen[bb.index()] {
            continue;
        }
        seen[bb.index()] = true;
        for succ in func.block(bb).term.successors() {
            if !seen[succ.index()] {
                stack.push(succ);
            }
        }
    }
    seen
}

/// Blocks in postorder of a depth-first search from the entry block.
/// Unreachable blocks are not included.
pub fn postorder(func: &Function) -> Vec<BlockId> {
    let mut order = Vec::with_capacity(func.blocks.len());
    let mut state = vec![0u8; func.blocks.len()]; // 0 unvisited, 1 on stack, 2 done
                                                  // Iterative DFS with an explicit (block, next-successor) stack to
                                                  // avoid recursion depth limits on long CFGs.
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
    state[BlockId::ENTRY.index()] = 1;
    while let Some(&mut (bb, ref mut next)) = stack.last_mut() {
        let succs = func.block(bb).term.successors();
        if *next < succs.len() {
            let succ = succs[*next];
            *next += 1;
            if state[succ.index()] == 0 {
                state[succ.index()] = 1;
                stack.push((succ, 0));
            }
        } else {
            state[bb.index()] = 2;
            order.push(bb);
            stack.pop();
        }
    }
    order
}

/// Blocks in reverse postorder (the canonical forward-analysis order;
/// every block appears before its successors, back edges aside).
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let mut order = postorder(func);
    order.reverse();
    order
}

/// Maps each block to its position in reverse postorder; unreachable
/// blocks map to `None`.
pub fn rpo_numbers(func: &Function) -> Vec<Option<usize>> {
    let mut numbers = vec![None; func.blocks.len()];
    for (i, bb) in reverse_postorder(func).into_iter().enumerate() {
        numbers[bb.index()] = Some(i);
    }
    numbers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Ty;
    use crate::value::Value;

    /// entry -> {a, b} -> join; plus one unreachable block.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", &[("c", Ty::i1())], Ty::Void);
        let then_bb = b.block("a");
        let else_bb = b.block("b");
        let join = b.block("join");
        let dead = b.block("dead");
        b.br(b.arg(0), then_bb, else_bb);
        b.switch_to(then_bb);
        b.jmp(join);
        b.switch_to(else_bb);
        b.jmp(join);
        b.switch_to(join);
        b.ret_void();
        b.switch_to(dead);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn reachability_skips_dead_blocks() {
        let f = diamond();
        let r = reachable(&f);
        assert_eq!(r, vec![true, true, true, true, false]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_edges() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId::ENTRY);
        assert_eq!(rpo.len(), 4); // dead block excluded
        let numbers = rpo_numbers(&f);
        // Every reachable edge (u, v) that is not a back edge has
        // rpo(u) < rpo(v). The diamond has no back edges.
        for bb in f.block_ids() {
            let Some(u) = numbers[bb.index()] else {
                continue;
            };
            for s in f.block(bb).term.successors() {
                assert!(u < numbers[s.index()].unwrap());
            }
        }
    }

    #[test]
    fn loop_back_edge_has_decreasing_rpo() {
        let mut b = FunctionBuilder::new("l", &[("n", Ty::i32())], Ty::Void);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let c = b.icmp(crate::inst::Cond::Ne, b.arg(0), Value::int(32, 0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        let numbers = rpo_numbers(&f);
        // The back edge body -> head goes against RPO.
        assert!(numbers[body.index()].unwrap() > numbers[head.index()].unwrap());
    }
}
