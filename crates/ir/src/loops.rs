//! Natural-loop detection via back edges of the dominator tree.
//!
//! A back edge is an edge `latch -> header` where `header` dominates
//! `latch`; the natural loop of the edge is `header` plus every block
//! that reaches `latch` without passing through `header`. Loops sharing
//! a header are merged, as in LLVM's `LoopInfo`.

use std::collections::BTreeSet;

use crate::dom::DomTree;
use crate::function::Function;
use crate::value::BlockId;

/// A natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edges; dominates all blocks
    /// in the loop).
    pub header: BlockId,
    /// All blocks in the loop, including the header, in ascending id
    /// order.
    pub blocks: Vec<BlockId>,
    /// Latch blocks (sources of back edges into the header).
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Returns `true` if `bb` belongs to the loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.blocks.binary_search(&bb).is_ok()
    }

    /// Blocks outside the loop that are targets of edges leaving the
    /// loop (the loop's exit blocks).
    pub fn exit_blocks(&self, func: &Function) -> Vec<BlockId> {
        let mut exits = BTreeSet::new();
        for &bb in &self.blocks {
            for succ in func.block(bb).term.successors() {
                if !self.contains(succ) {
                    exits.insert(succ);
                }
            }
        }
        exits.into_iter().collect()
    }

    /// The unique block outside the loop that branches to the header, if
    /// there is exactly one (the preheader). Loop transformations
    /// typically require one.
    pub fn preheader(&self, func: &Function) -> Option<BlockId> {
        let preds = func.predecessors();
        let outside: Vec<BlockId> = preds[self.header.index()]
            .iter()
            .copied()
            .filter(|p| !self.contains(*p))
            .collect();
        match outside.as_slice() {
            // A preheader must branch *only* to the header.
            [p] if func.block(*p).term.successors() == vec![self.header] => Some(*p),
            _ => None,
        }
    }
}

/// Loop nest information for a function.
#[derive(Clone, Debug, Default)]
pub struct LoopInfo {
    /// All loops, outermost first (by containment).
    pub loops: Vec<Loop>,
}

impl LoopInfo {
    /// Detects the natural loops of `func`.
    pub fn compute(func: &Function, dt: &DomTree) -> LoopInfo {
        // Group back edges by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for bb in func.block_ids() {
            if !dt.is_reachable(bb) {
                continue;
            }
            for succ in func.block(bb).term.successors() {
                if dt.dominates(succ, bb) {
                    match by_header.iter_mut().find(|(h, _)| *h == succ) {
                        Some((_, latches)) => latches.push(bb),
                        None => by_header.push((succ, vec![bb])),
                    }
                }
            }
        }

        let preds = func.predecessors();
        let mut loops = Vec::new();
        for (header, latches) in by_header {
            // Walk backwards from each latch until the header.
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(bb) = stack.pop() {
                if blocks.insert(bb) {
                    for &p in &preds[bb.index()] {
                        if dt.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            loops.push(Loop {
                header,
                blocks: blocks.into_iter().collect(),
                latches,
            });
        }
        // Outermost first: a loop containing more blocks comes first.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        LoopInfo { loops }
    }

    /// The innermost loop containing `bb`, if any.
    pub fn innermost_containing(&self, bb: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(bb))
            .min_by_key(|l| l.blocks.len())
    }

    /// The loop headed at `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Cond;
    use crate::types::Ty;
    use crate::value::Value;

    /// entry -> head; head -> {body, exit}; body -> head.
    fn single_loop() -> (Function, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("l", &[("n", Ty::i32())], Ty::Void);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let c = b.icmp(Cond::Ne, b.arg(0), Value::int(32, 0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        (b.finish(), head, body, exit)
    }

    #[test]
    fn detects_single_loop() {
        let (f, head, body, exit) = single_loop();
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        assert_eq!(li.loops.len(), 1);
        let l = &li.loops[0];
        assert_eq!(l.header, head);
        assert_eq!(l.blocks, vec![head, body]);
        assert_eq!(l.latches, vec![body]);
        assert_eq!(l.exit_blocks(&f), vec![exit]);
        assert_eq!(l.preheader(&f), Some(BlockId::ENTRY));
        assert!(li.innermost_containing(body).is_some());
        assert!(li.innermost_containing(exit).is_none());
    }

    #[test]
    fn detects_nested_loops() {
        // entry -> h1; h1 -> {h2, exit}; h2 -> {b2, l1}; b2 -> h2; l1 -> h1.
        let mut b = FunctionBuilder::new("n", &[("c", Ty::i1()), ("d", Ty::i1())], Ty::Void);
        let h1 = b.block("h1");
        let h2 = b.block("h2");
        let b2 = b.block("b2");
        let l1 = b.block("l1");
        let exit = b.block("exit");
        b.jmp(h1);
        b.switch_to(h1);
        b.br(b.arg(0), h2, exit);
        b.switch_to(h2);
        b.br(b.arg(1), b2, l1);
        b.switch_to(b2);
        b.jmp(h2);
        b.switch_to(l1);
        b.jmp(h1);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);

        assert_eq!(li.loops.len(), 2);
        let outer = li.loop_with_header(h1).unwrap();
        let inner = li.loop_with_header(h2).unwrap();
        assert_eq!(outer.blocks, vec![h1, h2, b2, l1]);
        assert_eq!(inner.blocks, vec![h2, b2]);
        // Innermost containment picks the smaller loop.
        assert_eq!(li.innermost_containing(b2).unwrap().header, h2);
        assert_eq!(li.innermost_containing(l1).unwrap().header, h1);
        // Outermost first ordering.
        assert_eq!(li.loops[0].header, h1);
    }

    #[test]
    fn no_preheader_when_header_has_two_outside_preds() {
        let mut b = FunctionBuilder::new("p", &[("c", Ty::i1()), ("d", Ty::i1())], Ty::Void);
        let mid = b.block("mid");
        let head = b.block("head");
        let exit = b.block("exit");
        b.br(b.arg(0), mid, head);
        b.switch_to(mid);
        b.jmp(head);
        b.switch_to(head);
        b.br(b.arg(1), head, exit); // self loop
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        let l = li.loop_with_header(head).unwrap();
        assert_eq!(l.preheader(&f), None);
    }
}
