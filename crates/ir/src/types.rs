//! The type system of the frost IR.
//!
//! Following Figure 4 of the paper, types are arbitrary-bitwidth integers
//! `iN`, typed pointers `ty*`, fixed-length vectors `<N x ty>` of integers
//! or pointers, and `void` (the type of instructions that produce no
//! value, such as `store`).
//!
//! Pointers are 32 bits wide (the paper assumes 32-bit pointers without
//! loss of generality, §4.2).

use std::fmt;

/// Width of a pointer in bits (§4.2 of the paper fixes this to 32).
pub const PTR_BITS: u32 = 32;

/// Maximum supported integer width in bits.
///
/// Values are carried in `u128`, so widths up to 128 are representable.
pub const MAX_INT_BITS: u32 = 128;

/// A first-class type of the frost IR.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Ty {
    /// An integer type `iN` with `1 <= N <= 128`.
    Int(u32),
    /// A pointer to a value of the given type. Pointers are [`PTR_BITS`]
    /// bits wide.
    Ptr(Box<Ty>),
    /// A vector `<elems x elem>` with a statically-known number of
    /// elements. Element types are integers or pointers (vectors do not
    /// nest).
    Vector {
        /// Number of elements; always at least 1.
        elems: u32,
        /// Element type: [`Ty::Int`] or [`Ty::Ptr`].
        elem: Box<Ty>,
    },
    /// The absence of a value. Only valid as a function return type or
    /// the "result" of a `store`.
    Void,
}

impl Ty {
    /// Shorthand for the 1-bit integer (boolean) type.
    pub fn i1() -> Ty {
        Ty::Int(1)
    }

    /// Shorthand for `i8`.
    pub fn i8() -> Ty {
        Ty::Int(8)
    }

    /// Shorthand for `i16`.
    pub fn i16() -> Ty {
        Ty::Int(16)
    }

    /// Shorthand for `i32`.
    pub fn i32() -> Ty {
        Ty::Int(32)
    }

    /// Shorthand for `i64`.
    pub fn i64() -> Ty {
        Ty::Int(64)
    }

    /// A pointer to `pointee`.
    pub fn ptr_to(pointee: Ty) -> Ty {
        Ty::Ptr(Box::new(pointee))
    }

    /// A vector of `elems` elements of type `elem`.
    ///
    /// # Panics
    ///
    /// Panics if `elems == 0` or `elem` is not an integer or pointer type.
    pub fn vector(elems: u32, elem: Ty) -> Ty {
        assert!(elems > 0, "vector must have at least one element");
        assert!(
            matches!(elem, Ty::Int(_) | Ty::Ptr(_)),
            "vector elements must be integers or pointers, got {elem}"
        );
        Ty::Vector {
            elems,
            elem: Box::new(elem),
        }
    }

    /// Returns `true` for integer types.
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int(_))
    }

    /// Returns `true` for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Returns `true` for vector types.
    pub fn is_vector(&self) -> bool {
        matches!(self, Ty::Vector { .. })
    }

    /// Returns `true` for `void`.
    pub fn is_void(&self) -> bool {
        matches!(self, Ty::Void)
    }

    /// Returns `true` for the boolean type `i1`.
    pub fn is_bool(&self) -> bool {
        matches!(self, Ty::Int(1))
    }

    /// Returns `true` if the type is first-class, i.e. may be the type of
    /// an SSA register: integers, pointers, and vectors.
    pub fn is_first_class(&self) -> bool {
        !self.is_void()
    }

    /// The integer width if this is an integer type.
    pub fn int_bits(&self) -> Option<u32> {
        match self {
            Ty::Int(bits) => Some(*bits),
            _ => None,
        }
    }

    /// The pointee type if this is a pointer type.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// The element type if this is a vector type.
    pub fn vector_elem(&self) -> Option<&Ty> {
        match self {
            Ty::Vector { elem, .. } => Some(elem),
            _ => None,
        }
    }

    /// The element count if this is a vector type.
    pub fn vector_len(&self) -> Option<u32> {
        match self {
            Ty::Vector { elems, .. } => Some(*elems),
            _ => None,
        }
    }

    /// For a vector type, its element type; for a scalar, the type itself.
    ///
    /// This is the type an element-wise operation works on.
    pub fn scalar_ty(&self) -> &Ty {
        match self {
            Ty::Vector { elem, .. } => elem,
            other => other,
        }
    }

    /// The total width of the low-level bit representation of a value of
    /// this type, i.e. `bitwidth(ty)` in the paper.
    ///
    /// # Panics
    ///
    /// Panics for `void`, which has no bit representation.
    pub fn bitwidth(&self) -> u32 {
        match self {
            Ty::Int(bits) => *bits,
            Ty::Ptr(_) => PTR_BITS,
            Ty::Vector { elems, elem } => elems * elem.bitwidth(),
            Ty::Void => panic!("void has no bit representation"),
        }
    }

    /// Size of the in-memory representation of this type in bytes,
    /// rounding the bitwidth up to a whole number of bytes.
    ///
    /// Used as the `getelementptr` stride.
    pub fn byte_size(&self) -> u32 {
        self.bitwidth().div_ceil(8)
    }

    /// Checks basic well-formedness: integer widths are within range and
    /// vectors are non-empty with scalar elements.
    pub fn is_well_formed(&self) -> bool {
        match self {
            Ty::Int(bits) => *bits >= 1 && *bits <= MAX_INT_BITS,
            Ty::Ptr(pointee) => !pointee.is_void() && pointee.is_well_formed(),
            Ty::Vector { elems, elem } => {
                *elems > 0 && matches!(**elem, Ty::Int(_) | Ty::Ptr(_)) && elem.is_well_formed()
            }
            Ty::Void => true,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int(bits) => write!(f, "i{bits}"),
            Ty::Ptr(pointee) => write!(f, "{pointee}*"),
            Ty::Vector { elems, elem } => write!(f, "<{elems} x {elem}>"),
            Ty::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_like_llvm() {
        assert_eq!(Ty::i32().to_string(), "i32");
        assert_eq!(Ty::ptr_to(Ty::i8()).to_string(), "i8*");
        assert_eq!(Ty::vector(4, Ty::Int(16)).to_string(), "<4 x i16>");
        assert_eq!(Ty::Void.to_string(), "void");
        assert_eq!(Ty::ptr_to(Ty::ptr_to(Ty::i64())).to_string(), "i64**");
    }

    #[test]
    fn bitwidth_of_scalars_and_vectors() {
        assert_eq!(Ty::Int(1).bitwidth(), 1);
        assert_eq!(Ty::Int(37).bitwidth(), 37);
        assert_eq!(Ty::ptr_to(Ty::i8()).bitwidth(), PTR_BITS);
        assert_eq!(Ty::vector(4, Ty::Int(16)).bitwidth(), 64);
        assert_eq!(Ty::vector(32, Ty::Int(1)).bitwidth(), 32);
    }

    #[test]
    fn byte_size_rounds_up() {
        assert_eq!(Ty::Int(1).byte_size(), 1);
        assert_eq!(Ty::Int(8).byte_size(), 1);
        assert_eq!(Ty::Int(9).byte_size(), 2);
        assert_eq!(Ty::Int(32).byte_size(), 4);
        assert_eq!(Ty::vector(3, Ty::Int(8)).byte_size(), 3);
    }

    #[test]
    #[should_panic(expected = "void has no bit representation")]
    fn void_has_no_bitwidth() {
        let _ = Ty::Void.bitwidth();
    }

    #[test]
    fn scalar_ty_unwraps_vectors() {
        let v = Ty::vector(4, Ty::i32());
        assert_eq!(*v.scalar_ty(), Ty::i32());
        assert_eq!(*Ty::i8().scalar_ty(), Ty::i8());
    }

    #[test]
    fn well_formedness() {
        assert!(Ty::Int(1).is_well_formed());
        assert!(Ty::Int(128).is_well_formed());
        assert!(!Ty::Int(0).is_well_formed());
        assert!(!Ty::Int(129).is_well_formed());
        assert!(Ty::vector(2, Ty::i8()).is_well_formed());
        assert!(!Ty::Ptr(Box::new(Ty::Void)).is_well_formed());
        assert!(!Ty::Vector {
            elems: 0,
            elem: Box::new(Ty::i8())
        }
        .is_well_formed());
        assert!(!Ty::Vector {
            elems: 2,
            elem: Box::new(Ty::vector(2, Ty::i8()))
        }
        .is_well_formed());
    }

    #[test]
    fn accessors() {
        assert_eq!(Ty::Int(7).int_bits(), Some(7));
        assert_eq!(Ty::Void.int_bits(), None);
        assert_eq!(Ty::ptr_to(Ty::i32()).pointee(), Some(&Ty::i32()));
        let v = Ty::vector(8, Ty::Int(4));
        assert_eq!(v.vector_len(), Some(8));
        assert_eq!(v.vector_elem(), Some(&Ty::Int(4)));
        assert!(Ty::Int(1).is_bool());
        assert!(!Ty::Int(2).is_bool());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_len_vector_panics() {
        let _ = Ty::vector(0, Ty::i8());
    }

    #[test]
    #[should_panic(expected = "integers or pointers")]
    fn nested_vector_panics() {
        let _ = Ty::vector(2, Ty::vector(2, Ty::i8()));
    }
}
