//! The canonical pretty-printer: IR values → textual IR.
//!
//! This is the *only* textual rendering of the IR: the `Display` impls
//! on [`Module`]/[`Function`] delegate here, so a module has exactly
//! one textual form. The output is canonical — instruction results are
//! named `%t<id>` in definition order — and re-parses through
//! [`super::parse`] to a module whose every function is
//! [`FunctionKey`](crate::FunctionKey)-equal to the original.
//!
//! Every instruction spells out enough types to be unambiguous on its
//! own line; in particular casts always print their *source* type:
//! `zext i16 %x to i64`, never `zext %x to i64`.

use std::fmt::{self, Write as _};

use crate::function::{Function, Module};
use crate::inst::{Inst, Terminator};
use crate::value::{BlockId, Constant, Value};

/// Renders a constant with no leading type.
pub fn const_to_string(c: &Constant) -> String {
    match c {
        Constant::Int { value, .. } => format!("{value}"),
        Constant::Null(_) => "null".to_string(),
        Constant::Poison(_) => "poison".to_string(),
        Constant::Undef(_) => "undef".to_string(),
        Constant::Vector(elems) => {
            let mut s = String::from("<");
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{} {}", e.ty(), const_to_string(e));
            }
            s.push('>');
            s
        }
    }
}

/// Renders an operand (without its type) in the context of `f`.
pub fn value_to_string(f: &Function, v: &Value) -> String {
    match v {
        Value::Inst(id) => format!("%t{}", id.0),
        Value::Arg(i) => format!("%{}", f.params[*i as usize].name),
        Value::Const(c) => const_to_string(c),
    }
}

fn typed(f: &Function, v: &Value) -> String {
    format!("{} {}", f.value_ty(v), value_to_string(f, v))
}

fn block_label(f: &Function, bb: BlockId) -> &str {
    &f.blocks[bb.index()].name
}

/// Renders a single instruction line (without leading indentation).
pub fn inst_to_string(f: &Function, inst: &Inst, def: Option<&str>) -> String {
    let mut s = String::new();
    if let Some(name) = def {
        let _ = write!(s, "{name} = ");
    }
    match inst {
        Inst::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        } => {
            let _ = write!(s, "{op}");
            if !flags.is_none() {
                let _ = write!(s, " {flags}");
            }
            let _ = write!(
                s,
                " {ty} {}, {}",
                value_to_string(f, lhs),
                value_to_string(f, rhs)
            );
        }
        Inst::Icmp { cond, ty, lhs, rhs } => {
            let _ = write!(
                s,
                "icmp {cond} {ty} {}, {}",
                value_to_string(f, lhs),
                value_to_string(f, rhs)
            );
        }
        Inst::Select {
            cond,
            ty,
            tval,
            fval,
        } => {
            let _ = write!(
                s,
                "select {} {}, {ty} {}, {ty} {}",
                f.value_ty(cond),
                value_to_string(f, cond),
                value_to_string(f, tval),
                value_to_string(f, fval)
            );
        }
        Inst::Phi { ty, incoming } => {
            let _ = write!(s, "phi {ty} ");
            for (i, (v, bb)) in incoming.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[ {}, %{} ]", value_to_string(f, v), block_label(f, *bb));
            }
        }
        Inst::Freeze { ty, val } => {
            let _ = write!(s, "freeze {ty} {}", value_to_string(f, val));
        }
        Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        } => {
            // The source type is mandatory: `zext %x to i64` would be
            // ambiguous (the operand width is not recoverable from the
            // line alone).
            let _ = write!(s, "{kind} {from_ty} {} to {to_ty}", value_to_string(f, val));
        }
        Inst::Bitcast {
            from_ty,
            to_ty,
            val,
        } => {
            let _ = write!(
                s,
                "bitcast {from_ty} {} to {to_ty}",
                value_to_string(f, val)
            );
        }
        Inst::Gep {
            elem_ty,
            base,
            idx_ty,
            idx,
            inbounds,
        } => {
            let _ = write!(
                s,
                "getelementptr{} {elem_ty}, {elem_ty}* {}, {idx_ty} {}",
                if *inbounds { " inbounds" } else { "" },
                value_to_string(f, base),
                value_to_string(f, idx)
            );
        }
        Inst::Load { ty, ptr } => {
            let _ = write!(s, "load {ty}, {ty}* {}", value_to_string(f, ptr));
        }
        Inst::Store { ty, val, ptr } => {
            let _ = write!(
                s,
                "store {ty} {}, {ty}* {}",
                value_to_string(f, val),
                value_to_string(f, ptr)
            );
        }
        Inst::ExtractElement {
            elem_ty,
            len,
            vec,
            idx,
        } => {
            let _ = write!(
                s,
                "extractelement <{len} x {elem_ty}> {}, {}",
                value_to_string(f, vec),
                typed(f, idx)
            );
        }
        Inst::InsertElement {
            elem_ty,
            len,
            vec,
            elt,
            idx,
        } => {
            let _ = write!(
                s,
                "insertelement <{len} x {elem_ty}> {}, {elem_ty} {}, {}",
                value_to_string(f, vec),
                value_to_string(f, elt),
                typed(f, idx)
            );
        }
        Inst::Call {
            ret_ty,
            callee,
            arg_tys,
            args,
        } => {
            let _ = write!(s, "call {ret_ty} @{callee}(");
            for (i, (ty, a)) in arg_tys.iter().zip(args).enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{ty} {}", value_to_string(f, a));
            }
            s.push(')');
        }
        Inst::Alloca { ty } => {
            let _ = write!(s, "alloca {ty}");
        }
        Inst::PtrToInt {
            from_ty,
            to_ty,
            val,
        } => {
            let _ = write!(
                s,
                "ptrtoint {from_ty} {} to {to_ty}",
                value_to_string(f, val)
            );
        }
        Inst::IntToPtr {
            from_ty,
            to_ty,
            val,
        } => {
            let _ = write!(
                s,
                "inttoptr {from_ty} {} to {to_ty}",
                value_to_string(f, val)
            );
        }
        // Guard rows of the descriptor table print generically:
        // `<mnemonic> <ty> <fact>` (canonically `assume i1 %c`), so a
        // new guard needs no arm here.
        _ => {
            debug_assert!(inst.descriptor().is_guard());
            let _ = write!(s, "{}", inst.mnemonic());
            inst.for_each_operand(|v| {
                let _ = write!(s, " {}", typed(f, v));
            });
        }
    }
    s
}

/// Renders a terminator line (without leading indentation).
pub fn term_to_string(f: &Function, term: &Terminator) -> String {
    match term {
        Terminator::Ret(Some(v)) => format!("ret {}", typed(f, v)),
        Terminator::Ret(None) => "ret void".to_string(),
        Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "br i1 {}, label %{}, label %{}",
            value_to_string(f, cond),
            block_label(f, *then_bb),
            block_label(f, *else_bb)
        ),
        Terminator::Jmp(dest) => format!("br label %{}", block_label(f, *dest)),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

/// Writes the full textual form of a function.
pub fn print_function(func: &Function, out: &mut impl fmt::Write) -> fmt::Result {
    write!(out, "define {} @{}(", func.ret_ty, func.name)?;
    for (i, p) in func.params.iter().enumerate() {
        if i > 0 {
            out.write_str(", ")?;
        }
        write!(out, "{} %{}", p.ty, p.name)?;
    }
    out.write_str(") {\n")?;
    for bb in func.block_ids() {
        let block = func.block(bb);
        writeln!(out, "{}:", block.name)?;
        for &id in &block.insts {
            let inst = func.inst(id);
            let def = format!("%t{}", id.0);
            let def = if inst.result_ty().is_void() {
                None
            } else {
                Some(def.as_str())
            };
            writeln!(out, "  {}", inst_to_string(func, inst, def))?;
        }
        writeln!(out, "  {}", term_to_string(func, &block.term))?;
    }
    out.write_str("}\n")
}

/// Writes the full textual form of a module.
pub fn print_module(module: &Module, out: &mut impl fmt::Write) -> fmt::Result {
    let mut first = true;
    for d in &module.declarations {
        first = false;
        write!(out, "declare {} @{}(", d.ret_ty, d.name)?;
        for (i, ty) in d.params.iter().enumerate() {
            if i > 0 {
                out.write_str(", ")?;
            }
            write!(out, "{ty}")?;
        }
        out.write_str(")")?;
        if d.attrs.readnone {
            out.write_str(" readnone")?;
        }
        if d.attrs.willreturn {
            out.write_str(" willreturn")?;
        }
        out.write_str("\n")?;
    }
    for f in &module.functions {
        if !first {
            out.write_str("\n")?;
        }
        first = false;
        print_function(f, out)?;
    }
    Ok(())
}

/// Renders a function to a `String`.
pub fn function_to_string(func: &Function) -> String {
    let mut s = String::new();
    print_function(func, &mut s).expect("string formatting cannot fail");
    s
}

/// Renders a module to a `String`.
pub fn module_to_string(module: &Module) -> String {
    let mut s = String::new();
    print_module(module, &mut s).expect("string formatting cannot fail");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CastKind, Cond, Flags};
    use crate::text::parse_function;
    use crate::types::Ty;
    use crate::value::InstId;

    #[test]
    fn prints_figure_one_loop() {
        let mut b = FunctionBuilder::new(
            "store_loop",
            &[
                ("n", Ty::i32()),
                ("x", Ty::i32()),
                ("a", Ty::ptr_to(Ty::i32())),
            ],
            Ty::Void,
        );
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let i = b.phi(Ty::i32(), vec![(b.const_int(32, 0), BlockId::ENTRY)]);
        let c = b.icmp(Cond::Slt, i.clone(), b.arg(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let x1 = b.add_flags(Flags::NSW, b.arg(1), b.const_int(32, 1));
        let ptr = b.gep(b.arg(2), i.clone(), true);
        b.store(x1, ptr);
        let i1 = b.add_flags(Flags::NSW, i.clone(), b.const_int(32, 1));
        b.phi_add_incoming(&i, i1, body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();

        let text = function_to_string(&f);
        assert!(text.contains("define void @store_loop(i32 %n, i32 %x, i32* %a)"));
        assert!(text.contains("%t0 = phi i32 [ 0, %entry ], [ %t5, %body ]"));
        assert!(text.contains("%t1 = icmp slt i32 %t0, %n"));
        assert!(text.contains("br i1 %t1, label %body, label %exit"));
        assert!(text.contains("%t2 = add nsw i32 %x, 1"));
        assert!(text.contains("%t3 = getelementptr inbounds i32, i32* %a, i32 %t0"));
        assert!(text.contains("store i32 %t2, i32* %t3"));
        assert!(text.contains("ret void"));
    }

    #[test]
    fn prints_constants() {
        assert_eq!(const_to_string(&Constant::Poison(Ty::i8())), "poison");
        assert_eq!(const_to_string(&Constant::Undef(Ty::i8())), "undef");
        assert_eq!(
            const_to_string(&Constant::Null(Ty::ptr_to(Ty::i8()))),
            "null"
        );
        let v = Constant::Vector(vec![Constant::int(16, 1), Constant::Poison(Ty::Int(16))]);
        assert_eq!(const_to_string(&v), "<i16 1, i16 poison>");
    }

    #[test]
    fn prints_select_and_freeze() {
        let mut b = FunctionBuilder::new("s", &[("c", Ty::i1()), ("x", Ty::i8())], Ty::i8());
        let fr = b.freeze(b.arg(1));
        let sel = b.select(b.arg(0), fr, b.const_int(8, 0));
        b.ret(sel);
        let text = function_to_string(&b.finish());
        assert!(text.contains("%t0 = freeze i8 %x"));
        assert!(text.contains("%t1 = select i1 %c, i8 %t0, i8 0"));
    }

    /// Every cast variant must print its *source* type (`<op> <from_ty>
    /// <val> to <to_ty>`): `zext %x to i64` would not re-parse, and a
    /// form without the operand width would be ambiguous. Each printed
    /// line is also required to re-parse to the identical instruction,
    /// which pins `Display` and the parser to one textual form.
    #[test]
    fn cast_display_always_includes_source_type() {
        let cases: &[(Inst, &str)] = &[
            (
                Inst::Cast {
                    kind: CastKind::Zext,
                    from_ty: Ty::Int(16),
                    to_ty: Ty::Int(64),
                    val: Value::Arg(0),
                },
                "zext i16 %x to i64",
            ),
            (
                Inst::Cast {
                    kind: CastKind::Sext,
                    from_ty: Ty::Int(3),
                    to_ty: Ty::Int(5),
                    val: Value::Arg(0),
                },
                "sext i3 %x to i5",
            ),
            (
                Inst::Cast {
                    kind: CastKind::Trunc,
                    from_ty: Ty::Int(32),
                    to_ty: Ty::Int(16),
                    val: Value::Arg(0),
                },
                "trunc i32 %x to i16",
            ),
            (
                Inst::Cast {
                    kind: CastKind::Zext,
                    from_ty: Ty::vector(2, Ty::Int(8)),
                    to_ty: Ty::vector(2, Ty::Int(16)),
                    val: Value::Arg(0),
                },
                "zext <2 x i8> %x to <2 x i16>",
            ),
            (
                Inst::Bitcast {
                    from_ty: Ty::vector(2, Ty::Int(16)),
                    to_ty: Ty::Int(32),
                    val: Value::Arg(0),
                },
                "bitcast <2 x i16> %x to i32",
            ),
            (
                Inst::Bitcast {
                    from_ty: Ty::ptr_to(Ty::Int(16)),
                    to_ty: Ty::ptr_to(Ty::vector(2, Ty::Int(16))),
                    val: Value::Arg(0),
                },
                "bitcast i16* %x to <2 x i16>*",
            ),
        ];
        for (inst, want) in cases {
            let mut f = Function {
                name: "c".into(),
                params: vec![crate::function::Param {
                    name: "x".into(),
                    ty: match inst {
                        Inst::Cast { from_ty, .. } | Inst::Bitcast { from_ty, .. } => {
                            from_ty.clone()
                        }
                        _ => unreachable!(),
                    },
                }],
                ret_ty: inst.result_ty(),
                blocks: vec![Block::new("entry")],
                insts: Vec::new(),
            };
            let line = inst_to_string(&f, inst, None);
            assert_eq!(&line, want);
            // The line re-parses to the identical instruction.
            let id = f.add_inst(inst.clone());
            f.blocks[0].insts.push(id);
            f.blocks[0].term = Terminator::Ret(Some(Value::Inst(id)));
            let reparsed = parse_function(&function_to_string(&f)).unwrap();
            assert_eq!(reparsed.inst(InstId(0)), inst, "cast roundtrip: {want}");
        }
    }

    /// The memory instructions print in their canonical one-line forms
    /// and roundtrip through the parser.
    #[test]
    fn prints_memory_instructions() {
        let mut b = FunctionBuilder::new("m", &[], Ty::i8());
        let p = b.alloca(Ty::i8());
        b.store(b.const_int(8, 1), p.clone());
        let a = b.ptrtoint(p.clone(), Ty::i32());
        let q = b.inttoptr(a, Ty::ptr_to(Ty::i8()));
        let v = b.load(Ty::i8(), q);
        b.ret(v);
        let f = b.finish_verified();
        let text = function_to_string(&f);
        assert!(text.contains("%t0 = alloca i8"));
        assert!(text.contains("%t2 = ptrtoint i8* %t0 to i32"));
        assert!(text.contains("%t3 = inttoptr i32 %t2 to i8*"));
        let reparsed = parse_function(&text).unwrap();
        assert_eq!(
            crate::FunctionKey::of(&reparsed),
            crate::FunctionKey::of(&f),
            "memory-inst roundtrip"
        );
    }

    use crate::function::Block;

    /// `Display` and the canonical printer are the same code path —
    /// there is exactly one textual form.
    #[test]
    fn display_is_the_canonical_printer() {
        let f =
            parse_function("define i8 @d(i8 %x) {\nentry:\n  %t0 = add i8 %x, 1\n  ret i8 %t0\n}")
                .unwrap();
        assert_eq!(format!("{f}"), function_to_string(&f));
        let m = crate::text::parse_module(
            "declare i8 @e(i8)\ndefine i8 @d(i8 %x) {\nentry:\n  ret i8 %x\n}",
        )
        .unwrap();
        assert_eq!(format!("{m}"), module_to_string(&m));
    }
}
