//! The parser: spanned tokens → [`Module`]/[`Function`] values.
//!
//! A hand-written recursive-descent parser over the token stream of
//! [`lexer`](super::lexer). Parsing is two-pass within each function:
//! a pre-scan assigns [`InstId`]s and [`BlockId`]s in textual order so
//! that forward references (phis, loop back edges) resolve without
//! placeholders. Every failure is a [`ParseError`] carrying the byte
//! span of the offending token and rendering a caret-underlined
//! excerpt of the source line.

use std::collections::HashMap;
use std::fmt;

use super::lexer::{lex, Span, Tok, Token};
use crate::function::{Block, DeclAttrs, FuncDecl, Function, Module, Param};
use crate::inst::{BinOp, CastKind, Cond, Flags, Inst, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, Constant, InstId, Value};

/// A parse failure, pinpointed to a byte span of the source.
///
/// [`Display`](fmt::Display) renders a compiler-style diagnostic with
/// the offending line and a caret underline:
///
/// ```text
/// error: unknown local '%missing'
///   --> line 3, column 20
///    |
///  3 |   %a = add i32 %x, %missing
///    |                    ^^^^^^^^
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending span.
    pub line: usize,
    /// 1-based column (in characters) of the offending span.
    pub column: usize,
    /// Byte range of the offending token(s) in the source.
    pub span: Span,
    /// The full text of the offending source line (no trailing newline).
    source_line: String,
    /// Width of the caret underline, in characters (at least 1).
    caret_len: usize,
}

impl ParseError {
    /// Builds an error for `span` of `src`, extracting the source line
    /// and caret geometry for the rendered excerpt.
    pub fn at(src: &str, span: Span, message: impl Into<String>) -> ParseError {
        let at = span.start.min(src.len());
        let line_start = src[..at].rfind('\n').map_or(0, |p| p + 1);
        let line_end = src[at..].find('\n').map_or(src.len(), |p| at + p);
        let line = src[..at].bytes().filter(|&b| b == b'\n').count() + 1;
        let column = src[line_start..at].chars().count() + 1;
        // Underline the intersection of the span with its first line.
        let underline_end = span.end.clamp(at, line_end);
        let caret_len = src
            .get(at..underline_end)
            .map_or(1, |s| s.chars().count())
            .max(1);
        ParseError {
            message: message.into(),
            line,
            column,
            span,
            source_line: src[line_start..line_end].to_string(),
            caret_len,
        }
    }

    /// The caret-underlined source excerpt (the part of the rendered
    /// diagnostic below the `-->` location line).
    pub fn excerpt(&self) -> String {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let underline_pad: String = self
            .source_line
            .chars()
            .take(self.column - 1)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        format!(
            "{pad} |\n{gutter} | {line}\n{pad} | {underline_pad}{carets}",
            line = self.source_line,
            carets = "^".repeat(self.caret_len),
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error: {}\n  --> line {}, column {}\n{}",
            self.message,
            self.line,
            self.column,
            self.excerpt()
        )
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// Span of the token about to be consumed (or an end-of-input
    /// point span).
    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.src.len()))
    }

    /// Span of the most recently consumed token (for diagnostics about
    /// a token that has already been read).
    fn prev_span(&self) -> Span {
        if self.pos == 0 {
            return Span::point(0);
        }
        self.toks
            .get(self.pos - 1)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.src.len()))
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError::at(self.src, self.span(), message))
    }

    fn err_at<T>(&self, span: Span, message: impl Into<String>) -> Result<T> {
        Err(ParseError::at(self.src, span, message))
    }

    fn next(&mut self) -> Result<Tok> {
        match self.toks.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t.tok.clone())
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        let got = self.next()?;
        if got == tok {
            Ok(())
        } else {
            self.pos -= 1;
            self.err(format!("expected {tok}, found {got}"))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        if self.eat_word(word) {
            Ok(())
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn expect_local(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Local(n) => Ok(n),
            got => {
                self.pos -= 1;
                self.err(format!("expected a %name, found {got}"))
            }
        }
    }

    fn expect_global(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Global(n) => Ok(n),
            got => {
                self.pos -= 1;
                self.err(format!("expected an @name, found {got}"))
            }
        }
    }

    /// Parses a type. `void` is accepted only when `allow_void` is set.
    fn parse_ty(&mut self, allow_void: bool) -> Result<Ty> {
        let base = match self.next()? {
            Tok::Word(w) if w == "void" => {
                if !allow_void {
                    self.pos -= 1;
                    return self.err("void is not valid here");
                }
                Ty::Void
            }
            Tok::Word(w) if w.starts_with('i') && w[1..].chars().all(|c| c.is_ascii_digit()) => {
                let span = self.prev_span();
                let bits: u32 = w[1..]
                    .parse()
                    .map_err(|_| ParseError::at(self.src, span, "bad integer width"))?;
                if bits == 0 || bits > crate::types::MAX_INT_BITS {
                    return self.err_at(span, format!("integer width {bits} out of range"));
                }
                Ty::Int(bits)
            }
            Tok::Lt => {
                let elems = match self.next()? {
                    Tok::Int(v) if v > 0 => v as u32,
                    _ => {
                        self.pos -= 1;
                        return self.err("expected a positive vector length");
                    }
                };
                self.expect_word("x")?;
                let elem_span = self.span();
                let elem = self.parse_ty(false)?;
                self.expect(Tok::Gt)?;
                if !matches!(elem, Ty::Int(_) | Ty::Ptr(_)) {
                    return self.err_at(elem_span, "vector elements must be integers or pointers");
                }
                Ty::Vector {
                    elems,
                    elem: Box::new(elem),
                }
            }
            got => {
                self.pos -= 1;
                return self.err(format!("expected a type, found {got}"));
            }
        };
        let mut ty = base;
        while self.eat(&Tok::Star) {
            if ty.is_void() {
                return self.err_at(self.prev_span(), "cannot form a pointer to void");
            }
            ty = Ty::ptr_to(ty);
        }
        Ok(ty)
    }
}

/// Symbol tables of the function being parsed.
struct FnContext {
    /// Parameter name -> index.
    params: HashMap<String, u32>,
    /// Local definition name -> pre-assigned instruction id.
    defs: HashMap<String, InstId>,
    /// Block label -> pre-assigned block id.
    labels: HashMap<String, BlockId>,
}

impl FnContext {
    fn resolve_local(&self, p: &Parser<'_>, name: &str) -> Result<Value> {
        if let Some(&i) = self.params.get(name) {
            return Ok(Value::Arg(i));
        }
        if let Some(&id) = self.defs.get(name) {
            return Ok(Value::Inst(id));
        }
        Err(ParseError::at(
            p.src,
            p.prev_span(),
            format!("unknown local %{name}"),
        ))
    }

    fn resolve_label(&self, p: &Parser<'_>, name: &str) -> Result<BlockId> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::at(p.src, p.prev_span(), format!("unknown label %{name}")))
    }
}

/// Parses a constant or local of the given expected type.
fn parse_value(p: &mut Parser<'_>, ctx: &FnContext, ty: &Ty) -> Result<Value> {
    match p.next()? {
        Tok::Local(name) => ctx.resolve_local(p, &name),
        Tok::Int(v) => match ty.int_bits() {
            Some(bits) => Ok(Value::int(bits, v as u128)),
            None => p.err_at(
                p.prev_span(),
                format!("integer literal cannot have type {ty}"),
            ),
        },
        Tok::Word(w) if w == "true" => Ok(Value::bool(true)),
        Tok::Word(w) if w == "false" => Ok(Value::bool(false)),
        Tok::Word(w) if w == "poison" => Ok(Value::poison(ty.clone())),
        Tok::Word(w) if w == "undef" => Ok(Value::undef(ty.clone())),
        Tok::Word(w) if w == "null" => Ok(Value::Const(Constant::Null(ty.clone()))),
        Tok::Lt => {
            // Vector constant: `<i16 1, i16 poison>`.
            let mut elems = Vec::new();
            loop {
                let ety = p.parse_ty(false)?;
                let espan = p.span();
                let v = parse_value(p, ctx, &ety)?;
                match v {
                    Value::Const(c) => elems.push(c),
                    _ => return p.err_at(espan, "vector constant elements must be constants"),
                }
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            p.expect(Tok::Gt)?;
            Ok(Value::Const(Constant::Vector(elems)))
        }
        got => {
            p.pos -= 1;
            p.err(format!("expected a value, found {got}"))
        }
    }
}

fn parse_flags(p: &mut Parser<'_>) -> Flags {
    let mut flags = Flags::NONE;
    loop {
        if p.eat_word("nsw") {
            flags.nsw = true;
        } else if p.eat_word("nuw") {
            flags.nuw = true;
        } else if p.eat_word("exact") {
            flags.exact = true;
        } else {
            return flags;
        }
    }
}

fn binop_from_word(w: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|op| op.mnemonic() == w)
}

fn cond_from_word(w: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.mnemonic() == w)
}

fn cast_from_word(w: &str) -> Option<CastKind> {
    match w {
        "zext" => Some(CastKind::Zext),
        "sext" => Some(CastKind::Sext),
        "trunc" => Some(CastKind::Trunc),
        _ => None,
    }
}

/// Parses one instruction after the optional `%name =` prefix.
fn parse_inst(p: &mut Parser<'_>, ctx: &FnContext) -> Result<Inst> {
    let mnemonic_span = p.span();
    let word = match p.next()? {
        Tok::Word(w) => w,
        got => {
            p.pos -= 1;
            return p.err(format!("expected an instruction mnemonic, found {got}"));
        }
    };
    if let Some(op) = binop_from_word(&word) {
        let flags = parse_flags(p);
        let ty = p.parse_ty(false)?;
        let lhs = parse_value(p, ctx, &ty)?;
        p.expect(Tok::Comma)?;
        let rhs = parse_value(p, ctx, &ty)?;
        return Ok(Inst::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        });
    }
    if let Some(kind) = cast_from_word(&word) {
        let from_ty = p.parse_ty(false)?;
        let val = parse_value(p, ctx, &from_ty)?;
        p.expect_word("to")?;
        let to_ty = p.parse_ty(false)?;
        return Ok(Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        });
    }
    match word.as_str() {
        "icmp" => {
            let cond = match p.next()? {
                Tok::Word(w) => cond_from_word(&w).ok_or_else(|| {
                    ParseError::at(
                        p.src,
                        p.prev_span(),
                        format!("unknown icmp condition '{w}'"),
                    )
                })?,
                got => {
                    p.pos -= 1;
                    return p.err(format!("expected an icmp condition, found {got}"));
                }
            };
            let ty = p.parse_ty(false)?;
            let lhs = parse_value(p, ctx, &ty)?;
            p.expect(Tok::Comma)?;
            let rhs = parse_value(p, ctx, &ty)?;
            Ok(Inst::Icmp { cond, ty, lhs, rhs })
        }
        "select" => {
            let cond_ty = p.parse_ty(false)?;
            let cond = parse_value(p, ctx, &cond_ty)?;
            p.expect(Tok::Comma)?;
            let ty = p.parse_ty(false)?;
            let tval = parse_value(p, ctx, &ty)?;
            p.expect(Tok::Comma)?;
            let fty_span = p.span();
            let fty = p.parse_ty(false)?;
            if fty != ty {
                return p.err_at(
                    fty_span.to(p.prev_span()),
                    format!("select arms must have the same type ({ty} vs {fty})"),
                );
            }
            let fval = parse_value(p, ctx, &ty)?;
            Ok(Inst::Select {
                cond,
                ty,
                tval,
                fval,
            })
        }
        "phi" => {
            let ty = p.parse_ty(false)?;
            let mut incoming = Vec::new();
            loop {
                p.expect(Tok::LBracket)?;
                let v = parse_value(p, ctx, &ty)?;
                p.expect(Tok::Comma)?;
                let label = p.expect_local()?;
                let bb = ctx.resolve_label(p, &label)?;
                p.expect(Tok::RBracket)?;
                incoming.push((v, bb));
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            Ok(Inst::Phi { ty, incoming })
        }
        "freeze" => {
            let ty = p.parse_ty(false)?;
            let val = parse_value(p, ctx, &ty)?;
            Ok(Inst::Freeze { ty, val })
        }
        "bitcast" => {
            let from_ty = p.parse_ty(false)?;
            let val = parse_value(p, ctx, &from_ty)?;
            p.expect_word("to")?;
            let to_ty = p.parse_ty(false)?;
            Ok(Inst::Bitcast {
                from_ty,
                to_ty,
                val,
            })
        }
        "getelementptr" => {
            let inbounds = p.eat_word("inbounds");
            let elem_ty = p.parse_ty(false)?;
            p.expect(Tok::Comma)?;
            let ptr_span = p.span();
            let ptr_ty = p.parse_ty(false)?;
            if ptr_ty != Ty::ptr_to(elem_ty.clone()) {
                return p.err_at(
                    ptr_span.to(p.prev_span()),
                    format!("gep pointer type must be {elem_ty}*"),
                );
            }
            let base = parse_value(p, ctx, &ptr_ty)?;
            p.expect(Tok::Comma)?;
            let idx_ty = p.parse_ty(false)?;
            let idx = parse_value(p, ctx, &idx_ty)?;
            Ok(Inst::Gep {
                elem_ty,
                base,
                idx_ty,
                idx,
                inbounds,
            })
        }
        "load" => {
            let ty = p.parse_ty(false)?;
            p.expect(Tok::Comma)?;
            let ptr_span = p.span();
            let ptr_ty = p.parse_ty(false)?;
            if ptr_ty != Ty::ptr_to(ty.clone()) {
                return p.err_at(
                    ptr_span.to(p.prev_span()),
                    format!("load pointer type must be {ty}*"),
                );
            }
            let ptr = parse_value(p, ctx, &ptr_ty)?;
            Ok(Inst::Load { ty, ptr })
        }
        "store" => {
            let ty = p.parse_ty(false)?;
            let val = parse_value(p, ctx, &ty)?;
            p.expect(Tok::Comma)?;
            let ptr_span = p.span();
            let ptr_ty = p.parse_ty(false)?;
            if ptr_ty != Ty::ptr_to(ty.clone()) {
                return p.err_at(
                    ptr_span.to(p.prev_span()),
                    format!("store pointer type must be {ty}*"),
                );
            }
            let ptr = parse_value(p, ctx, &ptr_ty)?;
            Ok(Inst::Store { ty, val, ptr })
        }
        "extractelement" => {
            let vec_span = p.span();
            let vec_ty = p.parse_ty(false)?;
            let (len, elem_ty) = match &vec_ty {
                Ty::Vector { elems, elem } => (*elems, (**elem).clone()),
                _ => {
                    return p.err_at(
                        vec_span.to(p.prev_span()),
                        "extractelement needs a vector type",
                    )
                }
            };
            let vec = parse_value(p, ctx, &vec_ty)?;
            p.expect(Tok::Comma)?;
            let idx_ty = p.parse_ty(false)?;
            let idx = parse_value(p, ctx, &idx_ty)?;
            Ok(Inst::ExtractElement {
                elem_ty,
                len,
                vec,
                idx,
            })
        }
        "insertelement" => {
            let vec_span = p.span();
            let vec_ty = p.parse_ty(false)?;
            let (len, elem_ty) = match &vec_ty {
                Ty::Vector { elems, elem } => (*elems, (**elem).clone()),
                _ => {
                    return p.err_at(
                        vec_span.to(p.prev_span()),
                        "insertelement needs a vector type",
                    )
                }
            };
            let vec = parse_value(p, ctx, &vec_ty)?;
            p.expect(Tok::Comma)?;
            let ety_span = p.span();
            let ety = p.parse_ty(false)?;
            if ety != elem_ty {
                return p.err_at(
                    ety_span.to(p.prev_span()),
                    format!("insertelement element type mismatch ({elem_ty} vs {ety})"),
                );
            }
            let elt = parse_value(p, ctx, &elem_ty)?;
            p.expect(Tok::Comma)?;
            let idx_ty = p.parse_ty(false)?;
            let idx = parse_value(p, ctx, &idx_ty)?;
            Ok(Inst::InsertElement {
                elem_ty,
                len,
                vec,
                elt,
                idx,
            })
        }
        "alloca" => {
            let ty_span = p.span();
            let ty = p.parse_ty(false)?;
            if ty.byte_size() == 0 {
                return p.err_at(
                    ty_span.to(p.prev_span()),
                    "cannot allocate a zero-sized type",
                );
            }
            Ok(Inst::Alloca { ty })
        }
        "ptrtoint" => {
            let from_span = p.span();
            let from_ty = p.parse_ty(false)?;
            if !from_ty.is_ptr() {
                return p.err_at(
                    from_span.to(p.prev_span()),
                    format!("ptrtoint source must be a pointer, got {from_ty}"),
                );
            }
            let val = parse_value(p, ctx, &from_ty)?;
            p.expect_word("to")?;
            let to_span = p.span();
            let to_ty = p.parse_ty(false)?;
            if to_ty != Ty::Int(crate::types::PTR_BITS) {
                return p.err_at(
                    to_span.to(p.prev_span()),
                    format!(
                        "ptrtoint result must be i{} (the pointer width), got {to_ty}",
                        crate::types::PTR_BITS
                    ),
                );
            }
            Ok(Inst::PtrToInt {
                from_ty,
                to_ty,
                val,
            })
        }
        "inttoptr" => {
            let from_span = p.span();
            let from_ty = p.parse_ty(false)?;
            if from_ty != Ty::Int(crate::types::PTR_BITS) {
                return p.err_at(
                    from_span.to(p.prev_span()),
                    format!(
                        "inttoptr source must be i{} (the pointer width), got {from_ty}",
                        crate::types::PTR_BITS
                    ),
                );
            }
            let val = parse_value(p, ctx, &from_ty)?;
            p.expect_word("to")?;
            let to_span = p.span();
            let to_ty = p.parse_ty(false)?;
            if !to_ty.is_ptr() {
                return p.err_at(
                    to_span.to(p.prev_span()),
                    format!("inttoptr result must be a pointer, got {to_ty}"),
                );
            }
            Ok(Inst::IntToPtr {
                from_ty,
                to_ty,
                val,
            })
        }
        "call" => {
            let ret_ty = p.parse_ty(true)?;
            let callee = p.expect_global()?;
            p.expect(Tok::LParen)?;
            let mut arg_tys = Vec::new();
            let mut args = Vec::new();
            if !p.eat(&Tok::RParen) {
                loop {
                    let ty = p.parse_ty(false)?;
                    let v = parse_value(p, ctx, &ty)?;
                    arg_tys.push(ty);
                    args.push(v);
                    if !p.eat(&Tok::Comma) {
                        break;
                    }
                }
                p.expect(Tok::RParen)?;
            }
            Ok(Inst::Call {
                ret_ty,
                callee,
                arg_tys,
                args,
            })
        }
        other => {
            // Guard mnemonics parse through the descriptor table:
            // `<mnemonic> <ty> <value>`, with the operand type pinned
            // to i1 by the row's `bool_operands`. No dedicated arm per
            // guard — a new guard row is parseable as soon as it is in
            // the table.
            if let Some(d) = crate::inst::descriptor::by_mnemonic(other) {
                if d.is_guard() {
                    let ty_span = p.span();
                    let ty = p.parse_ty(false)?;
                    if d.bool_operands && !ty.is_bool() {
                        return p.err_at(
                            ty_span.to(p.prev_span()),
                            format!("{other} operand must have type i1, got {ty}"),
                        );
                    }
                    let fact = parse_value(p, ctx, &ty)?;
                    return Ok(d
                        .make_guard(fact)
                        .expect("guard rows build their instruction"));
                }
            }
            p.err_at(mnemonic_span, format!("unknown instruction '{other}'"))
        }
    }
}

fn parse_terminator(p: &mut Parser<'_>, ctx: &FnContext, ret_ty: &Ty) -> Result<Terminator> {
    if p.eat_word("ret") {
        if p.eat_word("void") {
            return Ok(Terminator::Ret(None));
        }
        let ty_span = p.span();
        let ty = p.parse_ty(false)?;
        if ty != *ret_ty {
            return p.err_at(
                ty_span.to(p.prev_span()),
                format!("ret type {ty} does not match function return type {ret_ty}"),
            );
        }
        let v = parse_value(p, ctx, &ty)?;
        return Ok(Terminator::Ret(Some(v)));
    }
    if p.eat_word("br") {
        if p.eat_word("label") {
            let label = p.expect_local()?;
            return Ok(Terminator::Jmp(ctx.resolve_label(p, &label)?));
        }
        let ty_span = p.span();
        let ty = p.parse_ty(false)?;
        if !ty.is_bool() {
            return p.err_at(ty_span, "br condition must have type i1");
        }
        let cond = parse_value(p, ctx, &ty)?;
        p.expect(Tok::Comma)?;
        p.expect_word("label")?;
        let t = p.expect_local()?;
        let then_bb = ctx.resolve_label(p, &t)?;
        p.expect(Tok::Comma)?;
        p.expect_word("label")?;
        let e = p.expect_local()?;
        let else_bb = ctx.resolve_label(p, &e)?;
        return Ok(Terminator::Br {
            cond,
            then_bb,
            else_bb,
        });
    }
    if p.eat_word("unreachable") {
        // `unreachable` takes no operands; underline anything trailing
        // on the same line rather than tripping over it as the next
        // statement.
        let line = p.toks[p.pos - 1].line;
        if let Some(first) = p
            .toks
            .get(p.pos)
            .filter(|t| t.line == line && t.tok != Tok::RBrace)
        {
            let mut span = first.span;
            let mut j = p.pos + 1;
            while let Some(t) = p.toks.get(j) {
                if t.line != line || t.tok == Tok::RBrace {
                    break;
                }
                span = span.to(t.span);
                j += 1;
            }
            return p.err_at(span, "unreachable takes no operands");
        }
        return Ok(Terminator::Unreachable);
    }
    p.err("expected a terminator (ret, br, unreachable)")
}

/// Pre-scans a function body (tokens between `{` and its matching `}`)
/// to assign block and instruction ids in textual order.
///
/// Statements are line-delimited (as produced by the printer): a line
/// starting with `word:` introduces a block, `%name = ...` a named
/// instruction, a mnemonic whose descriptor row is not
/// `ResultKind::Value` (`store`, `call`, the guards) an unnamed (void)
/// instruction, and `ret`/`br`/`unreachable` a terminator. Unnamed
/// instructions consume an instruction id so that ids assigned here
/// match parse order.
fn prescan(p: &Parser<'_>, ctx: &mut FnContext) -> Result<()> {
    let mut i = p.pos;
    let mut next_block = 0u32;
    let mut next_inst = 0u32;
    let mut cur_line = 0usize;
    while let Some(t) = p.toks.get(i) {
        if t.tok == Tok::RBrace {
            break;
        }
        if t.line == cur_line {
            // Not at a statement start; skip.
            i += 1;
            continue;
        }
        cur_line = t.line;
        match &t.tok {
            Tok::Word(w) => {
                // `label:` introduces a block.
                if matches!(p.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Colon)) {
                    if ctx.labels.insert(w.clone(), BlockId(next_block)).is_some() {
                        return Err(ParseError::at(
                            p.src,
                            t.span,
                            format!("duplicate block label '{w}'"),
                        ));
                    }
                    next_block += 1;
                    i += 1; // skip the colon too
                } else if crate::inst::descriptor::by_mnemonic(w)
                    .is_some_and(|d| d.result != crate::inst::ResultKind::Value)
                {
                    // Unnamed (void-result per its descriptor row)
                    // instruction: `store`, void `call`, guards.
                    next_inst += 1;
                } else if w != "ret" && w != "br" && w != "unreachable" {
                    return Err(ParseError::at(
                        p.src,
                        t.span,
                        format!("unexpected statement start '{w}'"),
                    ));
                }
            }
            Tok::Local(name) => {
                // `%name =` introduces a definition.
                if matches!(p.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Eq)) {
                    if ctx.params.contains_key(name) {
                        return Err(ParseError::at(
                            p.src,
                            t.span,
                            format!("%{name} shadows a parameter"),
                        ));
                    }
                    if ctx.defs.insert(name.clone(), InstId(next_inst)).is_some() {
                        return Err(ParseError::at(
                            p.src,
                            t.span,
                            format!("duplicate definition of %{name}"),
                        ));
                    }
                    next_inst += 1;
                    i += 1;
                } else {
                    return Err(ParseError::at(
                        p.src,
                        t.span,
                        format!("expected '=' after %{name} at statement start"),
                    ));
                }
            }
            other => {
                return Err(ParseError::at(
                    p.src,
                    t.span,
                    format!("unexpected statement start {other}"),
                ));
            }
        }
        i += 1;
    }
    Ok(())
}

fn parse_function_body(
    p: &mut Parser<'_>,
    name: String,
    params: Vec<Param>,
    ret_ty: Ty,
) -> Result<Function> {
    let mut ctx = FnContext {
        params: params
            .iter()
            .enumerate()
            .map(|(i, pa)| (pa.name.clone(), i as u32))
            .collect(),
        defs: HashMap::new(),
        labels: HashMap::new(),
    };
    prescan(p, &mut ctx)?;
    if ctx.labels.is_empty() {
        return p.err("function body must contain at least one labelled block");
    }

    let mut func = Function {
        name,
        params,
        ret_ty: ret_ty.clone(),
        blocks: Vec::new(),
        insts: Vec::with_capacity(ctx.defs.len()),
    };
    // Pre-create the blocks so ids match the pre-scan.
    let mut labels_in_order: Vec<(String, BlockId)> =
        ctx.labels.iter().map(|(n, b)| (n.clone(), *b)).collect();
    labels_in_order.sort_by_key(|(_, b)| *b);
    for (label, _) in &labels_in_order {
        func.blocks.push(Block::new(label.clone()));
    }

    // Now parse for real.
    let mut cur_block: Option<BlockId> = None;
    let mut next_inst = 0u32;
    loop {
        if p.eat(&Tok::RBrace) {
            break;
        }
        // Block label?
        if let Some(Tok::Word(w)) = p.peek() {
            let w = w.clone();
            if p.toks.get(p.pos + 1).map(|t| &t.tok) == Some(&Tok::Colon) {
                p.pos += 2;
                cur_block = Some(ctx.labels[&w]);
                continue;
            }
            // Terminator?
            if w == "ret" || w == "br" || w == "unreachable" {
                let Some(bb) = cur_block else {
                    return p.err("terminator outside of a block");
                };
                let term = parse_terminator(p, &ctx, &ret_ty)?;
                func.block_mut(bb).term = term;
                continue;
            }
        }
        let Some(bb) = cur_block else {
            return p.err("instruction outside of a block");
        };
        // `%name = inst` or bare `store`/void `call`.
        let stmt_span = p.span();
        let named = if let Some(Tok::Local(n)) = p.peek() {
            let n = n.clone();
            p.pos += 1;
            p.expect(Tok::Eq)?;
            Some(n)
        } else {
            None
        };
        let inst = parse_inst(p, &ctx)?;
        if named.is_some() && inst.result_ty().is_void() {
            return p.err_at(
                stmt_span,
                format!("{} produces no value to name", inst.mnemonic()),
            );
        }
        if named.is_none() && !inst.result_ty().is_void() {
            return p.err_at(
                stmt_span,
                format!("result of {} must be named", inst.mnemonic()),
            );
        }
        let id = func.add_inst(inst);
        debug_assert_eq!(id, InstId(next_inst));
        next_inst += 1;
        if let Some(n) = &named {
            debug_assert_eq!(ctx.defs[n], id, "pre-scan id matches parse order");
        }
        func.block_mut(bb).insts.push(id);
    }
    Ok(func)
}

fn parse_define(p: &mut Parser<'_>) -> Result<Function> {
    let ret_ty = p.parse_ty(true)?;
    let name = p.expect_global()?;
    p.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !p.eat(&Tok::RParen) {
        loop {
            let ty = p.parse_ty(false)?;
            let pname = p.expect_local()?;
            params.push(Param { name: pname, ty });
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(Tok::RParen)?;
    }
    p.expect(Tok::LBrace)?;
    parse_function_body(p, name, params, ret_ty)
}

fn parse_declare(p: &mut Parser<'_>) -> Result<FuncDecl> {
    let ret_ty = p.parse_ty(true)?;
    let name = p.expect_global()?;
    p.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !p.eat(&Tok::RParen) {
        loop {
            params.push(p.parse_ty(false)?);
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(Tok::RParen)?;
    }
    let mut attrs = DeclAttrs::default();
    loop {
        if p.eat_word("readnone") {
            attrs.readnone = true;
        } else if p.eat_word("willreturn") {
            attrs.willreturn = true;
        } else {
            break;
        }
    }
    Ok(FuncDecl {
        name,
        params,
        ret_ty,
        attrs,
    })
}

/// Parses a whole module (any number of `define` and `declare` items).
///
/// # Errors
///
/// Returns a [`ParseError`] pinpointing the offending span on
/// malformed input.
pub fn parse_module(input: &str) -> Result<Module> {
    let toks = lex(input)?;
    let mut p = Parser {
        src: input,
        toks,
        pos: 0,
    };
    let mut module = Module::new();
    while p.peek().is_some() {
        if p.eat_word("define") {
            module.functions.push(parse_define(&mut p)?);
        } else if p.eat_word("declare") {
            module.declarations.push(parse_declare(&mut p)?);
        } else {
            return p.err("expected 'define' or 'declare'");
        }
    }
    Ok(module)
}

/// Parses input containing exactly one function definition.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or if the input does not
/// contain exactly one `define`.
pub fn parse_function(input: &str) -> Result<Function> {
    let module = parse_module(input)?;
    if module.functions.len() != 1 {
        return Err(ParseError::at(
            input,
            Span::point(0),
            format!(
                "expected exactly one function, found {}",
                module.functions.len()
            ),
        ));
    }
    Ok(module.functions.into_iter().next().expect("checked length"))
}
