//! The lexer: raw source text → a stream of byte-spanned tokens.
//!
//! The lexer is the first stage of the textual-IR pipeline
//! ([`lex`](mod@self) → [`parse`](super::parse) →
//! [`print`](super::print)). Every token records the half-open byte
//! range (`[start, end)`) it was read from, plus its 1-based source
//! line, so later stages can attach precise, caret-underlined
//! diagnostics to any token without re-scanning the input.

use std::fmt;

use super::parse::ParseError;

/// A half-open byte range `[start, end)` into the source text.
///
/// Spans survive from the lexer through the parser into
/// [`ParseError`], where they drive the caret-underlined excerpt the
/// error renders.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned region.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned region.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// An empty span at a single position (used for end-of-input
    /// diagnostics).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// The number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A lexical token of the textual IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Bare word: keywords, mnemonics, type names, labels.
    Word(String),
    /// `%name` local reference.
    Local(String),
    /// `@name` global reference.
    Global(String),
    /// Integer literal (possibly negative).
    Int(i128),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// `*`
    Star,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "'{w}'"),
            Tok::Local(n) => write!(f, "'%{n}'"),
            Tok::Global(n) => write!(f, "'@{n}'"),
            Tok::Int(v) => write!(f, "'{v}'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBrace => write!(f, "'{{'"),
            Tok::RBrace => write!(f, "'}}'"),
            Tok::LBracket => write!(f, "'['"),
            Tok::RBracket => write!(f, "']'"),
            Tok::Lt => write!(f, "'<'"),
            Tok::Gt => write!(f, "'>'"),
            Tok::Comma => write!(f, "','"),
            Tok::Eq => write!(f, "'='"),
            Tok::Colon => write!(f, "':'"),
            Tok::Star => write!(f, "'*'"),
        }
    }
}

/// A token plus where it came from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Byte range of the token in the source.
    pub span: Span,
    /// 1-based source line the token starts on (precomputed so the
    /// parser's statement-per-line pre-scan is O(1) per token).
    pub line: usize,
}

/// Is `c` a byte that may appear in a word, name, or label?
fn is_word(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'.'
}

/// Tokenizes the whole input.
///
/// # Errors
///
/// Returns a [`ParseError`] (with a caret-underlined excerpt) on the
/// first malformed token: an unexpected character, a bare `%`/`@`
/// sigil, or an out-of-range integer literal.
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut push = |tok: Tok, start: usize, end: usize, line: usize| {
        toks.push(Token {
            tok,
            span: Span::new(start, end),
            line,
        });
    };
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b';' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' | b')' | b'{' | b'}' | b'[' | b']' | b'<' | b'>' | b',' | b'=' | b':' | b'*' => {
                let tok = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    b',' => Tok::Comma,
                    b'=' => Tok::Eq,
                    b':' => Tok::Colon,
                    _ => Tok::Star,
                };
                i += 1;
                push(tok, start, i, line);
            }
            b'%' | b'@' => {
                i += 1;
                let name_start = i;
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                if name_start == i {
                    return Err(ParseError::at(
                        input,
                        Span::new(start, start + 1),
                        format!("expected a name after '{}'", c as char),
                    ));
                }
                let name = input[name_start..i].to_string();
                push(
                    if c == b'%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    },
                    start,
                    i,
                    line,
                );
            }
            b'-' | b'0'..=b'9' => {
                if c == b'-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i128 = text.parse().map_err(|_| {
                    ParseError::at(
                        input,
                        Span::new(start, i),
                        format!("invalid integer literal '{text}'"),
                    )
                })?;
                push(Tok::Int(v), start, i, line);
            }
            _ if is_word(c) => {
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                push(Tok::Word(input[start..i].to_string()), start, i, line);
            }
            _ => {
                // Take the full UTF-8 scalar so the caret underlines a
                // whole character, not a stray continuation byte.
                let ch_len = input[start..].chars().next().map_or(1, char::len_utf8);
                return Err(ParseError::at(
                    input,
                    Span::new(start, start + ch_len),
                    format!(
                        "unexpected character '{}'",
                        input[start..].chars().next().unwrap_or('?')
                    ),
                ));
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_exact_bytes() {
        let src = "add i32 %x, 42";
        let toks = lex(src).unwrap();
        let slices: Vec<&str> = toks
            .iter()
            .map(|t| &src[t.span.start..t.span.end])
            .collect();
        assert_eq!(slices, vec!["add", "i32", "%x", ",", "42"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = lex("  ; a comment\n add ; trailing\n").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].tok, Tok::Word("add".into()));
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn rejects_bare_sigil() {
        let err = lex("add %").unwrap_err();
        assert!(err.message.contains("expected a name after '%'"));
        assert_eq!(err.span, Span::new(4, 5));
    }

    #[test]
    fn rejects_huge_integer() {
        let err = lex("999999999999999999999999999999999999999999").unwrap_err();
        assert!(err.message.contains("invalid integer literal"));
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 1);
    }

    #[test]
    fn rejects_unexpected_character() {
        let err = lex("add $x").unwrap_err();
        assert!(err.message.contains("unexpected character '$'"));
        assert_eq!(err.span, Span::new(4, 5));
    }

    #[test]
    fn negative_literals() {
        let toks = lex("-1, -128").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(-1));
        assert_eq!(toks[2].tok, Tok::Int(-128));
    }

    #[test]
    fn span_union() {
        assert_eq!(Span::new(2, 4).to(Span::new(7, 9)), Span::new(2, 9));
        assert!(Span::point(3).is_empty());
        assert_eq!(Span::new(1, 4).len(), 3);
    }
}
