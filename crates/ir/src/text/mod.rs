//! The textual form of frost IR: lexer → parser → pretty-printer.
//!
//! This module is the staged text-format pipeline:
//!
//! * [`lexer`] — source text to byte-spanned tokens ([`Span`] tracks
//!   the exact `[start, end)` byte range of every token);
//! * [`parse`] — recursive-descent parsing of the token stream into
//!   [`Module`](crate::Module)/[`Function`] values,
//!   with [`ParseError`]s that render caret-underlined source excerpts;
//! * [`mod@print`] — the canonical pretty-printer, whose output re-parses
//!   to a module whose every function is
//!   [`FunctionKey`]-equal to the original.
//!
//! # Roundtrip fidelity
//!
//! The printer and parser are held to `parse(print(m)) ≈ m`, where `≈`
//! is *structural* ([`FunctionKey`]) equality per
//! function, not string equality: the printer renames instruction
//! results to `%t<id>`, so a hand-written `%sum` prints as `%t0`, and
//! byte-for-byte stability is only guaranteed from the second print
//! onward. [`check_roundtrip`] packages the discipline as a single
//! call; the repo's CI runs it over the whole §6 corpus and a
//! 10k-function fuzz sample (`repro --experiment roundtrip`).
//!
//! ```
//! use frost_ir::text::{check_roundtrip, parse_function};
//!
//! let f = parse_function(
//!     "define i8 @f(i8 %x) {\nentry:\n  %sum = add nsw i8 %x, 1\n  ret i8 %sum\n}",
//! )?;
//! check_roundtrip(&f).expect("canonical form is stable");
//! # Ok::<(), frost_ir::ParseError>(())
//! ```

pub mod lexer;
pub mod parse;
pub mod print;

use std::fmt;

pub use lexer::{Span, Tok, Token};
pub use parse::{parse_function, parse_module, ParseError};
pub use print::{
    const_to_string, function_to_string, inst_to_string, module_to_string, print_function,
    print_module, term_to_string, value_to_string,
};

use crate::fingerprint::FunctionKey;
use crate::function::Function;

/// A failed print→parse→compare roundtrip (see [`check_roundtrip`]).
#[derive(Clone, Debug)]
pub enum RoundtripError {
    /// The canonical printed form did not re-parse.
    Parse {
        /// The text that failed to parse.
        printed: String,
        /// The parser's diagnostic.
        error: ParseError,
    },
    /// The re-parsed function is structurally different from the
    /// original ([`FunctionKey`] mismatch).
    KeyMismatch {
        /// The original's canonical text.
        printed: String,
        /// The re-parsed function's canonical text.
        reprinted: String,
    },
}

impl fmt::Display for RoundtripError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundtripError::Parse { printed, error } => {
                write!(f, "printed form does not re-parse:\n{error}\n---\n{printed}")
            }
            RoundtripError::KeyMismatch { printed, reprinted } => write!(
                f,
                "re-parse is not FunctionKey-identical:\n--- printed\n{printed}\n--- reprinted\n{reprinted}"
            ),
        }
    }
}

impl std::error::Error for RoundtripError {}

/// Checks that `f` survives print → parse with its [`FunctionKey`]
/// intact — the fidelity oracle the §6 roundtrip gate runs over every
/// corpus function.
///
/// # Errors
///
/// Returns [`RoundtripError`] if the canonical text fails to re-parse
/// or re-parses to a structurally different function.
pub fn check_roundtrip(f: &Function) -> Result<(), RoundtripError> {
    let printed = function_to_string(f);
    let reparsed = match parse_function(&printed) {
        Ok(g) => g,
        Err(error) => return Err(RoundtripError::Parse { printed, error }),
    };
    if FunctionKey::of(f) != FunctionKey::of(&reparsed) {
        return Err(RoundtripError::KeyMismatch {
            printed,
            reprinted: function_to_string(&reparsed),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::value::InstId;

    #[test]
    fn parses_simple_function() {
        let f = parse_function(
            r#"
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add nsw i32 %x, %y
  %c = icmp sgt i32 %a, %x
  %r = select i1 %c, i32 %a, i32 0
  ret i32 %r
}
"#,
        )
        .unwrap();
        assert_eq!(f.name, "f");
        assert_eq!(f.placed_inst_count(), 3);
        assert!(crate::verify::verify_function(&f).is_ok());
        check_roundtrip(&f).unwrap();
    }

    #[test]
    fn parses_loop_with_forward_references() {
        let f = parse_function(
            r#"
define void @loop(i32 %n, i32 %x, i32* %a) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i32 %x, 1
  %ptr = getelementptr inbounds i32, i32* %a, i32 %i
  store i32 %x1, i32* %ptr
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret void
}
"#,
        )
        .unwrap();
        assert_eq!(f.blocks.len(), 4);
        assert!(crate::verify::verify_function(&f).is_ok());
        check_roundtrip(&f).unwrap();
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"
define i8 @rt(i1 %c, i8 %x) {
entry:
  %t0 = freeze i8 %x
  %t1 = select i1 %c, i8 %t0, i8 poison
  %t2 = xor i8 %t1, 255
  ret i8 %t2
}
"#;
        let f = parse_function(src).unwrap();
        let printed = function_to_string(&f);
        let f2 = parse_function(&printed).unwrap();
        assert_eq!(function_to_string(&f2), printed);
        assert_eq!(FunctionKey::of(&f), FunctionKey::of(&f2));
    }

    #[test]
    fn parses_declarations_and_calls() {
        let m = parse_module(
            r#"
declare i32 @g(i32) readnone willreturn
define void @caller(i32 %x) {
entry:
  %r = call i32 @g(i32 %x)
  call void @h()
  ret void
}
declare void @h()
"#,
        )
        .unwrap();
        assert_eq!(m.declarations.len(), 2);
        assert!(m.declarations[0].attrs.readnone);
        assert!(m.declarations[0].attrs.willreturn);
        assert!(!m.declarations[1].attrs.readnone);
        assert_eq!(m.functions[0].placed_inst_count(), 2);
        // Module-level roundtrip: declarations survive too.
        let m2 = parse_module(&module_to_string(&m)).unwrap();
        assert_eq!(module_to_string(&m2), module_to_string(&m));
    }

    #[test]
    fn parses_vectors_and_casts() {
        let f = parse_function(
            r#"
define i16 @v(<2 x i16> %v, i32 %w) {
entry:
  %t = trunc i32 %w to i16
  %v2 = insertelement <2 x i16> %v, i16 %t, i32 1
  %e = extractelement <2 x i16> %v2, i32 0
  %z = zext i16 %e to i64
  %s = sext i16 %e to i32
  %b = bitcast <2 x i16> %v2 to i32
  %q = trunc i32 %b to i16
  ret i16 %q
}
"#,
        )
        .unwrap();
        assert!(crate::verify::verify_function(&f).is_ok());
        assert_eq!(f.placed_inst_count(), 7);
        check_roundtrip(&f).unwrap();
    }

    #[test]
    fn parses_negative_and_boolean_constants() {
        let f = parse_function(
            r#"
define i1 @c(i8 %x) {
entry:
  %a = add i8 %x, -1
  %c = icmp eq i8 %a, 255
  %r = select i1 %c, i1 true, i1 false
  ret i1 %r
}
"#,
        )
        .unwrap();
        // -1 as i8 is 255.
        let Inst::Bin { rhs, .. } = f.inst(InstId(0)) else {
            panic!()
        };
        assert!(rhs.is_int_const(255));
        check_roundtrip(&f).unwrap();
    }

    #[test]
    fn rejects_unknown_local() {
        let err = parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, %missing\n  ret i32 %a\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown local"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn rejects_duplicate_definition() {
        let err = parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  %a = add i32 %x, 2\n  ret i32 %a\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate definition"));
        assert_eq!(err.line, 4);
    }

    #[test]
    fn rejects_unnamed_result() {
        let err =
            parse_function("define i32 @f(i32 %x) {\nentry:\n  add i32 %x, 1\n  ret i32 %x\n}")
                .unwrap_err();
        assert!(err.message.contains("unexpected statement start 'add'"));
    }

    #[test]
    fn comments_are_ignored() {
        let f = parse_function(
            "; header comment\ndefine i32 @f(i32 %x) { ; trailing\nentry:\n  ret i32 %x ; done\n}",
        )
        .unwrap();
        assert_eq!(f.name, "f");
    }

    #[test]
    fn parses_poison_and_undef_operands() {
        let f =
            parse_function("define i8 @p() {\nentry:\n  %a = add i8 poison, undef\n  ret i8 %a\n}")
                .unwrap();
        assert!(crate::verify::verify_function_legacy(&f).is_ok());
        assert!(crate::verify::verify_function(&f).is_err());
        check_roundtrip(&f).unwrap();
    }

    #[test]
    fn parse_errors_carry_spans_and_excerpts() {
        let src = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, %missing\n  ret i32 %a\n}";
        let err = parse_function(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(&src[err.span.start..err.span.end], "%missing");
        let rendered = err.to_string();
        assert!(rendered.contains("--> line 3, column 20"), "{rendered}");
        assert!(rendered.contains("%a = add i32 %x, %missing"), "{rendered}");
        assert!(rendered.contains("^^^^^^^^"), "{rendered}");
    }

    #[test]
    fn roundtrip_reports_mismatch_shape() {
        // A healthy function roundtrips; the error type renders usefully.
        let f = parse_function("define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}").unwrap();
        assert!(check_roundtrip(&f).is_ok());
    }
}
