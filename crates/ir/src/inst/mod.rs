//! Instructions and terminators.
//!
//! The instruction set follows Figure 4 of the paper — binary arithmetic
//! with the `nsw`/`nuw`/`exact` poison-producing attributes, conversions,
//! `bitcast`, `select`, `icmp`, `phi`, the new `freeze`, `getelementptr`,
//! `load`/`store`, and vector element access — extended with the handful
//! of operations (`sub`, `mul`, `xor`, right shifts, remainders, `call`)
//! the paper's examples and evaluation rely on.

use std::fmt;

use crate::types::Ty;
use crate::value::{BlockId, InstId, Value};

pub mod descriptor;

pub use descriptor::{Arity, Descriptor, Opcode, ResultKind, UbClass};

/// A binary integer opcode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition. Supports `nsw`/`nuw`.
    Add,
    /// Integer subtraction. Supports `nsw`/`nuw`.
    Sub,
    /// Integer multiplication. Supports `nsw`/`nuw`.
    Mul,
    /// Unsigned division. Division by zero is immediate UB. Supports
    /// `exact`.
    UDiv,
    /// Signed division. Division by zero and `INT_MIN / -1` are immediate
    /// UB. Supports `exact`.
    SDiv,
    /// Unsigned remainder. Remainder by zero is immediate UB.
    URem,
    /// Signed remainder. Remainder by zero and `INT_MIN % -1` are
    /// immediate UB.
    SRem,
    /// Left shift. Shift past bitwidth produces poison (the paper keeps
    /// LLVM's deferred UB for shift-past-bitwidth, §2.2). Supports
    /// `nsw`/`nuw`.
    Shl,
    /// Logical right shift. Shift past bitwidth produces poison. Supports
    /// `exact`.
    LShr,
    /// Arithmetic right shift. Shift past bitwidth produces poison.
    /// Supports `exact`.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl BinOp {
    /// All binary opcodes, in a fixed order (used by the exhaustive
    /// fuzzer).
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::SDiv,
        BinOp::URem,
        BinOp::SRem,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ];

    /// The instruction mnemonic, e.g. `"add"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }

    /// Returns `true` if the opcode can trigger *immediate* UB for some
    /// defined operand values (division/remainder by zero, signed
    /// overflow of division). Such instructions may not be speculated
    /// without a non-poison, non-zero-divisor proof (§3.2, §5.6).
    pub fn may_have_immediate_ub(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
    }

    /// Returns `true` if the `nsw`/`nuw` attributes are meaningful for
    /// this opcode.
    pub fn supports_wrap_flags(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl)
    }

    /// Returns `true` if the `exact` attribute is meaningful for this
    /// opcode.
    pub fn supports_exact(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::LShr | BinOp::AShr)
    }

    /// Returns `true` if `a op b == b op a` for all defined values.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Poison-producing attributes on binary instructions (the paper's
/// `attr ::= nsw | nuw | exact`).
///
/// When the annotated condition is violated at run time, the instruction
/// produces `poison` instead of a wrapped/rounded result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Flags {
    /// No signed wrap: signed overflow produces poison.
    pub nsw: bool,
    /// No unsigned wrap: unsigned overflow produces poison.
    pub nuw: bool,
    /// Exact division/shift: a non-zero remainder / shifted-out bit
    /// produces poison.
    pub exact: bool,
}

impl Flags {
    /// No attributes: the operation wraps/truncates.
    pub const NONE: Flags = Flags {
        nsw: false,
        nuw: false,
        exact: false,
    };
    /// `nsw` only.
    pub const NSW: Flags = Flags {
        nsw: true,
        nuw: false,
        exact: false,
    };
    /// `nuw` only.
    pub const NUW: Flags = Flags {
        nsw: false,
        nuw: true,
        exact: false,
    };
    /// `nsw nuw`.
    pub const NSW_NUW: Flags = Flags {
        nsw: true,
        nuw: true,
        exact: false,
    };
    /// `exact` only.
    pub const EXACT: Flags = Flags {
        nsw: false,
        nuw: false,
        exact: true,
    };

    /// Returns `true` if no attribute is set.
    pub fn is_none(self) -> bool {
        !self.nsw && !self.nuw && !self.exact
    }

    /// The intersection of two attribute sets (used when merging
    /// equivalent instructions: keeping only common attributes is always
    /// sound, since fewer attributes means fewer poison outcomes).
    pub fn intersect(self, other: Flags) -> Flags {
        Flags {
            nsw: self.nsw && other.nsw,
            nuw: self.nuw && other.nuw,
            exact: self.exact && other.exact,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            f.write_str(s)
        };
        if self.nsw {
            put(f, "nsw")?;
        }
        if self.nuw {
            put(f, "nuw")?;
        }
        if self.exact {
            put(f, "exact")?;
        }
        Ok(())
    }
}

/// An `icmp` condition code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
}

impl Cond {
    /// All condition codes, in a fixed order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Ugt,
        Cond::Uge,
        Cond::Ult,
        Cond::Ule,
        Cond::Sgt,
        Cond::Sge,
        Cond::Slt,
        Cond::Sle,
    ];

    /// The condition mnemonic, e.g. `"slt"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Ugt => "ugt",
            Cond::Uge => "uge",
            Cond::Ult => "ult",
            Cond::Ule => "ule",
            Cond::Sgt => "sgt",
            Cond::Sge => "sge",
            Cond::Slt => "slt",
            Cond::Sle => "sle",
        }
    }

    /// The condition with operands swapped: `a cond b == b cond.swapped() a`.
    pub fn swapped(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Ugt => Cond::Ult,
            Cond::Uge => Cond::Ule,
            Cond::Ult => Cond::Ugt,
            Cond::Ule => Cond::Uge,
            Cond::Sgt => Cond::Slt,
            Cond::Sge => Cond::Sle,
            Cond::Slt => Cond::Sgt,
            Cond::Sle => Cond::Sge,
        }
    }

    /// The logical negation: `a cond b == !(a cond.inverted() b)`.
    pub fn inverted(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Ugt => Cond::Ule,
            Cond::Uge => Cond::Ult,
            Cond::Ult => Cond::Uge,
            Cond::Ule => Cond::Ugt,
            Cond::Sgt => Cond::Sle,
            Cond::Sge => Cond::Slt,
            Cond::Slt => Cond::Sge,
            Cond::Sle => Cond::Sgt,
        }
    }

    /// Evaluates the condition on two defined `bits`-wide payloads.
    pub fn eval(self, bits: u32, a: u128, b: u128) -> bool {
        use crate::value::to_signed;
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Ugt => a > b,
            Cond::Uge => a >= b,
            Cond::Ult => a < b,
            Cond::Ule => a <= b,
            Cond::Sgt => to_signed(a, bits) > to_signed(b, bits),
            Cond::Sge => to_signed(a, bits) >= to_signed(b, bits),
            Cond::Slt => to_signed(a, bits) < to_signed(b, bits),
            Cond::Sle => to_signed(a, bits) <= to_signed(b, bits),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A width-changing conversion kind (`conv ::= zext | sext | trunc`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastKind {
    /// Zero extension to a wider integer.
    Zext,
    /// Sign extension to a wider integer.
    Sext,
    /// Truncation to a narrower integer.
    Trunc,
}

impl CastKind {
    /// The instruction mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Zext => "zext",
            CastKind::Sext => "sext",
            CastKind::Trunc => "trunc",
        }
    }
}

impl fmt::Display for CastKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A non-terminator instruction.
///
/// Every instruction carries enough type information to compute its
/// result type without consulting the enclosing function (see
/// [`Inst::result_ty`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `r = <op> <flags> <ty> lhs, rhs`
    Bin {
        /// Opcode.
        op: BinOp,
        /// Poison-producing attributes.
        flags: Flags,
        /// Operand/result type (integer or integer vector).
        ty: Ty,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `r = icmp <cond> <ty> lhs, rhs` — result is `i1` (or a vector of
    /// `i1` for vector operands).
    Icmp {
        /// Condition code.
        cond: Cond,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `r = select i1 cond, <ty> tval, fval`
    Select {
        /// The `i1` condition.
        cond: Value,
        /// Type of both arms and of the result.
        ty: Ty,
        /// Value if the condition is true.
        tval: Value,
        /// Value if the condition is false.
        fval: Value,
    },
    /// `r = phi <ty> [v, bb], ...`
    Phi {
        /// Result type.
        ty: Ty,
        /// One `(value, predecessor)` pair per incoming edge.
        incoming: Vec<(Value, BlockId)>,
    },
    /// `r = freeze <ty> v` — the paper's new instruction (§4): a no-op on
    /// defined values; on poison, non-deterministically picks an
    /// arbitrary defined value, the *same* one for all uses of `r`.
    Freeze {
        /// Operand/result type.
        ty: Ty,
        /// The value to freeze.
        val: Value,
    },
    /// `r = zext/sext/trunc <from_ty> v to <to_ty>`
    Cast {
        /// Which conversion.
        kind: CastKind,
        /// Operand type.
        from_ty: Ty,
        /// Result type.
        to_ty: Ty,
        /// The value to convert.
        val: Value,
    },
    /// `r = bitcast <from_ty> v to <to_ty>` — reinterprets the low-level
    /// bit representation (§4.2: `ty2↑(ty1↓(v))`).
    Bitcast {
        /// Operand type.
        from_ty: Ty,
        /// Result type; must have the same bitwidth as `from_ty`.
        to_ty: Ty,
        /// The value to reinterpret.
        val: Value,
    },
    /// `r = getelementptr <elem_ty>* base, <idx_ty> idx` — pointer
    /// arithmetic: `base + idx * sizeof(elem_ty)`.
    Gep {
        /// Pointee type determining the stride.
        elem_ty: Ty,
        /// Base pointer of type `elem_ty*`.
        base: Value,
        /// Index type (integer).
        idx_ty: Ty,
        /// Index operand.
        idx: Value,
        /// `inbounds`: out-of-bounds/overflowing arithmetic produces
        /// poison (this is the "pointer arithmetic overflow is undefined"
        /// behaviour that justifies Figure 3's widening).
        inbounds: bool,
    },
    /// `r = load <ty>, <ty>* ptr`
    Load {
        /// Loaded type.
        ty: Ty,
        /// Pointer operand.
        ptr: Value,
    },
    /// `store <ty> val, <ty>* ptr` — produces no value.
    Store {
        /// Stored type.
        ty: Ty,
        /// Stored value.
        val: Value,
        /// Pointer operand.
        ptr: Value,
    },
    /// `r = extractelement <N x ty> vec, idx` — `idx` must be a constant
    /// (Figure 4).
    ExtractElement {
        /// Vector element type (the result type).
        elem_ty: Ty,
        /// Vector length.
        len: u32,
        /// Vector operand.
        vec: Value,
        /// Constant element index.
        idx: Value,
    },
    /// `r = insertelement <N x ty> vec, ty elt, idx` — `idx` must be a
    /// constant (Figure 4).
    InsertElement {
        /// Vector element type.
        elem_ty: Ty,
        /// Vector length (the result is `<len x elem_ty>`).
        len: u32,
        /// Vector operand.
        vec: Value,
        /// Replacement element.
        elt: Value,
        /// Constant element index.
        idx: Value,
    },
    /// `r = call <ret_ty> @callee(args...)` — direct call to a function
    /// declared or defined in the module.
    Call {
        /// Return type (`void` for no result).
        ret_ty: Ty,
        /// Callee symbol name (without the `@`).
        callee: String,
        /// Argument types.
        arg_tys: Vec<Ty>,
        /// Argument operands.
        args: Vec<Value>,
    },
    /// `r = alloca <ty>` — allocates a fresh logical block of
    /// `sizeof(ty)` bytes and yields a pointer to its first byte. In
    /// the two-phase memory model the block initially has an identity
    /// but no observable address (the *infinite* phase); a `ptrtoint`
    /// or `inttoptr` anywhere in the run forces concretization. The
    /// block's bytes start uninitialized (per-byte poison under the
    /// proposed semantics, undef under the legacy ones).
    Alloca {
        /// Allocated (pointee) type; the result is `ty*`.
        ty: Ty,
    },
    /// `r = ptrtoint <ty>* v to <to_ty>` — observes the concrete
    /// address of a pointer, forcing the whole memory into the finite
    /// phase (every block receives its deterministic base address).
    PtrToInt {
        /// Pointer operand type.
        from_ty: Ty,
        /// Integer result type (must be exactly `i32` = `PTR_BITS`).
        to_ty: Ty,
        /// The pointer whose address is taken.
        val: Value,
    },
    /// `r = inttoptr <from_ty> v to <ty>*` — forges a pointer from an
    /// integer address, forcing the finite phase. The result carries no
    /// block provenance; accesses through it resolve against whatever
    /// block the address lands in.
    IntToPtr {
        /// Integer operand type (must be exactly `i32` = `PTR_BITS`).
        from_ty: Ty,
        /// Pointer result type.
        to_ty: Ty,
        /// The address to reinterpret.
        val: Value,
    },
    /// `assume i1 %c` — asserts a fact to the optimizer; produces no
    /// value. Executing `assume` on `false` *or on poison* is
    /// immediate UB (the guard consumes the fact, so deferred UB in
    /// the condition becomes immediate here — the same promotion a
    /// `br` performs under the proposed semantics). `freeze` on the
    /// condition launders the poison half away, leaving only the
    /// false-fact UB.
    Assume {
        /// The asserted `i1` fact.
        cond: Value,
    },
}

impl Inst {
    /// The type of the instruction's result. `void` for `store` and
    /// void calls.
    pub fn result_ty(&self) -> Ty {
        match self {
            Inst::Bin { ty, .. } | Inst::Select { ty, .. } | Inst::Phi { ty, .. } => ty.clone(),
            Inst::Freeze { ty, .. } => ty.clone(),
            Inst::Icmp { ty, .. } => match ty {
                Ty::Vector { elems, .. } => Ty::vector(*elems, Ty::i1()),
                _ => Ty::i1(),
            },
            Inst::Cast { to_ty, .. } | Inst::Bitcast { to_ty, .. } => to_ty.clone(),
            Inst::Gep { elem_ty, .. } => Ty::ptr_to(elem_ty.clone()),
            Inst::Load { ty, .. } => ty.clone(),
            Inst::ExtractElement { elem_ty, .. } => elem_ty.clone(),
            Inst::InsertElement { elem_ty, len, .. } => Ty::vector(*len, elem_ty.clone()),
            Inst::Call { ret_ty, .. } => ret_ty.clone(),
            Inst::Alloca { ty } => Ty::ptr_to(ty.clone()),
            Inst::PtrToInt { to_ty, .. } | Inst::IntToPtr { to_ty, .. } => to_ty.clone(),
            // Everything else is a `ResultKind::Void` row of the
            // descriptor table (store, assume).
            _ => {
                debug_assert_eq!(self.descriptor().result, ResultKind::Void);
                Ty::Void
            }
        }
    }

    /// The instruction mnemonic for diagnostics. Sub-opcodes carry
    /// their own spelling; every other variant reads the descriptor
    /// table's row.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Bin { op, .. } => op.mnemonic(),
            Inst::Cast { kind, .. } => kind.mnemonic(),
            _ => self
                .descriptor()
                .mnemonic
                .expect("non-sub-opcode rows carry a mnemonic"),
        }
    }

    /// Returns `true` if this instruction writes memory, calls a
    /// function, or otherwise changes the memory state (and therefore
    /// may not be removed even if its result is unused).
    ///
    /// `alloca` and the int↔ptr casts are included: an alloca advances
    /// the deterministic block layout (removing one shifts every later
    /// block's base), and the casts flip the memory into the finite
    /// phase, which makes strictly more raw-address accesses defined —
    /// deleting a "dead" cast could turn a defined run into UB. So is
    /// `assume`: the asserted fact is observable (dropping it erases a
    /// UB condition), though the guard-aware DCE may still delete one
    /// when the fact is provably laundered.
    pub fn has_side_effects(&self) -> bool {
        self.descriptor().side_effects
    }

    /// Returns `true` if this instruction can trigger *immediate* UB and
    /// therefore may not be hoisted past control flow without a safety
    /// proof (§3.2). Guards count: `assume` on a false or poison fact
    /// is immediate UB.
    pub fn may_have_immediate_ub(&self) -> bool {
        match self {
            Inst::Bin { op, .. } => op.may_have_immediate_ub(),
            _ => self.descriptor().ub != UbClass::Deferred,
        }
    }

    /// Returns `true` if this is a `freeze` instruction.
    ///
    /// Freeze is special in two ways the optimizer must respect: it may
    /// not be *duplicated* (each copy could pick a different value, §5.5)
    /// and distinct freezes of the same operand are not equivalent (GVN,
    /// §6).
    pub fn is_freeze(&self) -> bool {
        matches!(self, Inst::Freeze { .. })
    }

    /// Visits every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Select {
                cond, tval, fval, ..
            } => {
                f(cond);
                f(tval);
                f(fval);
            }
            Inst::Phi { incoming, .. } => {
                for (v, _) in incoming {
                    f(v);
                }
            }
            Inst::Freeze { val, .. }
            | Inst::Cast { val, .. }
            | Inst::Bitcast { val, .. }
            | Inst::PtrToInt { val, .. }
            | Inst::IntToPtr { val, .. }
            | Inst::Load { ptr: val, .. }
            | Inst::Assume { cond: val } => f(val),
            Inst::Gep { base, idx, .. } => {
                f(base);
                f(idx);
            }
            Inst::Store { val, ptr, .. } => {
                f(val);
                f(ptr);
            }
            Inst::ExtractElement { vec, idx, .. } => {
                f(vec);
                f(idx);
            }
            Inst::InsertElement { vec, elt, idx, .. } => {
                f(vec);
                f(elt);
                f(idx);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Alloca { .. } => {}
        }
    }

    /// Visits every operand mutably (used by passes when rewriting
    /// operands).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Select {
                cond, tval, fval, ..
            } => {
                f(cond);
                f(tval);
                f(fval);
            }
            Inst::Phi { incoming, .. } => {
                for (v, _) in incoming {
                    f(v);
                }
            }
            Inst::Freeze { val, .. }
            | Inst::Cast { val, .. }
            | Inst::Bitcast { val, .. }
            | Inst::PtrToInt { val, .. }
            | Inst::IntToPtr { val, .. }
            | Inst::Load { ptr: val, .. }
            | Inst::Assume { cond: val } => f(val),
            Inst::Gep { base, idx, .. } => {
                f(base);
                f(idx);
            }
            Inst::Store { val, ptr, .. } => {
                f(val);
                f(ptr);
            }
            Inst::ExtractElement { vec, idx, .. } => {
                f(vec);
                f(idx);
            }
            Inst::InsertElement { vec, elt, idx, .. } => {
                f(vec);
                f(elt);
                f(idx);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Alloca { .. } => {}
        }
    }

    /// Collects the operands into a vector.
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_operand(|v| out.push(v.clone()));
        out
    }

    /// Returns `true` if any operand mentions the result of instruction
    /// `id`.
    pub fn uses_inst(&self, id: InstId) -> bool {
        let mut found = false;
        self.for_each_operand(|v| {
            if *v == Value::Inst(id) {
                found = true;
            }
        });
        found
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// `ret <ty> v` or `ret void`.
    Ret(Option<Value>),
    /// `br i1 cond, label %then, label %else`. Branching on poison is
    /// immediate UB under the proposed semantics (§4), a
    /// non-deterministic choice under the legacy loop-unswitching
    /// interpretation (§3.3).
    Br {
        /// The `i1` condition.
        cond: Value,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// `br label %dest` — unconditional branch.
    Jmp(BlockId),
    /// `unreachable` — executing this is immediate UB.
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret(_) | Terminator::Unreachable => Vec::new(),
            Terminator::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Jmp(dest) => vec![*dest],
        }
    }

    /// Visits the value operand of the terminator, if any.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Terminator::Ret(Some(v)) => f(v),
            Terminator::Br { cond, .. } => f(cond),
            _ => {}
        }
    }

    /// Visits the value operand of the terminator mutably, if any.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Terminator::Ret(Some(v)) => f(v),
            Terminator::Br { cond, .. } => f(cond),
            _ => {}
        }
    }

    /// Rewrites successor block ids through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Jmp(dest) => *dest = f(*dest),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        // On i2: 0b11 is 3 unsigned, -1 signed.
        assert!(Cond::Ugt.eval(2, 0b11, 0b01));
        assert!(!Cond::Sgt.eval(2, 0b11, 0b01));
        assert!(Cond::Slt.eval(2, 0b11, 0b00));
        assert!(Cond::Sle.eval(8, 0x80, 0x7f)); // -128 <= 127
    }

    #[test]
    fn cond_swapped_is_consistent_with_eval() {
        for c in Cond::ALL {
            for a in 0..4u128 {
                for b in 0..4u128 {
                    assert_eq!(c.eval(2, a, b), c.swapped().eval(2, b, a), "{c} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn cond_inverted_is_negation() {
        for c in Cond::ALL {
            for a in 0..4u128 {
                for b in 0..4u128 {
                    assert_eq!(c.eval(2, a, b), !c.inverted().eval(2, a, b));
                }
            }
        }
    }

    #[test]
    fn flags_display() {
        assert_eq!(Flags::NSW.to_string(), "nsw");
        assert_eq!(Flags::NSW_NUW.to_string(), "nsw nuw");
        assert_eq!(Flags::NONE.to_string(), "");
        assert_eq!(Flags::EXACT.to_string(), "exact");
    }

    #[test]
    fn flags_intersect_keeps_common() {
        assert_eq!(Flags::NSW.intersect(Flags::NSW_NUW), Flags::NSW);
        assert_eq!(Flags::NSW.intersect(Flags::NUW), Flags::NONE);
    }

    #[test]
    fn result_types() {
        let add = Inst::Bin {
            op: BinOp::Add,
            flags: Flags::NONE,
            ty: Ty::i32(),
            lhs: Value::Arg(0),
            rhs: Value::Arg(1),
        };
        assert_eq!(add.result_ty(), Ty::i32());

        let cmp = Inst::Icmp {
            cond: Cond::Eq,
            ty: Ty::vector(4, Ty::i32()),
            lhs: Value::Arg(0),
            rhs: Value::Arg(1),
        };
        assert_eq!(cmp.result_ty(), Ty::vector(4, Ty::i1()));

        let store = Inst::Store {
            ty: Ty::i8(),
            val: Value::Arg(0),
            ptr: Value::Arg(1),
        };
        assert_eq!(store.result_ty(), Ty::Void);

        let gep = Inst::Gep {
            elem_ty: Ty::i32(),
            base: Value::Arg(0),
            idx_ty: Ty::i32(),
            idx: Value::Arg(1),
            inbounds: true,
        };
        assert_eq!(gep.result_ty(), Ty::ptr_to(Ty::i32()));
    }

    #[test]
    fn operand_visiting() {
        let sel = Inst::Select {
            cond: Value::Arg(0),
            ty: Ty::i8(),
            tval: Value::Inst(InstId(1)),
            fval: Value::int(8, 3),
        };
        assert_eq!(sel.operands().len(), 3);
        assert!(sel.uses_inst(InstId(1)));
        assert!(!sel.uses_inst(InstId(2)));
    }

    #[test]
    fn terminator_successors() {
        let br = Terminator::Br {
            cond: Value::Arg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Jmp(BlockId(3)).successors(), vec![BlockId(3)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn wrap_flag_support() {
        assert!(BinOp::Add.supports_wrap_flags());
        assert!(BinOp::Shl.supports_wrap_flags());
        assert!(!BinOp::UDiv.supports_wrap_flags());
        assert!(BinOp::UDiv.supports_exact());
        assert!(BinOp::AShr.supports_exact());
        assert!(!BinOp::Add.supports_exact());
    }

    #[test]
    fn memory_inst_classification() {
        let a = Inst::Alloca { ty: Ty::i32() };
        assert_eq!(a.result_ty(), Ty::ptr_to(Ty::i32()));
        assert!(a.has_side_effects(), "layout is observable");
        assert!(a.operands().is_empty());
        let p2i = Inst::PtrToInt {
            from_ty: Ty::ptr_to(Ty::i8()),
            to_ty: Ty::i32(),
            val: Value::Arg(0),
        };
        assert_eq!(p2i.result_ty(), Ty::i32());
        assert!(p2i.has_side_effects(), "phase flip is observable");
        let i2p = Inst::IntToPtr {
            from_ty: Ty::i32(),
            to_ty: Ty::ptr_to(Ty::i8()),
            val: Value::Arg(0),
        };
        assert_eq!(i2p.result_ty(), Ty::ptr_to(Ty::i8()));
        assert_eq!(i2p.operands().len(), 1);
        assert!(!i2p.may_have_immediate_ub());
    }

    #[test]
    fn immediate_ub_classification() {
        assert!(BinOp::SDiv.may_have_immediate_ub());
        assert!(!BinOp::Add.may_have_immediate_ub());
        let ld = Inst::Load {
            ty: Ty::i8(),
            ptr: Value::Arg(0),
        };
        assert!(ld.may_have_immediate_ub());
        let fr = Inst::Freeze {
            ty: Ty::i8(),
            val: Value::Arg(0),
        };
        assert!(!fr.may_have_immediate_ub());
        assert!(fr.is_freeze());
    }
}
