//! The per-instruction descriptor table.
//!
//! One static [`Descriptor`] row per [`Inst`] variant collects the
//! per-opcode knowledge that used to be duplicated as parallel match
//! arms across the verifier, the [`FunctionKey`] encoder, the textual
//! front end, the execution planner, and the exhaustive generator:
//! fingerprint tag, canonical mnemonic, operand arity, result kind,
//! UB class, commutativity, side effects, and bit-slice eligibility.
//! Each of those five layers consults the table instead of keeping its
//! own opcode list, so extending the instruction set means adding a row
//! here (plus the executor semantics) rather than touching ten files.
//! The `assume`/`unreachable` guards were added exactly that way.
//!
//! [`FunctionKey`]: crate::fingerprint::FunctionKey

use super::Inst;
use crate::value::Value;

/// A stable opcode identifying one [`Inst`] variant (not one mnemonic:
/// all thirteen binary opcodes share [`Opcode::Bin`], the three
/// conversions share [`Opcode::Cast`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// Binary integer arithmetic ([`Inst::Bin`]).
    Bin,
    /// Integer/pointer comparison ([`Inst::Icmp`]).
    Icmp,
    /// Two-way select ([`Inst::Select`]).
    Select,
    /// SSA merge ([`Inst::Phi`]).
    Phi,
    /// Poison laundering ([`Inst::Freeze`]).
    Freeze,
    /// Width-changing conversion ([`Inst::Cast`]).
    Cast,
    /// Bit reinterpretation ([`Inst::Bitcast`]).
    Bitcast,
    /// Pointer arithmetic ([`Inst::Gep`]).
    Gep,
    /// Memory read ([`Inst::Load`]).
    Load,
    /// Memory write ([`Inst::Store`]).
    Store,
    /// Vector element read ([`Inst::ExtractElement`]).
    ExtractElement,
    /// Vector element replace ([`Inst::InsertElement`]).
    InsertElement,
    /// Direct call ([`Inst::Call`]).
    Call,
    /// Stack allocation ([`Inst::Alloca`]).
    Alloca,
    /// Address observation ([`Inst::PtrToInt`]).
    PtrToInt,
    /// Pointer forging ([`Inst::IntToPtr`]).
    IntToPtr,
    /// Deferred-UB guard ([`Inst::Assume`]).
    Assume,
}

/// How many value operands an instruction takes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arity {
    /// Exactly this many operands.
    Fixed(u8),
    /// An operand list whose length is per-instance (phi incomings,
    /// call arguments).
    Variadic,
}

/// Whether an instruction yields a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResultKind {
    /// Always produces a (nameable) value.
    Value,
    /// Produces a value or `void` depending on the instance (`call`).
    MaybeVoid,
    /// Never produces a value; the textual form is an unnamed
    /// statement.
    Void,
}

/// How an instruction participates in the deferred/immediate UB story
/// (§3 of the paper, extended with the guard class of the unreachable-
/// code calculus).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UbClass {
    /// Total on defined operands; violated attributes or poison
    /// operands defer UB by producing poison. Safe to speculate.
    Deferred,
    /// May raise *immediate* UB for some defined operand values
    /// (division by zero, out-of-bounds access, an arbitrary callee).
    /// May not be hoisted past control flow without a safety proof.
    Immediate,
    /// A guard: consumes a fact instead of producing a value. A false
    /// or poison fact (`assume`), or reaching the guard at all
    /// (`unreachable`), is immediate UB — but `freeze` on the operand
    /// launders the poison half away.
    Guard,
}

/// One row of the table: everything the non-executor layers need to
/// know about an instruction variant.
#[derive(Debug)]
pub struct Descriptor {
    /// Which variant this row describes.
    pub opcode: Opcode,
    /// The canonical text mnemonic, or `None` when the sub-opcode
    /// carries it (`Bin` prints `add`/`sub`/…, `Cast` prints
    /// `zext`/`sext`/`trunc`).
    pub mnemonic: Option<&'static str>,
    /// The [`FunctionKey`](crate::fingerprint::FunctionKey) encoding
    /// tag. Unique per row; the encoder pushes it before any
    /// per-variant immediates.
    pub tag: u8,
    /// Operand count.
    pub arity: Arity,
    /// Whether the instruction yields a value.
    pub result: ResultKind,
    /// Deferred/immediate/guard UB classification.
    pub ub: UbClass,
    /// `true` if operands may be swapped for all defined values.
    /// Variant-level: `Bin` rows defer to
    /// [`BinOp::is_commutative`](super::BinOp::is_commutative).
    pub commutative: bool,
    /// `true` if the instruction changes observable state even when
    /// its result is unused (memory writes, layout, phase flips,
    /// guard facts) and therefore may not be dropped by DCE.
    pub side_effects: bool,
    /// `true` if every operand (and for guards, the consumed fact)
    /// must have type `i1`. Consumed generically by the verifier and
    /// the textual front end.
    pub bool_operands: bool,
    /// `true` if the bit-sliced engine can lower this instruction;
    /// `false` rows make the whole function fall back to the plan
    /// loop under the auto-dispatching engine.
    pub bitslice_ok: bool,
}

impl Descriptor {
    /// Returns `true` for the guard class (`assume`; the `unreachable`
    /// terminator shares the semantics but lives outside this table).
    pub fn is_guard(&self) -> bool {
        self.ub == UbClass::Guard
    }

    /// Builds the instruction for a unary guard row from its consumed
    /// fact. Returns `None` for non-guard rows — the textual parser
    /// uses this so guard mnemonics need no dedicated parse arm.
    pub fn make_guard(&self, fact: Value) -> Option<Inst> {
        match self.opcode {
            Opcode::Assume if self.is_guard() => Some(Inst::Assume { cond: fact }),
            _ => None,
        }
    }
}

/// The table, indexed by [`Opcode`] discriminant order.
pub static TABLE: [Descriptor; 17] = [
    Descriptor {
        opcode: Opcode::Bin,
        mnemonic: None,
        tag: 0,
        arity: Arity::Fixed(2),
        result: ResultKind::Value,
        ub: UbClass::Deferred, // div/rem immediate UB is per-BinOp
        commutative: false,    // per-BinOp
        side_effects: false,
        bool_operands: false,
        bitslice_ok: true,
    },
    Descriptor {
        opcode: Opcode::Icmp,
        mnemonic: Some("icmp"),
        tag: 1,
        arity: Arity::Fixed(2),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: true,
    },
    Descriptor {
        opcode: Opcode::Select,
        mnemonic: Some("select"),
        tag: 2,
        arity: Arity::Fixed(3),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: true,
    },
    Descriptor {
        opcode: Opcode::Phi,
        mnemonic: Some("phi"),
        tag: 3,
        arity: Arity::Variadic,
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: false, // straight-line lowering only
    },
    Descriptor {
        opcode: Opcode::Freeze,
        mnemonic: Some("freeze"),
        tag: 4,
        arity: Arity::Fixed(1),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: true,
    },
    Descriptor {
        opcode: Opcode::Cast,
        mnemonic: None,
        tag: 5,
        arity: Arity::Fixed(1),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: true,
    },
    Descriptor {
        opcode: Opcode::Bitcast,
        mnemonic: Some("bitcast"),
        tag: 6,
        arity: Arity::Fixed(1),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: true,
    },
    Descriptor {
        opcode: Opcode::Gep,
        mnemonic: Some("getelementptr"),
        tag: 7,
        arity: Arity::Fixed(2),
        result: ResultKind::Value,
        ub: UbClass::Deferred, // OOB arithmetic is poison, not UB
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: false, // memory: plane representation is per-value
    },
    Descriptor {
        opcode: Opcode::Load,
        mnemonic: Some("load"),
        tag: 8,
        arity: Arity::Fixed(1),
        result: ResultKind::Value,
        ub: UbClass::Immediate,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::Store,
        mnemonic: Some("store"),
        tag: 9,
        arity: Arity::Fixed(2),
        result: ResultKind::Void,
        ub: UbClass::Immediate,
        commutative: false,
        side_effects: true,
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::ExtractElement,
        mnemonic: Some("extractelement"),
        tag: 10,
        arity: Arity::Fixed(2),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::InsertElement,
        mnemonic: Some("insertelement"),
        tag: 11,
        arity: Arity::Fixed(3),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: false,
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::Call,
        mnemonic: Some("call"),
        tag: 12,
        arity: Arity::Variadic,
        result: ResultKind::MaybeVoid,
        ub: UbClass::Immediate,
        commutative: false,
        side_effects: true,
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::Alloca,
        mnemonic: Some("alloca"),
        tag: 13,
        arity: Arity::Fixed(0),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: true, // the deterministic block layout is observable
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::PtrToInt,
        mnemonic: Some("ptrtoint"),
        tag: 14,
        arity: Arity::Fixed(1),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: true, // flips memory into the finite phase
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::IntToPtr,
        mnemonic: Some("inttoptr"),
        tag: 15,
        arity: Arity::Fixed(1),
        result: ResultKind::Value,
        ub: UbClass::Deferred,
        commutative: false,
        side_effects: true,
        bool_operands: false,
        bitslice_ok: false,
    },
    Descriptor {
        opcode: Opcode::Assume,
        mnemonic: Some("assume"),
        tag: 16,
        arity: Arity::Fixed(1),
        result: ResultKind::Void,
        ub: UbClass::Guard,
        commutative: false,
        side_effects: true, // the asserted fact constrains later code
        bool_operands: true,
        bitslice_ok: false, // rejected with frost.core.bitslice.guard_rejects
    },
];

impl Opcode {
    /// The descriptor row for this opcode.
    pub fn descriptor(self) -> &'static Descriptor {
        let d = &TABLE[self as usize];
        debug_assert_eq!(d.opcode, self, "TABLE must be in Opcode order");
        d
    }
}

/// Looks a statement-starting word up in the table, resolving
/// sub-opcode mnemonics (`add`, `zext`, …) to their variant row. This
/// is the textual front end's single source of mnemonic knowledge:
/// both the void-statement prescan and the guard parse path go through
/// it.
pub fn by_mnemonic(word: &str) -> Option<&'static Descriptor> {
    if super::BinOp::ALL.iter().any(|op| op.mnemonic() == word) {
        return Some(Opcode::Bin.descriptor());
    }
    if ["zext", "sext", "trunc"].contains(&word) {
        return Some(Opcode::Cast.descriptor());
    }
    TABLE.iter().find(|d| d.mnemonic == Some(word))
}

impl Inst {
    /// The variant-level opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        match self {
            Inst::Bin { .. } => Opcode::Bin,
            Inst::Icmp { .. } => Opcode::Icmp,
            Inst::Select { .. } => Opcode::Select,
            Inst::Phi { .. } => Opcode::Phi,
            Inst::Freeze { .. } => Opcode::Freeze,
            Inst::Cast { .. } => Opcode::Cast,
            Inst::Bitcast { .. } => Opcode::Bitcast,
            Inst::Gep { .. } => Opcode::Gep,
            Inst::Load { .. } => Opcode::Load,
            Inst::Store { .. } => Opcode::Store,
            Inst::ExtractElement { .. } => Opcode::ExtractElement,
            Inst::InsertElement { .. } => Opcode::InsertElement,
            Inst::Call { .. } => Opcode::Call,
            Inst::Alloca { .. } => Opcode::Alloca,
            Inst::PtrToInt { .. } => Opcode::PtrToInt,
            Inst::IntToPtr { .. } => Opcode::IntToPtr,
            Inst::Assume { .. } => Opcode::Assume,
        }
    }

    /// The descriptor row for this instruction's variant.
    pub fn descriptor(&self) -> &'static Descriptor {
        self.opcode().descriptor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_in_opcode_order_with_unique_tags() {
        let mut tags = std::collections::HashSet::new();
        for (i, d) in TABLE.iter().enumerate() {
            assert_eq!(d.opcode as usize, i, "{:?} out of order", d.opcode);
            assert!(tags.insert(d.tag), "duplicate tag {}", d.tag);
        }
    }

    #[test]
    fn mnemonic_lookup_resolves_sub_opcodes() {
        assert_eq!(by_mnemonic("add").unwrap().opcode, Opcode::Bin);
        assert_eq!(by_mnemonic("sext").unwrap().opcode, Opcode::Cast);
        assert_eq!(by_mnemonic("assume").unwrap().opcode, Opcode::Assume);
        assert_eq!(by_mnemonic("store").unwrap().opcode, Opcode::Store);
        assert!(by_mnemonic("ret").is_none());
        assert!(by_mnemonic("unreachable").is_none(), "terminator, not inst");
    }

    #[test]
    fn guard_rows_build_their_instruction() {
        use crate::value::Value;
        let d = Opcode::Assume.descriptor();
        assert!(d.is_guard());
        assert_eq!(
            d.make_guard(Value::Arg(0)),
            Some(Inst::Assume {
                cond: Value::Arg(0)
            })
        );
        assert_eq!(Opcode::Store.descriptor().make_guard(Value::Arg(0)), None);
    }

    #[test]
    fn descriptor_agrees_with_inst_queries() {
        use crate::types::Ty;
        let assume = Inst::Assume {
            cond: Value::Arg(0),
        };
        let d = assume.descriptor();
        assert_eq!(d.result, ResultKind::Void);
        assert!(assume.result_ty().is_void());
        assert!(assume.has_side_effects());
        assert!(assume.may_have_immediate_ub());
        assert_eq!(assume.operands().len(), 1);
        let store = Inst::Store {
            ty: Ty::i8(),
            val: Value::Arg(0),
            ptr: Value::Arg(1),
        };
        assert_eq!(store.descriptor().arity, Arity::Fixed(2));
        assert!(store.descriptor().side_effects);
    }
}
