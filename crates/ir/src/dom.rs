//! Dominator tree, computed with the Cooper–Harvey–Kennedy iterative
//! algorithm over reverse postorder.

use crate::cfg::{reverse_postorder, rpo_numbers};
use crate::function::Function;
use crate::value::BlockId;

/// The dominator tree of a function's CFG.
///
/// Unreachable blocks have no immediate dominator and dominate nothing.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each block (`None` for the entry block and
    /// unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Position of each block in reverse postorder.
    rpo_number: Vec<Option<usize>>,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn compute(func: &Function) -> DomTree {
        let rpo = reverse_postorder(func);
        let rpo_number = rpo_numbers(func);
        let preds = func.predecessors();
        let n = func.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[BlockId::ENTRY.index()] = Some(BlockId::ENTRY);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            loop {
                let na = rpo_number[a.index()].expect("reachable");
                let nb = rpo_number[b.index()].expect("reachable");
                if na == nb {
                    return a;
                }
                if na > nb {
                    a = idom[a.index()].expect("processed");
                } else {
                    b = idom[b.index()].expect("processed");
                }
            }
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[bb.index()] {
                    if rpo_number[p.index()].is_none() {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue; // not yet processed this iteration
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[bb.index()] != new_idom {
                    idom[bb.index()] = new_idom;
                    changed = true;
                }
            }
        }
        // By convention the entry's idom is None externally.
        idom[BlockId::ENTRY.index()] = None;
        DomTree { idom, rpo_number }
    }

    /// The immediate dominator of `bb` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        self.idom[bb.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_number[a.index()].is_none() || self.rpo_number[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Returns `true` if `bb` is reachable from the entry block.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_number[bb.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Cond;
    use crate::types::Ty;
    use crate::value::Value;

    #[test]
    fn diamond_dominators() {
        let mut b = FunctionBuilder::new("d", &[("c", Ty::i1())], Ty::Void);
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        b.br(b.arg(0), t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret_void();
        let f = b.finish();
        let dt = DomTree::compute(&f);

        assert_eq!(dt.idom(BlockId::ENTRY), None);
        assert_eq!(dt.idom(t), Some(BlockId::ENTRY));
        assert_eq!(dt.idom(e), Some(BlockId::ENTRY));
        assert_eq!(dt.idom(j), Some(BlockId::ENTRY));
        assert!(dt.dominates(BlockId::ENTRY, j));
        assert!(!dt.dominates(t, j));
        assert!(dt.dominates(j, j));
        assert!(!dt.strictly_dominates(j, j));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FunctionBuilder::new("l", &[("n", Ty::i32())], Ty::Void);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let c = b.icmp(Cond::Ne, b.arg(0), Value::int(32, 0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret_void();
        let f = b.finish();
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(head, body));
        assert!(dt.dominates(head, exit));
        assert!(!dt.dominates(body, head));
        assert_eq!(dt.idom(body), Some(head));
        assert_eq!(dt.idom(exit), Some(head));
    }

    #[test]
    fn unreachable_blocks_are_outside_the_tree() {
        let mut b = FunctionBuilder::new("u", &[], Ty::Void);
        let dead = b.block("dead");
        b.ret_void();
        b.switch_to(dead);
        b.ret_void();
        let f = b.finish();
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(BlockId::ENTRY, dead));
        assert!(!dt.dominates(dead, BlockId::ENTRY));
    }
}
