//! Operands and constants.
//!
//! A [`Value`] is anything an instruction can take as operand: the result
//! of another instruction, a function argument, or a constant. The
//! deferred-undefined-behavior values `poison` and (in legacy semantics)
//! `undef` are constants, mirroring LLVM.

use std::fmt;

use crate::types::Ty;

/// Identifier of an instruction inside a [`crate::Function`]'s arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstId(pub u32);

/// Identifier of a basic block inside a [`crate::Function`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl InstId {
    /// The arena index of this instruction.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The index of this block in the function's block list.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%t{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// An integer constant of type `iN`. The payload is stored
    /// zero-extended in a `u128`; only the low `bits` bits are
    /// significant.
    Int {
        /// Width in bits.
        bits: u32,
        /// Value, truncated to `bits` bits.
        value: u128,
    },
    /// The null pointer of the given pointer type.
    Null(Ty),
    /// The poison value of the given type (§4 of the paper): the single
    /// deferred-undefined-behavior value of the proposed semantics.
    Poison(Ty),
    /// The legacy `undef` value of the given type: an indeterminate value
    /// that may evaluate to a different arbitrary value at each use.
    ///
    /// Only meaningful under the legacy semantics; the proposed semantics
    /// removes it (the verifier rejects it in `proposed` mode).
    Undef(Ty),
    /// A vector constant; one constant per element.
    Vector(Vec<Constant>),
}

impl Constant {
    /// An `i1` true.
    pub fn bool(v: bool) -> Constant {
        Constant::Int {
            bits: 1,
            value: v as u128,
        }
    }

    /// An integer constant, truncating `value` to `bits` bits.
    pub fn int(bits: u32, value: u128) -> Constant {
        Constant::Int {
            bits,
            value: truncate(value, bits),
        }
    }

    /// An `i32` constant.
    pub fn i32(value: u32) -> Constant {
        Constant::int(32, value as u128)
    }

    /// An `i64` constant.
    pub fn i64(value: u64) -> Constant {
        Constant::int(64, value as u128)
    }

    /// The type of this constant.
    pub fn ty(&self) -> Ty {
        match self {
            Constant::Int { bits, .. } => Ty::Int(*bits),
            Constant::Null(ty) | Constant::Poison(ty) | Constant::Undef(ty) => ty.clone(),
            Constant::Vector(elems) => {
                let elem_ty = elems.first().expect("vector constant is non-empty").ty();
                Ty::vector(elems.len() as u32, elem_ty)
            }
        }
    }

    /// Returns `true` if this constant is `poison`, or a vector with at
    /// least one poison element.
    pub fn contains_poison(&self) -> bool {
        match self {
            Constant::Poison(_) => true,
            Constant::Vector(elems) => elems.iter().any(Constant::contains_poison),
            _ => false,
        }
    }

    /// Returns `true` if this constant is `undef`, or a vector with at
    /// least one undef element.
    pub fn contains_undef(&self) -> bool {
        match self {
            Constant::Undef(_) => true,
            Constant::Vector(elems) => elems.iter().any(Constant::contains_undef),
            _ => false,
        }
    }

    /// The integer payload if this is a fully-defined integer constant.
    pub fn as_int(&self) -> Option<u128> {
        match self {
            Constant::Int { value, .. } => Some(*value),
            _ => None,
        }
    }
}

/// Truncates `value` to the low `bits` bits.
pub fn truncate(value: u128, bits: u32) -> u128 {
    if bits >= 128 {
        value
    } else {
        value & ((1u128 << bits) - 1)
    }
}

/// Sign-extends the `bits`-bit value `value` to a signed `i128`.
pub fn to_signed(value: u128, bits: u32) -> i128 {
    debug_assert!((1..=128).contains(&bits));
    let shift = 128 - bits;
    ((value << shift) as i128) >> shift
}

/// Truncates a signed `i128` to a `bits`-bit unsigned payload.
pub fn from_signed(value: i128, bits: u32) -> u128 {
    truncate(value as u128, bits)
}

/// An operand of an instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// The result of the given instruction.
    Inst(InstId),
    /// The `i`-th function argument.
    Arg(u32),
    /// A constant.
    Const(Constant),
}

impl Value {
    /// `i1 true`.
    pub fn bool(v: bool) -> Value {
        Value::Const(Constant::bool(v))
    }

    /// An integer constant operand.
    pub fn int(bits: u32, value: u128) -> Value {
        Value::Const(Constant::int(bits, value))
    }

    /// The poison constant of type `ty`.
    pub fn poison(ty: Ty) -> Value {
        Value::Const(Constant::Poison(ty))
    }

    /// The legacy undef constant of type `ty`.
    pub fn undef(ty: Ty) -> Value {
        Value::Const(Constant::Undef(ty))
    }

    /// Returns the instruction id if this operand is an instruction
    /// result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns the constant if this operand is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns the integer payload if this operand is a fully-defined
    /// integer constant.
    pub fn as_int_const(&self) -> Option<u128> {
        self.as_const().and_then(Constant::as_int)
    }

    /// Returns `true` if this operand is the given integer constant.
    pub fn is_int_const(&self, v: u128) -> bool {
        self.as_int_const() == Some(v)
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        Value::Const(c)
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_masks_high_bits() {
        assert_eq!(truncate(0xff, 4), 0xf);
        assert_eq!(truncate(0b101, 1), 1);
        assert_eq!(truncate(u128::MAX, 128), u128::MAX);
        assert_eq!(truncate(256, 8), 0);
    }

    #[test]
    fn signed_round_trip() {
        assert_eq!(to_signed(0b11, 2), -1);
        assert_eq!(to_signed(0b10, 2), -2);
        assert_eq!(to_signed(0b01, 2), 1);
        assert_eq!(from_signed(-1, 2), 0b11);
        assert_eq!(from_signed(-2, 8), 0xfe);
        for v in 0..16u128 {
            assert_eq!(from_signed(to_signed(v, 4), 4), v);
        }
    }

    #[test]
    fn constant_types() {
        assert_eq!(Constant::bool(true).ty(), Ty::Int(1));
        assert_eq!(Constant::i32(7).ty(), Ty::i32());
        assert_eq!(Constant::Poison(Ty::i8()).ty(), Ty::i8());
        let v = Constant::Vector(vec![Constant::int(16, 1), Constant::int(16, 2)]);
        assert_eq!(v.ty(), Ty::vector(2, Ty::Int(16)));
    }

    #[test]
    fn int_constant_truncates() {
        assert_eq!(Constant::int(4, 0x1f).as_int(), Some(0xf));
    }

    #[test]
    fn poison_detection_in_vectors() {
        let v = Constant::Vector(vec![Constant::int(8, 1), Constant::Poison(Ty::i8())]);
        assert!(v.contains_poison());
        assert!(!v.contains_undef());
        let u = Constant::Vector(vec![Constant::Undef(Ty::i8()), Constant::int(8, 0)]);
        assert!(u.contains_undef());
        assert!(!u.contains_poison());
    }

    #[test]
    fn value_accessors() {
        let v = Value::int(8, 42);
        assert_eq!(v.as_int_const(), Some(42));
        assert!(v.is_int_const(42));
        assert!(!v.is_int_const(41));
        assert_eq!(Value::Inst(InstId(3)).as_inst(), Some(InstId(3)));
        assert_eq!(Value::Arg(0).as_inst(), None);
    }

    #[test]
    fn display_ids() {
        assert_eq!(InstId(5).to_string(), "%t5");
        assert_eq!(BlockId(2).to_string(), "bb2");
    }
}
