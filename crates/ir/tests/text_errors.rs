//! Parser error-path coverage: every diagnostic class the textual IR
//! front end can produce — malformed tokens, unknown opcodes, type
//! mismatches, dangling value references, duplicate block labels, and
//! SSA-shape violations — pinned down to its message, its 1-based
//! line/column, the exact byte [`Span`] it underlines, and the
//! caret-underlined excerpt its `Display` renders.

use frost_ir::{parse_function, parse_module, ParseError};

/// Parses `src` expecting failure; asserts the diagnostic mentions
/// `message`, that the error's span underlines exactly `underlined`
/// in the source, and that the rendered excerpt carries a caret run
/// as wide as the underlined text (in characters).
fn expect_error(src: &str, message: &str, underlined: &str) -> ParseError {
    let err = parse_module(src).expect_err("parse should fail");
    assert!(
        err.message.contains(message),
        "wrong message: got {:?}, wanted substring {message:?}",
        err.message
    );
    assert_eq!(
        &src[err.span.start..err.span.end],
        underlined,
        "span {:?} underlines the wrong text",
        err.span
    );
    let rendered = err.to_string();
    let carets = "^".repeat(underlined.chars().count());
    assert!(
        rendered.contains(&carets),
        "rendered error lacks a {}-wide caret run:\n{rendered}",
        underlined.chars().count()
    );
    assert!(
        rendered.contains(&format!("line {}, column {}", err.line, err.column)),
        "rendered error lacks its own line/column:\n{rendered}"
    );
    err
}

// ---- malformed tokens ------------------------------------------------

#[test]
fn unexpected_character_is_a_lex_error() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, $3\n  ret i32 %a\n}";
    let err = expect_error(src, "unexpected character '$'", "$");
    assert_eq!(err.line, 3);
}

#[test]
fn bare_sigil_is_a_lex_error() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, %\n  ret i32 %a\n}";
    expect_error(src, "expected a name after '%'", "%");
}

#[test]
fn oversized_integer_literal_is_a_lex_error() {
    let lit = "99999999999999999999999999999999999999999999";
    let src = format!("define i64 @f() {{\nentry:\n  ret i64 {lit}\n}}");
    let err = expect_error(&src, "invalid integer literal", lit);
    assert_eq!(err.line, 3);
}

// ---- unknown opcodes -------------------------------------------------

#[test]
fn unknown_instruction_mnemonic() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = frobnicate i32 %x\n  ret i32 %a\n}";
    let err = expect_error(src, "unknown instruction 'frobnicate'", "frobnicate");
    assert_eq!((err.line, err.column), (3, 8));
}

#[test]
fn unknown_icmp_condition() {
    let src = "define i1 @f(i32 %x) {\nentry:\n  %a = icmp wat i32 %x, 0\n  ret i1 %a\n}";
    expect_error(src, "unknown icmp condition 'wat'", "wat");
}

// ---- type mismatches -------------------------------------------------

#[test]
fn select_arms_must_agree() {
    let src = "define i32 @f(i1 %c, i32 %x) {\nentry:\n  \
               %a = select i1 %c, i32 %x, i8 7\n  ret i32 %a\n}";
    // The caret sits on the false arm's type — the one that disagrees.
    let err = expect_error(src, "select arms must have the same type (i32 vs i8)", "i8");
    assert_eq!(err.line, 3);
}

#[test]
fn ret_type_must_match_function_type() {
    let src = "define i32 @f(i8 %x) {\nentry:\n  ret i8 %x\n}";
    expect_error(
        src,
        "ret type i8 does not match function return type i32",
        "i8",
    );
}

#[test]
fn br_condition_must_be_i1() {
    let src = "define i32 @f(i32 %c) {\nentry:\n  br i32 %c, label %a, label %b\na:\n  \
               ret i32 0\nb:\n  ret i32 1\n}";
    expect_error(src, "br condition must have type i1", "i32");
}

#[test]
fn load_pointer_type_must_match() {
    // The span unions the whole pointer type (`i32` + `*` tokens).
    let src = "define i16 @f(i32* %p) {\nentry:\n  %v = load i16, i32* %p\n  ret i16 %v\n}";
    expect_error(src, "load pointer type must be i16*", "i32*");
}

#[test]
fn integer_literal_needs_an_integer_type() {
    let src = "define i32* @f(i32* %p) {\nentry:\n  ret i32* 5\n}";
    expect_error(src, "integer literal cannot have type i32*", "5");
}

// ---- memory operations -----------------------------------------------

#[test]
fn ptrtoint_source_must_be_a_pointer() {
    let src = "define i32 @f(i8 %x) {\nentry:\n  %a = ptrtoint i8 %x to i32\n  ret i32 %a\n}";
    let err = expect_error(src, "ptrtoint source must be a pointer, got i8", "i8");
    assert_eq!(err.line, 3);
}

#[test]
fn ptrtoint_result_must_be_the_pointer_width() {
    // The pointer width is fixed at 32 bits; an i16 result is rejected
    // with the caret on the offending result type.
    let src = "define i16 @f(i8* %p) {\nentry:\n  %a = ptrtoint i8* %p to i16\n  ret i16 %a\n}";
    let err = expect_error(
        src,
        "ptrtoint result must be i32 (the pointer width), got i16",
        "i16",
    );
    assert_eq!(err.line, 3);
}

#[test]
fn inttoptr_source_must_be_the_pointer_width() {
    let src = "define i8 @f(i8 %x) {\nentry:\n  %q = inttoptr i8 %x to i8*\n  \
               %v = load i8, i8* %q\n  ret i8 %v\n}";
    let err = expect_error(
        src,
        "inttoptr source must be i32 (the pointer width), got i8",
        "i8",
    );
    assert_eq!((err.line, err.column), (3, 17));
}

#[test]
fn inttoptr_result_must_be_a_pointer() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %q = inttoptr i32 %x to i16\n  ret i32 %x\n}";
    let err = expect_error(src, "inttoptr result must be a pointer, got i16", "i16");
    assert_eq!(err.line, 3);
}

#[test]
fn store_pointer_operand_must_be_a_pointer() {
    // The pointer operand of a store must have type `<stored ty>*`; a
    // bare integer there is caught with the caret on its type.
    let src = "define void @f(i8 %x) {\nentry:\n  store i8 1, i8 %x\n  ret void\n}";
    let err = expect_error(src, "store pointer type must be i8*", "i8");
    assert_eq!((err.line, err.column), (3, 15));
}

#[test]
fn store_pointee_type_must_match() {
    let src = "define void @f(i32* %p) {\nentry:\n  store i8 1, i32* %p\n  ret void\n}";
    expect_error(src, "store pointer type must be i8*", "i32*");
}

// ---- dangling value references ---------------------------------------

#[test]
fn unknown_local_operand() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, %missing\n  ret i32 %a\n}";
    let err = expect_error(src, "unknown local %missing", "%missing");
    assert_eq!((err.line, err.column), (3, 20));
}

#[test]
fn unknown_branch_label() {
    let src = "define i32 @f() {\nentry:\n  br label %nowhere\n}";
    expect_error(src, "unknown label %nowhere", "%nowhere");
}

// ---- duplicate labels and SSA-shape violations -----------------------

#[test]
fn duplicate_block_label() {
    let src = "define i32 @f() {\nentry:\n  br %entry\nentry:\n  ret i32 0\n}";
    let err = expect_error(src, "duplicate block label 'entry'", "entry");
    assert_eq!(err.line, 4);
}

#[test]
fn duplicate_value_definition() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  \
               %a = add i32 %x, 2\n  ret i32 %a\n}";
    let err = expect_error(src, "duplicate definition of %a", "%a");
    assert_eq!(err.line, 4);
}

#[test]
fn result_must_not_shadow_a_parameter() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %x = add i32 %x, 1\n  ret i32 %x\n}";
    expect_error(src, "%x shadows a parameter", "%x");
}

#[test]
fn named_instructions_cannot_start_a_statement_bare() {
    // Only void-result statements (`store`, `call`) may start with a
    // bare mnemonic; a value-producing one is caught at pre-scan.
    let src = "define i32 @f(i32 %x) {\nentry:\n  add i32 %x, 1\n  ret i32 %x\n}";
    let err = expect_error(src, "unexpected statement start 'add'", "add");
    assert_eq!(err.line, 3);
}

#[test]
fn value_producing_call_must_be_named() {
    let src = "declare i32 @g()\n\
               define i32 @f() {\nentry:\n  call i32 @g()\n  ret i32 0\n}";
    let err = expect_error(src, "result of call must be named", "call");
    assert_eq!(err.line, 4);
}

// ---- guards ----------------------------------------------------------

#[test]
fn assume_operand_must_be_i1() {
    let src = "define i8 @f(i8 %x) {\nentry:\n  assume i8 %x\n  ret i8 %x\n}";
    let err = expect_error(src, "assume operand must have type i1, got i8", "i8");
    assert_eq!((err.line, err.column), (3, 10));
}

#[test]
fn unreachable_takes_no_operands() {
    // Everything trailing on the line is underlined as one span.
    let src = "define i4 @f(i4 %x) {\nentry:\n  unreachable i4 %x\n}";
    let err = expect_error(src, "unreachable takes no operands", "i4 %x");
    assert_eq!(err.line, 3);
}

/// Canonical printing of both guards, pinned: `assume` as a bare
/// (void, unnamed) statement, `unreachable` as a terminator — and the
/// printed form reparses to the identical canonical text.
#[test]
fn guard_printing_is_canonical_and_roundtrips() {
    let src = "define i2 @f(i1 %c) {\nentry:\n  %v = zext i1 %c to i2\n  assume i1 %c\n  \
               br i1 %c, label %a, label %b\na:\n  ret i2 %v\nb:\n  unreachable\n}";
    let module = parse_module(src).expect("guarded module parses");
    let text = frost_ir::module_to_string(&module);
    assert!(text.contains("\n  assume i1 %c\n"), "{text}");
    assert!(text.contains("\n  unreachable\n"), "{text}");
    let again = parse_module(&text).expect("canonical form reparses");
    assert_eq!(frost_ir::module_to_string(&again), text, "not a fixpoint");
}

// ---- rendering details ------------------------------------------------

#[test]
fn excerpt_shows_gutter_source_line_and_column() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = mul i32 %x, %gone\n  ret i32 %a\n}";
    let err = parse_function(src).expect_err("parse should fail");
    let rendered = err.to_string();
    for needle in [
        "error: unknown local %gone",
        "--> line 3, column 20",
        "3 |   %a = mul i32 %x, %gone",
        "^^^^^",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
}

#[test]
fn end_of_input_errors_point_past_the_last_token() {
    let src = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1";
    let err = parse_module(src).expect_err("parse should fail");
    assert!(
        err.span.start >= src.trim_end().len() - 1,
        "span {:?} should sit at the end of {} bytes",
        err.span,
        src.len()
    );
}
