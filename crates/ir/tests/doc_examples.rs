//! Doc-example fidelity: every fenced ```fir block in the repo's
//! documentation, and every committed `examples/*.fir` file, must
//! parse. The language reference cannot drift from the parser.

use std::path::{Path, PathBuf};

use frost_ir::parse_module;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Extracts the bodies of all ```fir fenced code blocks.
fn fir_blocks(markdown: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(usize, String)> = None;
    for (i, line) in markdown.lines().enumerate() {
        let fence = line.trim_start();
        match &mut current {
            None if fence == "```fir" => current = Some((i + 1, String::new())),
            Some(_) if fence == "```" => blocks.push(current.take().unwrap()),
            Some((_, body)) => {
                body.push_str(line);
                body.push('\n');
            }
            None => {}
        }
    }
    assert!(current.is_none(), "unclosed ```fir fence");
    blocks
}

fn check_doc(path: &str, min_blocks: usize) {
    let full = repo_root().join(path);
    let text = std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let blocks = fir_blocks(&text);
    assert!(
        blocks.len() >= min_blocks,
        "{path}: found {} ```fir blocks, expected at least {min_blocks} — \
         did a worked example get re-fenced?",
        blocks.len()
    );
    for (line, body) in blocks {
        if let Err(e) = parse_module(&body) {
            panic!("{path}: ```fir block starting at line {line} does not parse:\n{e}");
        }
    }
}

#[test]
fn ir_reference_examples_parse() {
    check_doc("docs/IR_REFERENCE.md", 5);
}

#[test]
fn readme_examples_parse() {
    check_doc("README.md", 1);
}

#[test]
fn design_examples_parse() {
    check_doc("DESIGN.md", 0);
}

#[test]
fn committed_example_modules_parse_and_pair_up() {
    let dir = repo_root().join("examples");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "fir") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let module = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} does not parse:\n{e}", path.display()));
        // Each shipped example demonstrates `repro --input`'s pair
        // convention: at least one @f with an @f.tgt partner.
        assert!(
            module
                .functions
                .iter()
                .any(|f| module.function(&format!("{}.tgt", f.name)).is_some()),
            "{}: no @f/@f.tgt refinement pair",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected the §5.4 example pair, found {checked}"
    );
}
