//! Regenerates the paper's tables and figures, and drives textual IR
//! files through the checker. Usage:
//!
//! ```text
//! repro [--experiment NAME] [--quick] [--budget N]
//!       [--insts N] [--seconds N] [--checkpoint FILE] [--fuzz N]
//!       [--prune] [--mem] [--guards] [--shards K] [--shard-id I] [--merge FILE]...
//!       [--bench-json FILE]
//!       [--trace] [--counters] [--validate-trace FILE]
//! repro --input FILE.fir
//! ```
//!
//! `--input FILE.fir` parses a textual frost IR module (see
//! docs/IR_REFERENCE.md), verifies it, exhaustively checks every
//! `@f` / `@f.tgt` refinement pair, optimizes the remaining functions
//! with the fixed O2 pipeline (translation-validating the result), and
//! prints the canonical form. Exit 1 on parse/verifier errors — with a
//! caret-underlined excerpt — never on an UNSOUND verdict.
//!
//! Experiments: fig6, compile-time, memory, objsize, optfuzz,
//! inconsistencies, widening, loadwiden, queens, all (default),
//! roundtrip (explicit-only: the print→parse→`FunctionKey`
//! roundtrip-fidelity gate over the full §6 corpus plus a `--fuzz`-sized
//! random sample), and sweep (explicit-only: the full unsampled §6
//! exhaustive sweep; `--checkpoint` makes it resumable across restarts,
//! `--seconds`/`--budget` bound one run, `--prune` enumerates only
//! canonical live functions, `--shards K --shard-id I` runs one
//! residue class of a K-process campaign, `--merge FILE` (repeated)
//! folds per-shard checkpoints into the whole-space summary instead of
//! sweeping, and `--bench-json FILE` writes a machine-readable
//! benchmark record).
//!
//! Observability (see docs/OBSERVABILITY.md): `--trace` records every
//! span of the run, writes the JSONL artifact to `telemetry.jsonl` (or
//! `$FROST_TRACE_FILE`), validates it, and prints a top-k profile
//! table. `--counters` prints the counter deltas the run produced.
//! `--validate-trace FILE` checks an existing artifact against the
//! schema and exits (0 valid, 1 malformed). The `FROST_TRACE` env var
//! also enables tracing, for processes whose flags you don't control.

use frost_bench::{counters_table, experiments, profile_table};

/// Rows shown by the `--trace` profile table.
const PROFILE_TOP_K: usize = 15;

fn validate_trace_file(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match frost_telemetry::validate_jsonl(&text) {
        Ok(stats) => {
            println!(
                "{path}: valid ({} lines: {} starts, {} stops, {} points, {} bench, \
                 {} unmatched, {} span keys)",
                stats.lines,
                stats.starts,
                stats.stops,
                stats.points,
                stats.bench,
                stats.unmatched,
                stats.by_key.len()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{path}: malformed telemetry: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    frost_telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut quick = false;
    let mut budget = 400usize;
    let mut budget_given = false;
    let mut insts = 2usize;
    let mut seconds: Option<u64> = None;
    let mut checkpoint: Option<String> = None;
    let mut trace = false;
    let mut counters = false;
    let mut fuzz = 10_000usize;
    let mut input: Option<String> = None;
    let mut prune = false;
    let mut shards = 1usize;
    let mut shard_id = 0usize;
    let mut merge: Vec<std::path::PathBuf> = Vec::new();
    let mut bench_json: Option<String> = None;
    let mut mem = false;
    let mut guards = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--input" => {
                i += 1;
                input = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--input needs a .fir file");
                    std::process::exit(2);
                }));
            }
            "--fuzz" => {
                i += 1;
                fuzz = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fuzz needs a number");
                    std::process::exit(2);
                });
            }
            "--experiment" | "-e" => {
                i += 1;
                experiment = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--experiment needs a value");
                    std::process::exit(2);
                });
            }
            "--quick" | "-q" => quick = true,
            "--budget" | "-b" => {
                i += 1;
                budget = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--budget needs a number");
                    std::process::exit(2);
                });
                if budget == 0 {
                    eprintln!("--budget must be at least 1");
                    std::process::exit(2);
                }
                budget_given = true;
            }
            "--insts" => {
                i += 1;
                insts = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--insts needs a number");
                    std::process::exit(2);
                });
                if insts == 0 {
                    eprintln!("--insts must be at least 1");
                    std::process::exit(2);
                }
            }
            "--seconds" => {
                i += 1;
                seconds = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seconds needs a number");
                    std::process::exit(2);
                }));
            }
            "--checkpoint" => {
                i += 1;
                checkpoint = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--checkpoint needs a file");
                    std::process::exit(2);
                }));
            }
            "--prune" => prune = true,
            "--mem" => mem = true,
            "--guards" => guards = true,
            "--shards" => {
                i += 1;
                shards = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs a number");
                    std::process::exit(2);
                });
                if shards == 0 {
                    eprintln!("--shards must be at least 1");
                    std::process::exit(2);
                }
            }
            "--shard-id" => {
                i += 1;
                shard_id = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shard-id needs a number");
                    std::process::exit(2);
                });
            }
            "--merge" => {
                i += 1;
                merge.push(args.get(i).cloned().map(Into::into).unwrap_or_else(|| {
                    eprintln!("--merge needs a checkpoint file (repeat for each shard)");
                    std::process::exit(2);
                }));
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--bench-json needs a file");
                    std::process::exit(2);
                }));
            }
            "--trace" => trace = true,
            "--counters" => counters = true,
            "--validate-trace" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--validate-trace needs a file");
                    std::process::exit(2);
                };
                validate_trace_file(path);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment fig6|compile-time|memory|objsize|optfuzz|\
                     inconsistencies|widening|loadwiden|queens|roundtrip|sweep|all] [--quick] \
                     [--budget N]\n\
                     \x20            [--insts N] [--seconds N] [--checkpoint FILE] [--fuzz N]\n\
                     \x20            [--prune] [--shards K] [--shard-id I] [--merge FILE]...\n\
                     \x20            [--bench-json FILE]\n\
                     \x20            [--trace] [--counters] [--validate-trace FILE]\n\
                     \x20      repro --input FILE.fir\n\
                     \n\
                     --input FILE.fir  parse, verify, check @f/@f.tgt refinement pairs,\n\
                     \x20                 optimize + translation-validate the rest, print the\n\
                     \x20                 canonical form (exit 1 only on parse/verify errors)\n\
                     --fuzz N          roundtrip only: random-sample size (default 10000)\n\
                     --trace           record spans, write + validate telemetry.jsonl\n\
                     \x20                 (or $FROST_TRACE_FILE), print a profile table\n\
                     --counters        print the counter deltas of the run\n\
                     --validate-trace  check an existing telemetry.jsonl and exit\n\
                     \n\
                     sweep only (not part of 'all' — the full unsampled §6 space):\n\
                     --insts N         instructions per generated function (default 2)\n\
                     --seconds N       wall-clock deadline; checkpoint + resume to continue\n\
                     --budget N        max functions this run (default: unbounded for sweep)\n\
                     --checkpoint F    load cursor from F if it exists, save it on exit\n\
                     \x20                 (with --merge: where the merged artifact lands)\n\
                     --prune           enumerate only canonical live functions (skip\n\
                     \x20                 commutative mirrors, const-position mirrors, dead\n\
                     \x20                 intermediates; arithmetic domain only)\n\
                     --mem             sweep the §5 memory domain instead: tiny\n\
                     \x20                 alloca/load/store/gep/ptrtoint/inttoptr programs,\n\
                     \x20                 each over every initial memory content, against the\n\
                     \x20                 fixed alias-aware GVN\n\
                     --guards          sweep the guarded domain instead: assume over raw,\n\
                     \x20                 compared, and frozen facts (poison included),\n\
                     \x20                 against the fixed assume-simplify + guard-dce band\n\
                     --shards K        partition the space over K worker processes\n\
                     --shard-id I      which residue class this process sweeps (0-based)\n\
                     --merge F         fold per-shard checkpoints (repeat per shard) into\n\
                     \x20                 the whole-space summary instead of sweeping\n\
                     --bench-json F    write a one-line machine-readable benchmark record"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if shard_id >= shards {
        eprintln!("--shard-id {shard_id} out of range for --shards {shards}");
        std::process::exit(2);
    }

    if let Some(path) = input {
        match frost_bench::run_input(&path) {
            Ok(report) => {
                println!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    if trace {
        frost_telemetry::enable(frost_telemetry::TraceFormat::Jsonl);
        frost_telemetry::drain();
    }
    let before = counters.then(frost_telemetry::snapshot);

    let mut matched = false;
    let mut run = |name: &str| -> bool {
        let hit = experiment == "all" || experiment == name;
        matched |= hit;
        hit
    };
    let mut failures = 0;
    let mut print = |r: Result<frost_bench::Table, frost_core::FrostError>| match r {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            failures += 1;
        }
    };

    if run("inconsistencies") {
        println!("{}", experiments::inconsistencies());
    }
    if run("optfuzz") {
        println!("{}", experiments::optfuzz(budget));
    }
    // Explicit-only: minutes of work, meant for ci.sh and releases.
    if experiment == "roundtrip" && run("roundtrip") {
        match experiments::roundtrip(fuzz, quick) {
            Ok((t, summary)) => {
                println!("{t}");
                println!("{summary}");
            }
            Err(e) => print(Err(e)),
        }
    }
    // Explicit-only: the full space is too large for the `all` sweep.
    if experiment == "sweep" && run("sweep") {
        // With --merge files the coordinator folds per-shard
        // checkpoints instead of sweeping; --checkpoint then names
        // where the merged artifact lands.
        let result = if merge.is_empty() {
            experiments::sweep(
                insts,
                budget_given.then_some(budget),
                seconds,
                checkpoint.as_deref().map(std::path::Path::new),
                prune,
                (shards > 1).then_some((shard_id, shards)),
                bench_json.as_deref().map(std::path::Path::new),
                mem,
                guards,
            )
        } else {
            experiments::sweep_merge(&merge, checkpoint.as_deref().map(std::path::Path::new))
        };
        match result {
            Ok((t, summary)) => {
                println!("{t}");
                println!("{summary}");
            }
            Err(e) => print(Err(e)),
        }
    }
    if run("widening") {
        print(experiments::widening());
    }
    if run("loadwiden") {
        print(experiments::loadwiden());
    }
    if run("queens") {
        print(experiments::queens_anecdote());
    }
    if run("fig6") {
        print(experiments::fig6(quick));
    }
    if run("compile-time") {
        print(experiments::compile_time(quick));
    }
    if run("memory") {
        print(experiments::memory(quick));
    }
    if run("objsize") {
        print(experiments::objsize(quick));
    }
    if !matched {
        eprintln!("unknown experiment '{experiment}' (try --help)");
        std::process::exit(2);
    }

    if let Some(before) = before {
        println!(
            "{}",
            counters_table(&frost_telemetry::snapshot().delta(&before))
        );
    }
    if trace {
        let events = frost_telemetry::drain();
        let jsonl = frost_telemetry::render_jsonl(&events);
        let path =
            std::env::var("FROST_TRACE_FILE").unwrap_or_else(|_| "telemetry.jsonl".to_string());
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        match frost_telemetry::validate_jsonl(&jsonl) {
            Ok(stats) => {
                println!("{}", profile_table(&stats, PROFILE_TOP_K));
                println!(
                    "wrote {path}: {} events ({} dropped by the ring buffer)",
                    stats.lines,
                    frost_telemetry::dropped_events()
                );
            }
            Err(e) => {
                eprintln!("internal error: emitted malformed telemetry: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
