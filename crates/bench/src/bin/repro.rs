//! Regenerates the paper's tables and figures. Usage:
//!
//! ```text
//! repro [--experiment NAME] [--quick] [--budget N]
//! ```
//!
//! Experiments: fig6, compile-time, memory, objsize, optfuzz,
//! inconsistencies, widening, loadwiden, queens, all (default).

use frost_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut quick = false;
    let mut budget = 400usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                i += 1;
                experiment = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--experiment needs a value");
                    std::process::exit(2);
                });
            }
            "--quick" | "-q" => quick = true,
            "--budget" | "-b" => {
                i += 1;
                budget = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--budget needs a number");
                    std::process::exit(2);
                });
                if budget == 0 {
                    eprintln!("--budget must be at least 1");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment fig6|compile-time|memory|objsize|optfuzz|\
                     inconsistencies|widening|loadwiden|queens|all] [--quick] [--budget N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut matched = false;
    let mut run = |name: &str| -> bool {
        let hit = experiment == "all" || experiment == name;
        matched |= hit;
        hit
    };
    let mut failures = 0;
    let mut print = |r: Result<frost_bench::Table, frost_core::FrostError>| match r {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            failures += 1;
        }
    };

    if run("inconsistencies") {
        println!("{}", experiments::inconsistencies());
    }
    if run("optfuzz") {
        println!("{}", experiments::optfuzz(budget));
    }
    if run("widening") {
        print(experiments::widening());
    }
    if run("loadwiden") {
        print(experiments::loadwiden());
    }
    if run("queens") {
        print(experiments::queens_anecdote());
    }
    if run("fig6") {
        print(experiments::fig6(quick));
    }
    if run("compile-time") {
        print(experiments::compile_time(quick));
    }
    if run("memory") {
        print(experiments::memory(quick));
    }
    if run("objsize") {
        print(experiments::objsize(quick));
    }
    if !matched {
        eprintln!("unknown experiment '{experiment}' (try --help)");
        std::process::exit(2);
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
