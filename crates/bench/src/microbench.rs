//! A dependency-free micro-benchmark runner.
//!
//! The `benches/` entry points use this instead of an external harness:
//! each bench is a plain binary (`harness = false`) that times closures
//! with [`Runner::bench`] and prints one line per case. Statistics are
//! deliberately simple — warm up, take N wall-clock samples, report
//! best / median / mean — which is plenty for the relative comparisons
//! the paper's evaluation makes (legacy vs fixed, sequential vs
//! parallel).
//!
//! Sample count comes from `FROST_BENCH_SAMPLES` (default 10).

use std::time::{Duration, Instant};

/// Timing summary of one benched case.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Case name as printed.
    pub name: String,
    /// Samples taken.
    pub samples: usize,
    /// Fastest sample.
    pub best: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} best {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            self.name, self.best, self.median, self.mean, self.samples
        )
    }
}

/// Runs and prints micro-benchmarks.
pub struct Runner {
    samples: usize,
}

impl Runner {
    /// A runner honoring `FROST_BENCH_SAMPLES` (default 10).
    pub fn new() -> Runner {
        let samples = std::env::var("FROST_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        Runner { samples }
    }

    /// A runner with a fixed sample count (tests).
    pub fn with_samples(samples: usize) -> Runner {
        Runner {
            samples: samples.max(1),
        }
    }

    /// Times `f` (after one warm-up call), prints the summary line, and
    /// returns it. The closure's result is returned through a black-box
    /// sink so the work is not optimized away.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        sink(f()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            sink(f());
            times.push(t0.elapsed());
        }
        times.sort();
        let best = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let r = BenchResult {
            name: name.to_string(),
            samples: self.samples,
            best,
            median,
            mean,
        };
        println!("{r}");
        r
    }
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new()
    }
}

/// An opaque consumer the optimizer cannot see through.
fn sink<T>(v: T) -> T {
    // A volatile read of the value's address pins it as observed.
    unsafe { std::ptr::read_volatile(&&v) };
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let r = Runner::with_samples(3).bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(r.samples, 3);
        assert!(r.best <= r.median && r.median <= r.mean * 2);
        assert!(r.best > Duration::ZERO);
    }
}
