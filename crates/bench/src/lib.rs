//! # frost-bench
//!
//! The evaluation harness: regenerates every table and figure of
//! *"Taming Undefined Behavior in LLVM"* (PLDI 2017, §6–§7) against the
//! frost implementation. See DESIGN.md's per-experiment index (E1–E9)
//! for the mapping from paper artifact to module, and EXPERIMENTS.md
//! for paper-vs-measured results.
//!
//! The `repro` binary prints the tables:
//!
//! ```text
//! repro --experiment fig6          # Figure 6 (run time)
//! repro --experiment all --quick   # everything, reduced sizes
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod input;
pub mod microbench;
pub mod profile;
pub mod table;

pub use harness::{compile_workload, pct_improvement, run_workload, RunMetrics};
pub use input::{run_input, run_input_text, InputError};
pub use microbench::{BenchResult, Runner};
pub use profile::{counters_table, profile_table};
pub use table::Table;
