//! The compile-and-simulate harness shared by all experiments: mini-C →
//! frost IR → mid-end pipeline (legacy / fixed / freeze-blind) →
//! backend → machine simulation, with every §7.2 metric collected along
//! the way.

use std::time::Instant;

use frost_backend::{compile_module, module_size, CostModel, Simulator, MEM_BASE};
use frost_cc::CodegenOptions;
use frost_core::FrostError;
use frost_ir::{Module, ModuleAnalysisManager};
use frost_opt::{o2_pipeline, PassManager, PipelineMode};
use frost_workloads::{ArgSpec, Workload};

/// Everything measured for one (workload, mode, machine) cell.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Simulated cycles (the "run time").
    pub cycles: u64,
    /// Dynamic instructions.
    pub dyn_insts: u64,
    /// The program's result (used to check cross-mode agreement).
    pub result: Option<u64>,
    /// Object size in bytes.
    pub obj_bytes: usize,
    /// IR instructions after optimization.
    pub ir_insts: usize,
    /// `freeze` instructions after optimization.
    pub freezes: usize,
    /// Wall-clock compile time (frontend + mid-end + backend).
    pub compile_ns: u128,
    /// Peak IR heap estimate during compilation.
    pub peak_ir_bytes: usize,
}

/// Frontend options matching a pipeline mode: the legacy world has no
/// freeze anywhere; both fixed modes use the §5.3 lowering.
pub fn frontend_options(mode: PipelineMode) -> CodegenOptions {
    CodegenOptions {
        freeze_bitfields: mode.uses_freeze(),
        emit_wrap_flags: true,
    }
}

/// Compiles a workload through the full pipeline in the given mode.
///
/// # Errors
///
/// Returns a [`FrostError::Stage`] naming the failing stage (a workload
/// regression).
pub fn compile_workload(
    w: &Workload,
    mode: PipelineMode,
) -> Result<(Module, u128, usize), FrostError> {
    compile_workload_with(
        w,
        mode,
        &o2_pipeline(mode),
        &mut ModuleAnalysisManager::new(),
    )
}

/// [`compile_workload`] with a caller-supplied pipeline and analysis
/// manager, for callers that compile the same workload repeatedly (the
/// §7.2 best-of-9 timing loop): the pipeline's telemetry handles are
/// resolved once, and analyses cached in `mam` are reused across passes
/// within each run rather than recomputed.
///
/// # Errors
///
/// Returns a [`FrostError::Stage`] naming the failing stage (a workload
/// regression).
pub fn compile_workload_with(
    w: &Workload,
    mode: PipelineMode,
    pipeline: &PassManager,
    mam: &mut ModuleAnalysisManager,
) -> Result<(Module, u128, usize), FrostError> {
    let t0 = Instant::now();
    let mut module = w
        .compile(&frontend_options(mode))
        .map_err(|e| FrostError::stage("frontend", w.name, e))?;
    let mut peak = module.approx_bytes();
    pipeline.run_with(&mut module, mam);
    peak = peak.max(module.approx_bytes());
    let compile_ns = t0.elapsed().as_nanos();
    Ok((module, compile_ns, peak))
}

/// Runs a workload end to end and collects all metrics.
///
/// # Errors
///
/// Returns a [`FrostError::Stage`] on compile or simulation failure.
pub fn run_workload(
    w: &Workload,
    mode: PipelineMode,
    cost: CostModel,
) -> Result<RunMetrics, FrostError> {
    let (module, compile_front_ns, peak) = compile_workload(w, mode)?;
    let t0 = Instant::now();
    let mm = compile_module(&module).map_err(|e| FrostError::stage("backend", w.name, e))?;
    let backend_ns = t0.elapsed().as_nanos();

    let mut sim = Simulator::new(&mm, cost, w.mem_bytes as usize);
    sim.mem.copy_from_slice(&w.init_memory());
    let args: Vec<u64> = w
        .args
        .iter()
        .map(|a| match a {
            ArgSpec::Int(v) => *v,
            ArgSpec::Ptr(off) => MEM_BASE + u64::from(*off),
        })
        .collect();
    let run = sim
        .run(w.entry, &args)
        .map_err(|e| FrostError::stage("simulation", format!("{} ({})", w.name, cost.name), e))?;

    Ok(RunMetrics {
        cycles: run.cycles,
        dyn_insts: run.insts,
        result: run.ret,
        obj_bytes: module_size(&mm),
        ir_insts: module.inst_count(),
        freezes: module.freeze_count(),
        compile_ns: compile_front_ns + backend_ns,
        peak_ir_bytes: peak,
    })
}

/// Percentage change `(baseline - new) / baseline * 100` — positive
/// means the new configuration is faster/smaller, matching Figure 6's
/// sign convention ("positive values indicate that performance
/// improved").
pub fn pct_improvement(baseline: u64, new: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (baseline as f64 - new as f64) / baseline as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queens_runs_in_every_mode_with_matching_results() {
        let w = frost_workloads::queens();
        let mut results = Vec::new();
        for mode in [
            PipelineMode::Legacy,
            PipelineMode::Fixed,
            PipelineMode::FixedFreezeBlind,
        ] {
            let m = run_workload(&w, mode, CostModel::machine1()).unwrap();
            // 8-queens has 92 solutions; the kernel sums 3 repetitions.
            assert_eq!(m.result, Some(92 * 3), "mode {mode:?}");
            results.push(m.cycles);
        }
        assert!(results.iter().all(|&c| c > 0));
    }

    #[test]
    fn pct_signs() {
        assert!(pct_improvement(100, 90) > 0.0);
        assert!(pct_improvement(100, 110) < 0.0);
        assert_eq!(pct_improvement(0, 10), 0.0);
    }
}
