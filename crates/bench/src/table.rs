//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A rendered experiment result.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title (e.g. "Figure 6: run-time change (%)").
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "-12.5".into()]);
        t.note("a footnote");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        assert!(s.contains("note: a footnote"));
        // Header and rows aligned: 'value' column starts at same offset.
        let lines: Vec<&str> = s.lines().collect();
        let hpos = lines[1].find("value").unwrap();
        let rpos = lines[3].find('1').unwrap();
        assert_eq!(hpos, rpos);
    }
}
