//! The `repro --input <file.fir>` driver: check, optimize, and
//! validate a *textual* IR module.
//!
//! This is the first externally-drivable entry point of the checker —
//! a module no Rust code constructed flows through the same pipeline
//! the §6/§7 experiments use:
//!
//! 1. parse (`frost_ir::text`), reporting caret-underlined
//!    [`ParseError`]s on malformed input;
//! 2. verify (legacy mode, so `undef`-bearing modules are admitted);
//! 3. for every pair `@f` / `@f.tgt`, run an exhaustive refinement
//!    check `@f ⊑ @f.tgt` — the way the §5.4 load-widening examples
//!    under `examples/*.fir` express a proposed transformation;
//! 4. for every other function, apply the fixed O2 pipeline and
//!    translation-validate the result against the original;
//! 5. print the canonical form of the optimized module.
//!
//! Soundness verdicts (including `UNSOUND`) are *results*, not errors:
//! the driver only fails on I/O, parse, or verifier problems.

use std::fmt::Write as _;

use frost_core::Semantics;
use frost_ir::{module_to_string, parse_module, verify_module, Module, ParseError, VerifyMode};
use frost_opt::{o2_pipeline, PipelineMode};
use frost_refine::{check_refinement, CheckOptions, CheckResult, InputOptions};

/// Why `--input` failed (verdicts are not failures; see module docs).
#[derive(Debug)]
pub enum InputError {
    /// The file could not be read.
    Io(String),
    /// The module did not parse; the payload renders the
    /// caret-underlined excerpt.
    Parse(ParseError),
    /// The module parsed but failed the verifier.
    Verify(Vec<String>),
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputError::Io(e) => write!(f, "{e}"),
            InputError::Parse(e) => write!(f, "{e}"),
            InputError::Verify(errs) => {
                write!(f, "module failed to verify:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for InputError {}

/// The suffix that marks a function as the proposed-transformation
/// target of its unsuffixed partner.
const TGT_SUFFIX: &str = ".tgt";

fn verdict_line(r: &CheckResult) -> String {
    match r {
        CheckResult::Refines => "sound".into(),
        CheckResult::CounterExample(ce) => {
            format!("UNSOUND — {}", ce.to_string().replace('\n', "\n      "))
        }
        CheckResult::Inconclusive(why) => format!("inconclusive: {why}"),
    }
}

/// Runs the full `--input` pipeline on already-loaded source text.
/// `name` is only used in the report header.
///
/// # Errors
///
/// Returns [`InputError`] on parse or verifier failure (never on an
/// unsound verdict).
pub fn run_input_text(name: &str, src: &str) -> Result<String, InputError> {
    let module = parse_module(src).map_err(InputError::Parse)?;
    verify_module(&module, VerifyMode::Legacy).map_err(InputError::Verify)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "module {name}: {} function(s), {} declaration(s)",
        module.functions.len(),
        module.declarations.len()
    );
    let proposed_clean = verify_module(&module, VerifyMode::Proposed).is_ok();
    let _ = writeln!(
        out,
        "verify: ok ({})",
        if proposed_clean {
            "proposed mode"
        } else {
            "legacy mode — module uses undef"
        }
    );

    // Split the module into explicit src/tgt refinement pairs and
    // plain functions to push through the optimizer.
    let names: Vec<String> = module.functions.iter().map(|f| f.name.clone()).collect();
    let pairs: Vec<String> = names
        .iter()
        .filter(|n| names.iter().any(|m| *m == format!("{n}{TGT_SUFFIX}")))
        .cloned()
        .collect();
    let opts = CheckOptions::new(Semantics::proposed())
        .with_inputs(InputOptions::new().with_bytes_per_pointer(4));

    if !pairs.is_empty() {
        let _ = writeln!(
            out,
            "\nrefinement pairs (@f -> @f{TGT_SUFFIX}, proposed semantics, 4 bytes/pointer):"
        );
        for name in &pairs {
            let tgt = format!("{name}{TGT_SUFFIX}");
            let verdict = check_refinement(&module, name, &module, &tgt, &opts);
            let _ = writeln!(out, "  @{name} -> @{tgt}: {}", verdict_line(&verdict));
        }
    }

    let plain: Vec<String> = names
        .iter()
        .filter(|n| !pairs.contains(n) && !n.ends_with(TGT_SUFFIX))
        .cloned()
        .collect();
    let mut optimized: Module = module.clone();
    if !plain.is_empty() {
        let pm = o2_pipeline(PipelineMode::Fixed);
        pm.run(&mut optimized);
        let _ = writeln!(
            out,
            "\noptimized (fixed O2 pipeline, translation-validated):"
        );
        for name in &plain {
            let before = module.function(name).expect("name from module");
            let after = optimized.function(name).expect("name survives O2");
            let verdict = check_refinement(&module, name, &optimized, name, &opts);
            let _ = writeln!(
                out,
                "  @{name}: insts {} -> {}, {}",
                before.placed_inst_count(),
                after.placed_inst_count(),
                verdict_line(&verdict)
            );
        }
    }

    let _ = writeln!(out, "\n; canonical form after optimization");
    let _ = write!(out, "{}", module_to_string(&optimized));
    Ok(out)
}

/// Reads `path` and runs [`run_input_text`] on its contents.
///
/// # Errors
///
/// Returns [`InputError`] if the file cannot be read, does not parse,
/// or does not verify.
pub fn run_input(path: &str) -> Result<String, InputError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| InputError::Io(format!("cannot read {path}: {e}")))?;
    run_input_text(path, &src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_refinement_pair_verdicts() {
        let src = "\
define i2 @f(i2 %x) {\nentry:\n  %a = add nsw i2 %x, 1\n  ret i2 %a\n}\n\
define i2 @f.tgt(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}\n";
        let report = run_input_text("pair.fir", src).unwrap();
        assert!(report.contains("@f -> @f.tgt: sound"), "{report}");
    }

    #[test]
    fn reports_unsound_pairs_without_failing() {
        // Dropping nsw is sound; *adding* nsw is not.
        let src = "\
define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}\n\
define i2 @f.tgt(i2 %x) {\nentry:\n  %a = add nsw i2 %x, 1\n  ret i2 %a\n}\n";
        let report = run_input_text("pair.fir", src).unwrap();
        assert!(report.contains("@f -> @f.tgt: UNSOUND"), "{report}");
    }

    #[test]
    fn optimizes_and_validates_plain_functions() {
        let src = "define i2 @g(i2 %x) {\nentry:\n  %a = add i2 %x, 0\n  ret i2 %a\n}\n";
        let report = run_input_text("plain.fir", src).unwrap();
        assert!(report.contains("@g: insts 1 -> 0, sound"), "{report}");
        assert!(report.contains("canonical form"), "{report}");
    }

    #[test]
    fn parse_failures_render_carets() {
        let err =
            run_input_text("bad.fir", "define i2 @f() {\nentry:\n  ret i2 %nope\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown local"), "{msg}");
        assert!(msg.contains("^^^^^"), "{msg}");
    }
}
