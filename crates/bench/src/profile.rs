//! Rendering telemetry into report tables.
//!
//! Turns the two telemetry surfaces — a validated `telemetry.jsonl`
//! artifact ([`JsonlStats`]) and a counter-registry delta
//! ([`Snapshot`]) — into the same plain-text [`Table`]s the experiment
//! harness prints, so a `repro --trace` run ends with a profile of
//! where the time went. The span keys follow the contract in
//! docs/OBSERVABILITY.md: `opt.pass.run` spans are split per pass as
//! `opt.pass.run[instcombine]` etc., so the top-k rows read directly as
//! a per-pass profile.

use frost_telemetry::{JsonlStats, Snapshot};

use crate::table::Table;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The top-`k` span keys of a validated trace by total duration: one
/// row per key with completion count, total/mean/max latency, and the
/// share of the summed span time. Point-only keys (no completed spans)
/// are skipped.
pub fn profile_table(stats: &JsonlStats, k: usize) -> Table {
    let mut keys: Vec<(&String, &frost_telemetry::SpanStats)> =
        stats.by_key.iter().filter(|(_, s)| s.count > 0).collect();
    keys.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    let grand_total: u64 = keys.iter().map(|(_, s)| s.total_ns).sum();

    let mut t = Table::new(
        format!("Profile: top {} spans by total time", k.min(keys.len())),
        &["span", "count", "total", "mean", "max", "share"],
    );
    for (name, s) in keys.iter().take(k) {
        let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
        let share = if grand_total > 0 {
            100.0 * s.total_ns as f64 / grand_total as f64
        } else {
            0.0
        };
        t.row(vec![
            (*name).clone(),
            s.count.to_string(),
            fmt_ns(s.total_ns),
            fmt_ns(mean),
            fmt_ns(s.max_ns),
            format!("{share:.1}%"),
        ]);
    }
    if keys.len() > k {
        t.note(format!("{} further spans omitted", keys.len() - k));
    }
    t.note(format!(
        "{} events: {} starts, {} stops, {} points, {} unmatched",
        stats.lines, stats.starts, stats.stops, stats.points, stats.unmatched
    ));
    t
}

/// Every counter and histogram of a [`Snapshot`] (typically a
/// [`Snapshot::delta`] over a metered region), one row each. Gauges are
/// rendered with their last value.
pub fn counters_table(snap: &Snapshot) -> Table {
    let mut t = Table::new("Counters", &["name", "value"]);
    for (name, v) in &snap.counters {
        t.row(vec![name.clone(), v.to_string()]);
    }
    for (name, v) in &snap.gauges {
        t.row(vec![name.clone(), format!("{v} (gauge)")]);
    }
    for (name, h) in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        t.row(vec![
            name.clone(),
            format!(
                "n={} mean={} p99~{}",
                h.count,
                fmt_ns(h.mean() as u64),
                fmt_ns(h.approx_quantile(0.99))
            ),
        ]);
    }
    if t.rows.is_empty() {
        t.note("no metrics changed in the measured region");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_ranks_by_total_and_reports_share() {
        let jsonl = [
            r#"{"ev":"start","span":1,"name":"a.b.c","tid":1,"ts_ns":0}"#,
            r#"{"ev":"stop","span":1,"name":"a.b.c","tid":1,"ts_ns":100,"dur_ns":100}"#,
            r#"{"ev":"start","span":2,"name":"x.y.z","tid":1,"ts_ns":100}"#,
            r#"{"ev":"stop","span":2,"name":"x.y.z","tid":1,"ts_ns":400,"dur_ns":300}"#,
        ]
        .join("\n");
        let stats = frost_telemetry::validate_jsonl(&jsonl).unwrap();
        let t = profile_table(&stats, 10);
        assert_eq!(t.rows[0][0], "x.y.z", "largest total first");
        assert_eq!(t.rows[0][5], "75.0%");
        assert_eq!(t.rows[1][0], "a.b.c");
    }

    #[test]
    fn profile_splits_passes_and_truncates() {
        let jsonl = [
            r#"{"ev":"start","span":1,"name":"opt.pass.run","tid":1,"ts_ns":0}"#,
            r#"{"ev":"stop","span":1,"name":"opt.pass.run","tid":1,"ts_ns":9,"dur_ns":9,"pass":"dce"}"#,
            r#"{"ev":"start","span":2,"name":"opt.pass.run","tid":1,"ts_ns":9}"#,
            r#"{"ev":"stop","span":2,"name":"opt.pass.run","tid":1,"ts_ns":10,"dur_ns":1,"pass":"gvn"}"#,
        ]
        .join("\n");
        let stats = frost_telemetry::validate_jsonl(&jsonl).unwrap();
        let t = profile_table(&stats, 1);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0], "opt.pass.run[dce]");
        assert!(t.notes.iter().any(|n| n.contains("1 further")));
    }

    #[test]
    fn counters_table_lists_deltas() {
        let c = frost_telemetry::counter("bench.profile.test.counter");
        let before = frost_telemetry::snapshot();
        c.add(7);
        let delta = frost_telemetry::snapshot().delta(&before);
        let t = counters_table(&delta);
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == "bench.profile.test.counter" && r[1] == "7"));
    }
}
