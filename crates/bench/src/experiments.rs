//! One function per table/figure of the paper's evaluation (see
//! DESIGN.md's per-experiment index E1–E9). Each returns a rendered
//! [`Table`]; `repro` prints them.

use std::path::{Path, PathBuf};
use std::time::Duration;

use frost_backend::{compile_module, lea_base_registers, CostModel, Simulator, MEM_BASE};
use frost_core::{Engine, FrostError, Semantics};
use frost_fuzz::{
    enumerate_functions, random_functions, Campaign, CampaignCheckpoint, GenConfig, Pruning,
    ValidationReport,
};
use frost_ir::{check_roundtrip, parse_module, Function, Module, ModuleAnalysisManager};
use frost_opt::{
    o2_pipeline, Dce, Gvn, Licm, LoopUnswitch, Pass, PipelineMode, Reassociate, Sccp, SimplifyCfg,
};
use frost_refine::{check_refinement, CheckOptions, CheckResult, InputOptions};
use frost_workloads::{all_workloads, spec_cfp, spec_cint, Workload};

use crate::harness::{compile_workload, pct_improvement, run_workload, RunMetrics};
use crate::table::Table;

fn fmt_pct(v: f64) -> String {
    format!("{v:+.2}%")
}

/// E1 / Figure 6: run-time change (%) for the SPEC-shaped suites on
/// both machine models, freeze prototype vs legacy baseline.
pub fn fig6(quick: bool) -> Result<Table, FrostError> {
    let mut t = Table::new(
        "Figure 6: SPEC CPU 2006 run-time change (%) — freeze prototype vs baseline",
        &[
            "benchmark",
            "suite",
            "machine1",
            "machine2",
            "blind m1",
            "result match",
        ],
    );
    let mut workloads: Vec<Workload> = spec_cint();
    workloads.extend(spec_cfp());
    if quick {
        workloads.truncate(4);
    }
    for w in &workloads {
        let base1 = run_workload(w, PipelineMode::Legacy, CostModel::machine1())?;
        let new1 = run_workload(w, PipelineMode::Fixed, CostModel::machine1())?;
        let blind1 = run_workload(w, PipelineMode::FixedFreezeBlind, CostModel::machine1())?;
        let base2 = run_workload(w, PipelineMode::Legacy, CostModel::machine2())?;
        let new2 = run_workload(w, PipelineMode::Fixed, CostModel::machine2())?;
        let ok = base1.result == new1.result && base1.result == blind1.result;
        t.row(vec![
            w.name.to_string(),
            w.suite.name().to_string(),
            fmt_pct(pct_improvement(base1.cycles, new1.cycles)),
            fmt_pct(pct_improvement(base2.cycles, new2.cycles)),
            fmt_pct(pct_improvement(base1.cycles, blind1.cycles)),
            if ok { "yes".into() } else { "MISMATCH".into() },
        ]);
    }
    t.note("positive = prototype faster (the paper reports ±1.6%)");
    t.note("'blind' = freeze emitted but passes not yet freeze-aware (§7.2's measured state)");
    Ok(t)
}

/// E2 / §7.2 compile time: wall-clock compilation change, with the
/// "Shootout nestedloop" jump-threading outlier.
pub fn compile_time(quick: bool) -> Result<Table, FrostError> {
    let mut t = Table::new(
        "§7.2 compile time: freeze prototype vs baseline (best of 9, warmed)",
        &["benchmark", "suite", "fixed Δ%", "blind Δ%"],
    );
    let mut workloads = all_workloads();
    if quick {
        workloads.retain(|w| w.suite == frost_workloads::Suite::Lnt);
        workloads.truncate(6);
    }
    let best_of = |w: &Workload, mode: PipelineMode| -> Result<u128, FrostError> {
        // Warm up once, then take the best of 9: single compilations
        // run in ~1 ms, so wall-clock jitter dominates raw samples.
        // The pipeline and analysis manager are hoisted so repeated
        // samples don't re-resolve telemetry handles.
        let pipeline = o2_pipeline(mode);
        let mut mam = ModuleAnalysisManager::new();
        let _ = crate::harness::compile_workload_with(w, mode, &pipeline, &mut mam)?;
        let mut best = u128::MAX;
        for _ in 0..9 {
            let (_, ns, _) = crate::harness::compile_workload_with(w, mode, &pipeline, &mut mam)?;
            best = best.min(ns);
        }
        Ok(best)
    };
    for w in &workloads {
        let base = best_of(w, PipelineMode::Legacy)?;
        let fixed = best_of(w, PipelineMode::Fixed)?;
        let blind = best_of(w, PipelineMode::FixedFreezeBlind)?;
        t.row(vec![
            w.name.to_string(),
            w.suite.name().to_string(),
            fmt_pct(pct_improvement(base as u64, fixed as u64)),
            fmt_pct(pct_improvement(base as u64, blind as u64)),
        ]);
    }
    t.note("negative = prototype compiles slower (paper: mostly ±1%, nestedloop +19% slower)");
    Ok(t)
}

/// E3 / §7.2 memory: peak IR working set during compilation.
pub fn memory(quick: bool) -> Result<Table, FrostError> {
    let mut t = Table::new(
        "§7.2 peak compiler memory (IR arena estimate)",
        &["benchmark", "baseline B", "fixed B", "Δ%"],
    );
    let mut workloads = all_workloads();
    if quick {
        workloads.truncate(8);
    }
    for w in &workloads {
        let (_, _, base) = crate::harness::compile_workload(w, PipelineMode::Legacy)?;
        let (_, _, fixed) = crate::harness::compile_workload(w, PipelineMode::Fixed)?;
        t.row(vec![
            w.name.to_string(),
            base.to_string(),
            fixed.to_string(),
            fmt_pct(pct_improvement(base as u64, fixed as u64)),
        ]);
    }
    t.note("paper: unchanged for most benchmarks, max +2% increase");
    Ok(t)
}

/// E4 / §7.2 object size and freeze counts.
pub fn objsize(quick: bool) -> Result<Table, FrostError> {
    let mut t = Table::new(
        "§7.2 object size and freeze counts",
        &[
            "benchmark",
            "base bytes",
            "fixed bytes",
            "Δ%",
            "freezes",
            "freeze % of IR",
        ],
    );
    let mut workloads = all_workloads();
    if quick {
        workloads.truncate(8);
    }
    for w in &workloads {
        let base = run_workload(w, PipelineMode::Legacy, CostModel::machine1())?;
        let fixed = run_workload(w, PipelineMode::Fixed, CostModel::machine1())?;
        let frac = if fixed.ir_insts > 0 {
            100.0 * fixed.freezes as f64 / fixed.ir_insts as f64
        } else {
            0.0
        };
        t.row(vec![
            w.name.to_string(),
            base.obj_bytes.to_string(),
            fixed.obj_bytes.to_string(),
            fmt_pct(pct_improvement(
                base.obj_bytes as u64,
                fixed.obj_bytes as u64,
            )),
            fixed.freezes.to_string(),
            format!("{frac:.2}%"),
        ]);
    }
    t.note("paper: size ±0.5%; freeze 0.04–0.06% of IR, gcc 0.29% (bit-fields)");
    Ok(t)
}

/// E5 / §6 "Testing the prototype": opt-fuzz × refinement checking,
/// run as parallel [`Campaign`]s sharing per-sweep outcome caches.
/// Every sweep runs twice — once pinned to the plan machine, once on
/// [`Engine::Auto`] (bit-sliced) — and must produce identical verdicts;
/// the two fn/s columns are the engine before/after.
pub fn optfuzz(budget: usize) -> Table {
    let mut t = Table::new(
        "§6 validation: exhaustive i2 functions × passes × refinement checking",
        &[
            "pass",
            "mode",
            "semantics",
            "functions",
            "changed",
            "violations",
            "inconclusive",
            "fn/s plan",
            "fn/s auto",
            "cache hit%",
            "engines agree",
        ],
    );
    struct Sweep {
        pass: &'static str,
        mode: PipelineMode,
        sem: Semantics,
        undef: bool,
    }
    let sweeps = [
        Sweep {
            pass: "instcombine",
            mode: PipelineMode::Fixed,
            sem: Semantics::proposed(),
            undef: false,
        },
        Sweep {
            pass: "instcombine",
            mode: PipelineMode::Legacy,
            sem: Semantics::legacy_gvn(),
            undef: true,
        },
        Sweep {
            pass: "gvn",
            mode: PipelineMode::Fixed,
            sem: Semantics::proposed(),
            undef: false,
        },
        Sweep {
            pass: "reassociate",
            mode: PipelineMode::Fixed,
            sem: Semantics::proposed(),
            undef: false,
        },
        Sweep {
            pass: "reassociate",
            mode: PipelineMode::Legacy,
            sem: Semantics::proposed(),
            undef: false,
        },
        Sweep {
            pass: "sccp",
            mode: PipelineMode::Fixed,
            sem: Semantics::proposed(),
            undef: false,
        },
        Sweep {
            pass: "o2",
            mode: PipelineMode::Fixed,
            sem: Semantics::proposed(),
            undef: false,
        },
    ];
    for c in sweeps {
        let mut cfg = GenConfig::arithmetic(2);
        if c.undef {
            cfg = cfg.with_undef();
        }
        let space = enumerate_functions(cfg.clone());
        let total_space = space.approx_size();
        let stride = (total_space / budget as u128).max(1) as usize;
        let fns: Vec<frost_ir::Function> = enumerate_functions(cfg)
            .step_by(stride)
            .take(budget)
            .collect();
        let mode = c.mode;
        // Hoisted out of the per-module closure: pipeline construction
        // resolves telemetry handles (a lock per pass), which would
        // otherwise run once per enumerated module on every worker.
        let pipeline = (c.pass == "o2").then(|| o2_pipeline(mode));
        let single: Option<Box<dyn Pass>> = match c.pass {
            "instcombine" => Some(Box::new(frost_opt::InstCombine::new(mode))),
            "gvn" => Some(Box::new(Gvn::new(mode))),
            "reassociate" => Some(Box::new(Reassociate::new(mode))),
            "sccp" => Some(Box::new(Sccp::new(mode))),
            _ => None,
        };
        let dce = Dce::new();
        let transform = |m: &mut Module| {
            // Per-module analysis manager: analyses computed by one pass
            // (GVN's dominator tree, say) are served from cache to the
            // loop passes downstream instead of being recomputed.
            let mut mam = ModuleAnalysisManager::new();
            if let Some(pm) = &pipeline {
                pm.run_with(m, &mut mam);
            } else if let Some(p) = &single {
                p.run_on_module(m, &mut mam);
            }
            for (i, f) in m.functions.iter_mut().enumerate() {
                let fam = mam.function(i);
                let pa = dce.run_on_function(f, fam);
                fam.invalidate(f, &pa);
                f.compact();
            }
        };
        let run = |engine: Engine| {
            Campaign::with_options(CheckOptions::new(c.sem).engine(engine))
                .run(fns.clone(), transform)
        };
        let plan = run(Engine::Plan);
        let auto = run(Engine::Auto);
        let agree = plan.total == auto.total
            && plan.changed == auto.changed
            && plan.violations == auto.violations
            && plan.inconclusive == auto.inconclusive;
        t.row(vec![
            c.pass.to_string(),
            format!("{:?}", c.mode),
            c.sem.name.to_string(),
            auto.total.to_string(),
            auto.changed.to_string(),
            auto.violations.len().to_string(),
            auto.inconclusive.to_string(),
            format!("{:.0}", plan.stats.functions_per_sec),
            format!("{:.0}", auto.stats.functions_per_sec),
            format!("{:.0}%", auto.stats.cache_hit_rate() * 100.0),
            if agree {
                "yes".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    t.note("fixed-mode campaigns must report 0 violations; legacy campaigns reproduce the §3 bugs");
    t.note("each sweep runs twice: 'fn/s plan' pins the plan machine, 'fn/s auto' bit-slices eligible functions");
    t.note("'engines agree' asserts byte-identical verdicts between the two runs");
    t
}

/// E10 / §6 full space: the complete, *unsampled* exhaustive sweep of
/// the i2 arithmetic space — what the paper calls "all LLVM functions
/// with \[n\] instructions" — run as a checkpointed
/// [`Campaign::run_exhaustive`] on [`Engine::Auto`], resumable across
/// process restarts via `--checkpoint`.
///
/// `prune` turns on [`Pruning::FULL`] generation-time pruning
/// (commutative-operand ordering, constant-position normalization,
/// dead-intermediate elimination); `shard` restricts this process to
/// one residue class `(shard_id, shards)` of a `K`-process campaign
/// whose per-shard checkpoints [`sweep_merge`] folds back together;
/// `bench_json` writes a one-line machine-readable benchmark record
/// (see docs/OBSERVABILITY.md) next to the human table.
///
/// `mem` switches the swept space from i2 arithmetic to the §5 memory
/// domain: [`GenConfig::memory`] programs (alloca / load / store / gep
/// / ptrtoint / inttoptr over one pointer parameter), each checked over
/// *every* initial memory content of the tiny address domain
/// (`InputOptions::with_memory_values`), against the fixed alias-aware
/// GVN instead of InstCombine. Pruning does not apply to the memory
/// domain (its liveness model covers integer templates only).
///
/// `guards` switches it to the guarded space instead:
/// [`GenConfig::guards`] programs (`assume` over raw, compared, and
/// frozen facts, poison constants included), against the fixed guard
/// band (`assume-simplify` + `guard-dce`). One domain at a time —
/// `mem` and `guards` are mutually exclusive.
///
/// Returns the table plus a deterministic one-line summary (no
/// wall-clock columns), so scripts can diff an interrupted-and-resumed
/// sweep — or a merged `K`-shard sweep — against an uninterrupted
/// single-process one.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    num_insts: usize,
    budget: Option<usize>,
    seconds: Option<u64>,
    checkpoint: Option<&Path>,
    prune: bool,
    shard: Option<(usize, usize)>,
    bench_json: Option<&Path>,
    mem: bool,
    guards: bool,
) -> Result<(Table, String), FrostError> {
    if mem && prune {
        return Err(FrostError::stage(
            "config",
            "sweep",
            "--prune applies to the arithmetic domain only".to_string(),
        ));
    }
    if mem && guards {
        return Err(FrostError::stage(
            "config",
            "sweep",
            "--mem and --guards sweep different domains; pick one".to_string(),
        ));
    }
    let mut cfg = if mem {
        GenConfig::memory(num_insts)
    } else if guards {
        GenConfig::guards(num_insts)
    } else {
        GenConfig::arithmetic(num_insts)
    };
    if prune {
        cfg = cfg.with_pruning(Pruning::FULL);
    }
    let space = enumerate_functions(cfg.clone()).approx_size();
    let (shard_id, shards) = shard.unwrap_or((0, 1));
    if shards == 0 || shard_id >= shards {
        return Err(FrostError::stage(
            "shard",
            "sweep",
            format!("shard {shard_id}/{shards} out of range"),
        ));
    }
    let resume = match checkpoint {
        Some(p) if p.exists() => Some(
            CampaignCheckpoint::load_jsonl(p)
                .map_err(|e| FrostError::stage("checkpoint", "sweep", e.to_string()))?,
        ),
        _ => None,
    };
    let pipeline_mode = PipelineMode::Fixed;
    let ic = frost_opt::InstCombine::new(pipeline_mode);
    let gvn = frost_opt::Gvn::new(pipeline_mode);
    let asim = frost_opt::AssumeSimplify::new(pipeline_mode);
    let gdce = frost_opt::GuardDce::new(pipeline_mode);
    let dce = Dce::new();
    let mut opts = CheckOptions::new(Semantics::proposed()).engine(Engine::Auto);
    if mem {
        // Exhaust initial memory contents too: programs × memories.
        let inputs = opts.inputs.with_memory_values(true);
        opts = opts.with_inputs(inputs);
    }
    let mut campaign = Campaign::with_options(opts)
        // Large shards amortize the per-batch scoped-thread spawn;
        // checkpoints land on shard boundaries either way.
        .with_shard_size(4096)
        // The §6 odometer never revisits a structure, so a
        // single-machine sweep skips the per-function fingerprint
        // set and keeps the checkpoint O(cursor), not O(space).
        .with_dedup(false)
        .with_process_shard(shard_id, shards);
    if let Some(b) = budget {
        campaign = campaign.with_budget(b);
    }
    if let Some(s) = seconds {
        campaign = campaign.with_deadline(Duration::from_secs(s));
    }
    let before = frost_telemetry::snapshot();
    let (report, cp) = campaign.run_exhaustive(&cfg, resume.as_ref(), |m| {
        for f in &mut m.functions {
            if mem {
                gvn.apply(f);
            } else if guards {
                asim.apply(f);
                gdce.apply(f);
            } else {
                ic.apply(f);
            }
            dce.apply(f);
            f.compact();
        }
    });
    let delta = frost_telemetry::snapshot().delta(&before);
    if let Some(p) = checkpoint {
        cp.save_jsonl(p)
            .map_err(|e| FrostError::stage("checkpoint", "sweep", format!("cannot save: {e}")))?;
    }
    if let Some(p) = bench_json {
        let domain = if mem {
            "mem"
        } else if guards {
            "guard"
        } else {
            "arith"
        };
        let line = sweep_bench_json(
            num_insts,
            space,
            prune,
            (shard_id, shards),
            &report,
            &cp,
            &delta,
            domain,
        );
        std::fs::write(p, line)
            .map_err(|e| FrostError::stage("bench-json", "sweep", format!("cannot save: {e}")))?;
    }

    let mut t = Table::new(
        if mem {
            "§5 memory sweep: every tiny memory program × every initial memory × fixed GVN \
             (Engine::Auto)"
        } else if guards {
            "guard sweep: every guarded program (assume over raw/compared/frozen facts) × \
             fixed guard band (Engine::Auto)"
        } else {
            "§6 full sweep: every i2 arithmetic function × fixed InstCombine (Engine::Auto)"
        },
        &[
            "insts",
            "space",
            "shard",
            "checked",
            "changed",
            "violations",
            "inconclusive",
            "fn/s",
            "complete",
        ],
    );
    t.row(vec![
        num_insts.to_string(),
        if prune {
            format!("{space} (pruned)")
        } else {
            space.to_string()
        },
        format!("{shard_id}/{shards}"),
        report.total.to_string(),
        report.changed.to_string(),
        report.violations.len().to_string(),
        report.inconclusive.to_string(),
        format!("{:.0}", report.stats.functions_per_sec),
        if cp.done { "yes".into() } else { "no".into() },
    ]);
    t.note(
        "complete=no means the budget/deadline cut the sweep; rerun with --checkpoint to resume",
    );
    if mem {
        t.note("fixed-mode alias-aware GVN over the proposed semantics must stay at 0 violations");
    } else if guards {
        t.note(
            "fixed-mode assume-simplify + guard-dce over the proposed semantics must stay at \
             0 violations",
        );
    } else {
        t.note("fixed-mode InstCombine over the proposed semantics must stay at 0 violations");
    }
    let summary = sweep_summary(&cp);
    Ok((t, summary))
}

/// Folds the per-shard checkpoints of a `K`-process [`sweep`] into one
/// whole-space summary with [`CampaignCheckpoint::merge`], optionally
/// saving the merged artifact to `save`. The summary line of a
/// complete merge is byte-identical to the summary of a
/// single-process sweep of the same space — scripts diff the two to
/// smoke-test the sharding.
///
/// # Errors
///
/// Propagates unreadable/invalid checkpoint files and incomplete or
/// mismatched shard sets (see [`CampaignCheckpoint::merge`]).
pub fn sweep_merge(paths: &[PathBuf], save: Option<&Path>) -> Result<(Table, String), FrostError> {
    let mut parts = Vec::with_capacity(paths.len());
    for p in paths {
        parts.push(CampaignCheckpoint::load_jsonl(p).map_err(|e| {
            FrostError::stage("checkpoint", "sweep-merge", format!("{}: {e}", p.display()))
        })?);
    }
    let merged = CampaignCheckpoint::merge(&parts)
        .map_err(|e| FrostError::stage("merge", "sweep-merge", e))?;
    if let Some(out) = save {
        merged.save_jsonl(out).map_err(|e| {
            FrostError::stage("checkpoint", "sweep-merge", format!("cannot save: {e}"))
        })?;
    }
    let mut t = Table::new(
        "§6 sweep merge: per-shard checkpoints folded into one whole-space summary",
        &[
            "shards",
            "checked",
            "changed",
            "violations",
            "inconclusive",
            "dedup skips",
            "seen peak",
            "complete",
        ],
    );
    t.row(vec![
        parts.len().to_string(),
        merged.total.to_string(),
        merged.changed.to_string(),
        merged.violations.len().to_string(),
        merged.inconclusive.to_string(),
        merged.dedup_skips.to_string(),
        merged.seen_peak.to_string(),
        if merged.done {
            "yes".into()
        } else {
            "no".into()
        },
    ]);
    t.note("a complete merge's summary line is byte-identical to the single-process sweep's");
    let summary = sweep_summary(&merged);
    Ok((t, summary))
}

/// The deterministic one-line summary of a [`sweep`] run or a
/// [`sweep_merge`], for scripts that diff interrupted-and-resumed (or
/// sharded-and-merged) sweeps against uninterrupted ones — wall-clock
/// columns excluded by construction. `complete=` and `violations=`
/// keep their historical spelling; new fields append after them.
fn sweep_summary(cp: &CampaignCheckpoint) -> String {
    format!(
        "sweep: checked={} changed={} refined={} violations={} inconclusive={} complete={} \
         dedup_skips={} seen_peak={}",
        cp.total,
        cp.changed,
        cp.refined,
        cp.violations.len(),
        cp.inconclusive,
        cp.done,
        cp.dedup_skips,
        cp.seen_peak,
    )
}

/// One `{"kind":"bench","experiment":"sweep",...}` JSONL line: the
/// machine-readable benchmark record `--bench-json` writes, accepted
/// by `frost_telemetry::validate_jsonl`. `space` rides as a decimal
/// string (the 3-instruction space overflows a double); throughput
/// and wall-clock are this run's, tallies are cumulative. `domain`
/// distinguishes the `arith` (§6), `mem` (§5), and `guard` sweeps.
#[allow(clippy::too_many_arguments)]
fn sweep_bench_json(
    num_insts: usize,
    space: u128,
    prune: bool,
    (shard_id, shards): (usize, usize),
    report: &ValidationReport,
    cp: &CampaignCheckpoint,
    delta: &frost_telemetry::Snapshot,
    domain: &str,
) -> String {
    let stats = &report.stats;
    let bitslice_passes = delta.counter("frost.core.bitslice.compiles");
    let tuples = delta.counter("frost.core.bitslice.tuples_per_pass");
    let denom = (cp.total + cp.dedup_skips).max(1);
    format!(
        "{{\"kind\":\"bench\",\"experiment\":\"sweep\",\"domain\":\"{domain}\",\
         \"insts\":{},\"space\":\"{}\",\
         \"prune\":{},\"shards\":{},\"shard_id\":{},\"checked\":{},\"changed\":{},\
         \"refined\":{},\"violations\":{},\"inconclusive\":{},\"complete\":{},\
         \"wall_secs\":{:.3},\"fns_per_sec\":{:.1},\"dedup_skips\":{},\"seen_peak\":{},\
         \"dedup_skip_rate\":{:.4},\"cache_hits\":{},\"cache_misses\":{},\
         \"tuples_per_pass\":{:.1},\"pruned_commutative\":{},\"pruned_const_position\":{},\
         \"pruned_dead\":{},\"stride_skips\":{}}}\n",
        num_insts,
        space,
        prune,
        shards,
        shard_id,
        cp.total,
        cp.changed,
        cp.refined,
        cp.violations.len(),
        cp.inconclusive,
        cp.done,
        stats.wall.as_secs_f64(),
        stats.functions_per_sec,
        cp.dedup_skips,
        cp.seen_peak,
        cp.dedup_skips as f64 / denom as f64,
        stats.cache_hits,
        stats.cache_misses,
        if bitslice_passes > 0 {
            tuples as f64 / bitslice_passes as f64
        } else {
            0.0
        },
        delta.counter("frost.fuzz.gen.pruned.commutative"),
        delta.counter("frost.fuzz.gen.pruned.const_position"),
        delta.counter("frost.fuzz.gen.pruned.dead"),
        delta.counter("frost.fuzz.campaign.skip.stride"),
    )
}

/// E6 / §3: the inconsistency matrix — each transformation checked
/// under each semantics preset.
pub fn inconsistencies() -> Table {
    let mut t = Table::new(
        "§3 inconsistency matrix: transformation soundness per semantics",
        &[
            "transformation",
            "proposed",
            "legacy-gvn",
            "legacy-unswitch",
        ],
    );

    // Each case: (name, before-module, transform).
    type Xform = (&'static str, &'static str, Box<dyn Fn(&mut Module)>);
    let run_fn = |pass: Box<dyn Pass>| -> Box<dyn Fn(&mut Module)> {
        Box::new(move |m: &mut Module| {
            pass.apply_to_module(m);
            for f in &mut m.functions {
                Dce::new().apply(f);
                f.compact();
            }
        })
    };

    let cases: Vec<Xform> = vec![
        (
            "§3.1 mul undef,2 -> add x,x (InstCombine legacy)",
            "define i4 @f() {\nentry:\n  %y = mul i4 undef, 2\n  ret i4 %y\n}",
            run_fn(Box::new(frost_opt::InstCombine::new(PipelineMode::Legacy))),
        ),
        (
            "§3.2 hoist guarded udiv (LICM legacy)",
            r#"
declare void @use(i4)
define void @f(i1 %c, i4 %k) {
entry:
  %nz = icmp ne i4 %k, 0
  br i1 %nz, label %ph, label %done
ph:
  br label %head
head:
  %cont = phi i1 [ %c, %ph ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  %d = udiv i4 1, %k
  call void @use(i4 %d)
  br label %head
exit:
  br label %done
done:
  ret void
}
"#,
            run_fn(Box::new(Licm::new(PipelineMode::Legacy))),
        ),
        (
            "§3.3 GVN equality propagation",
            r#"
declare void @foo(i4)
define void @f(i4 %x, i4 %y) {
entry:
  %t = add i4 %x, 1
  %c = icmp eq i4 %t, %y
  br i1 %c, label %then, label %exit
then:
  %w = add i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}
"#,
            run_fn(Box::new(Gvn::new(PipelineMode::Fixed))),
        ),
        (
            "§3.3 loop unswitch without freeze",
            UNSWITCH_SRC,
            run_fn(Box::new(LoopUnswitch::new(PipelineMode::Legacy))),
        ),
        (
            "§5.1 loop unswitch with freeze",
            UNSWITCH_SRC,
            run_fn(Box::new(LoopUnswitch::new(PipelineMode::Fixed))),
        ),
        (
            "§3.4 phi -> select (SimplifyCFG)",
            r#"
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}
"#,
            run_fn(Box::new(SimplifyCfg::new(PipelineMode::Fixed))),
        ),
        (
            "§3.4 select c,true,x -> or c,x (no freeze)",
            "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %r = select i1 %c, i1 true, i1 %x\n  ret i1 %r\n}",
            run_fn(Box::new(frost_opt::InstCombine::new(PipelineMode::Legacy))),
        ),
        (
            "§3.4 select c,true,x -> or c,freeze(x)",
            "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %r = select i1 %c, i1 true, i1 %x\n  ret i1 %r\n}",
            run_fn(Box::new(frost_opt::InstCombine::new(PipelineMode::Fixed))),
        ),
        (
            "§10.2 reassociate keeping nsw",
            "define i4 @f(i4 %x) {\nentry:\n  %a = add nsw i4 %x, 7\n  %b = add nsw i4 %a, 7\n  ret i4 %b\n}",
            run_fn(Box::new(Reassociate::new(PipelineMode::Legacy))),
        ),
        (
            "§10.2 reassociate dropping nsw",
            "define i4 @f(i4 %x) {\nentry:\n  %a = add nsw i4 %x, 7\n  %b = add nsw i4 %a, 7\n  ret i4 %b\n}",
            run_fn(Box::new(Reassociate::new(PipelineMode::Fixed))),
        ),
        (
            // The guard fact holds only *past* the assume; the legacy
            // pass applies it on the guard-free path too.
            "assume fact, dominance-blind (legacy)",
            BRANCHY_GUARD_SRC,
            run_fn(Box::new(frost_opt::AssumeSimplify::new(
                PipelineMode::Legacy,
            ))),
        ),
        (
            "assume fact, dominated region (fixed)",
            "define i4 @f(i4 %x) {\nentry:\n  %c = icmp eq i4 %x, 1\n  assume i1 %c\n  \
             %r = add i4 %x, 3\n  ret i4 %r\n}",
            run_fn(Box::new(frost_opt::AssumeSimplify::new(
                PipelineMode::Fixed,
            ))),
        ),
        (
            // `or` of a *concrete* bit with 1 is 1, so the source passes
            // the guard on every input; forwarding the freeze rebuilds
            // the fact from the raw value and re-exposes poison to it.
            "freeze forwarded into guard fact (guard-dce legacy)",
            LAUNDERED_FACT_SRC,
            run_fn(Box::new(frost_opt::GuardDce::new(PipelineMode::Legacy))),
        ),
        (
            // Every execution reaching the doomed block is immediate UB,
            // so even its store may go.
            "unreachable-guarded deletion (guard-dce fixed)",
            r#"
define i4 @f(i1 %c, i4* %p) {
entry:
  br i1 %c, label %doomed, label %ok
doomed:
  store i4 7, i4* %p
  unreachable
ok:
  ret i4 3
}
"#,
            run_fn(Box::new(frost_opt::GuardDce::new(PipelineMode::Fixed))),
        ),
    ];

    for (name, src, xform) in cases {
        let before = parse_module(src).expect("case parses");
        let mut after = before.clone();
        xform(&mut after);
        let mut cells = vec![name.to_string()];
        for sem in Semantics::all_presets() {
            if after == before {
                cells.push("no-op".to_string());
                continue;
            }
            let verdict = check_refinement(&before, "f", &after, "f", &CheckOptions::new(sem));
            cells.push(match verdict {
                CheckResult::Refines => "sound".to_string(),
                CheckResult::CounterExample(_) => "UNSOUND".to_string(),
                CheckResult::Inconclusive(_) => "inconclusive".to_string(),
            });
        }
        t.row(cells);
    }
    t.note("the §3.3 pair shows the conflict: GVN needs branch-on-poison=UB, unswitch-without-freeze needs nondet");
    t
}

const BRANCHY_GUARD_SRC: &str = r#"
define i4 @f(i1 %p, i4 %x) {
entry:
  br i1 %p, label %guarded, label %exit
guarded:
  %c = icmp eq i4 %x, 1
  assume i1 %c
  br label %exit
exit:
  %r = add i4 %x, 3
  ret i4 %r
}
"#;

const LAUNDERED_FACT_SRC: &str = r#"
define i4 @f(i1 %c) {
entry:
  %f = freeze i1 %c
  %t = or i1 %f, 1
  assume i1 %t
  ret i4 1
}
"#;

const UNSWITCH_SRC: &str = r#"
declare void @foo()
declare void @bar()
define void @f(i1 %c, i1 %c2) {
entry:
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cont, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @foo()
  br label %latch
e:
  call void @bar()
  br label %latch
latch:
  br label %head
exit:
  ret void
}
"#;

/// E7 / §2.4, Figure 3: induction-variable widening — measured speedup
/// and the semantic justification matrix.
pub fn widening() -> Result<Table, FrostError> {
    let mut t = Table::new(
        "Figure 3: induction-variable widening (sext removal)",
        &[
            "configuration",
            "cycles m1",
            "cycles m2",
            "speedup m1",
            "verdict",
        ],
    );
    // A store loop with a narrow IV, Figure 3's shape, over 512 i32s.
    let narrow = r#"
define void @f(i32* %a, i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %p = getelementptr inbounds i32, i32* %a, i64 %iext
  store i32 42, i32* %p
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret void
}
"#;
    let before = parse_module(narrow)?;
    let mut widened = before.clone();
    frost_opt::IndVarWiden::new(PipelineMode::Fixed).apply_to_module(&mut widened);
    for f in &mut widened.functions {
        Dce::new().apply(f);
        f.compact();
    }

    let cycles = |m: &Module, cost: CostModel| -> Result<u64, FrostError> {
        let mm = compile_module(m).map_err(|e| FrostError::stage("backend", "widening", e))?;
        let mut sim = Simulator::new(&mm, cost, 2048);
        Ok(sim
            .run("f", &[MEM_BASE, 512])
            .map_err(|e| FrostError::stage("simulation", "widening", e))?
            .cycles)
    };
    let n1 = cycles(&before, CostModel::machine1())?;
    let n2 = cycles(&before, CostModel::machine2())?;
    let w1 = cycles(&widened, CostModel::machine1())?;
    let w2 = cycles(&widened, CostModel::machine2())?;
    t.row(vec![
        "narrow IV (sext per iteration)".into(),
        n1.to_string(),
        n2.to_string(),
        "-".into(),
        "-".into(),
    ]);
    // The i32 loop cannot be checked exhaustively; verify the identical
    // transformation at i3/i5 widths (same shape, checkable domain).
    let small = parse_module(
        "declare void @use(i5)\ndefine void @f(i3 %n) {\nentry:\n  br label %head\nhead:\n  %i = phi i3 [ 0, %entry ], [ %i1, %body ]\n  %c = icmp slt i3 %i, %n\n  br i1 %c, label %body, label %exit\nbody:\n  %iext = sext i3 %i to i5\n  call void @use(i5 %iext)\n  %i1 = add nsw i3 %i, 1\n  br label %head\nexit:\n  ret void\n}",
    )?;
    let mut small_widened = small.clone();
    frost_opt::IndVarWiden::new(PipelineMode::Fixed).apply_to_module(&mut small_widened);
    for f in &mut small_widened.functions {
        Dce::new().apply(f);
        f.compact();
    }
    let verdict = check_refinement(
        &small,
        "f",
        &small_widened,
        "f",
        &CheckOptions::new(Semantics::proposed()),
    );
    t.row(vec![
        "widened IV".into(),
        w1.to_string(),
        w2.to_string(),
        fmt_pct(pct_improvement(n1, w1)),
        match verdict {
            CheckResult::Refines => "sound under poison (verified at i3)".into(),
            other => format!("{other:?}"),
        },
    ]);
    // The semantic crux, on checkable widths (matches the indvar tests).
    let src = parse_module(
        "define i1 @f(i3 %i, i3 %n) {\nentry:\n  %i1 = add nsw i3 %i, 1\n  %iext = sext i3 %i1 to i5\n  %next = sext i3 %n to i5\n  %c = icmp sle i5 %iext, %next\n  ret i1 %c\n}",
    )?;
    let tgt = parse_module(
        "define i1 @f(i3 %i, i3 %n) {\nentry:\n  %iw = sext i3 %i to i5\n  %i1w = add nsw i5 %iw, 1\n  %next = sext i3 %n to i5\n  %c = icmp sle i5 %i1w, %next\n  ret i1 %c\n}",
    )?;
    let under_poison = check_refinement(
        &src,
        "f",
        &tgt,
        "f",
        &CheckOptions::new(Semantics::proposed()),
    );
    let under_undef = check_refinement(
        &src,
        "f",
        &tgt,
        "f",
        &CheckOptions::new(Semantics::legacy_undef_overflow()),
    );
    t.row(vec![
        "widening step, overflow = poison".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        if under_poison.is_refinement() {
            "sound".into()
        } else {
            "UNSOUND".into()
        },
    ]);
    t.row(vec![
        "widening step, overflow = undef (§2.4 strawman)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        if under_undef.counterexample().is_some() {
            "UNSOUND (n = INT_MAX witness)".into()
        } else {
            "unexpectedly sound".into()
        },
    ]);
    t.note(
        "paper: up to 39% faster depending on microarchitecture; justified only by nsw = poison",
    );
    Ok(t)
}

/// E8 / §5.4: load widening must use vector loads.
pub fn loadwiden() -> Result<Table, FrostError> {
    let mut t = Table::new(
        "§5.4 load widening: scalar vs vector",
        &["transformation", "verdict under proposed"],
    );
    // Memory is uninitialized except the i16 the program itself stores.
    let src = r#"
define i16 @f(i16* %p) {
entry:
  store i16 7, i16* %p
  %v = load i16, i16* %p
  ret i16 %v
}
"#;
    // Scalar widening: load 32 bits, truncate.
    let tgt_scalar = r#"
define i16 @f(i16* %p) {
entry:
  store i16 7, i16* %p
  %p32 = bitcast i16* %p to i32*
  %w = load i32, i32* %p32
  %v = trunc i32 %w to i16
  ret i16 %v
}
"#;
    // Vector widening (§5.4's fix): load <2 x i16>, extract lane 0.
    let tgt_vector = r#"
define i16 @f(i16* %p) {
entry:
  store i16 7, i16* %p
  %pv = bitcast i16* %p to <2 x i16>*
  %w = load <2 x i16>, <2 x i16>* %pv
  %v = extractelement <2 x i16> %w, i32 0
  ret i16 %v
}
"#;
    let s = parse_module(src)?;
    for (name, tgt) in [
        ("widen 16->32 scalar", tgt_scalar),
        ("widen via <2 x i16>", tgt_vector),
    ] {
        let tm = parse_module(tgt)?;
        // 4 bytes per pointer: room for the wide load.
        let opts = CheckOptions::new(Semantics::proposed())
            .with_inputs(InputOptions::new().with_bytes_per_pointer(4));
        let verdict = check_refinement(&s, "f", &tm, "f", &opts);
        t.row(vec![
            name.to_string(),
            match verdict {
                CheckResult::Refines => "sound".into(),
                CheckResult::CounterExample(_) => "UNSOUND (poison bytes contaminate)".into(),
                CheckResult::Inconclusive(why) => format!("inconclusive: {why}"),
            },
        ]);
    }
    t.note(
        "paper: the adjacent bits 'should not poison the value the program was originally loading'",
    );
    Ok(t)
}

/// E9 / §7.2: the Stanford Queens anecdote — the freeze changes
/// register allocation, shifting an LEA on/off a slow register.
pub fn queens_anecdote() -> Result<Table, FrostError> {
    let mut t = Table::new(
        "§7.2 Stanford Queens: register allocation and LEA latency",
        &["mode", "cycles m1", "cycles m2", "slow-LEA bases", "result"],
    );
    let w = frost_workloads::queens();
    for mode in [PipelineMode::Legacy, PipelineMode::Fixed] {
        let metrics: RunMetrics = run_workload(&w, mode, CostModel::machine1())?;
        let m2 = run_workload(&w, mode, CostModel::machine2())?;
        // Count LEAs whose base landed on a slow register.
        let (module, _, _) = crate::harness::compile_workload(&w, mode)?;
        let mm = compile_module(&module).map_err(|e| FrostError::stage("backend", w.name, e))?;
        let slow: usize = mm
            .functions
            .iter()
            .flat_map(lea_base_registers)
            .filter(|r| r.lea_is_slow())
            .count();
        t.row(vec![
            format!("{mode:?}"),
            metrics.cycles.to_string(),
            m2.cycles.to_string(),
            slow.to_string(),
            metrics.result.map(|r| r.to_string()).unwrap_or_default(),
        ]);
    }
    // Mechanism check: the same loop with its LEA base pinned to a
    // fast vs a slow register, demonstrating the latency quirk the
    // paper's anecdote traces the speedup to.
    for (label, base) in [
        (
            "mechanism: lea base = r12 (fast)",
            frost_backend::PhysReg::R12,
        ),
        (
            "mechanism: lea base = r13 (slow)",
            frost_backend::PhysReg::R13,
        ),
    ] {
        let mm = lea_microkernel(base);
        let c1 = Simulator::new(&mm, CostModel::machine1(), 0)
            .run("k", &[20_000])
            .map_err(|e| FrostError::stage("simulation", label, e))?;
        let c2 = Simulator::new(&mm, CostModel::machine2(), 0)
            .run("k", &[20_000])
            .map_err(|e| FrostError::stage("simulation", label, e))?;
        t.row(vec![
            label.to_string(),
            c1.cycles.to_string(),
            c2.cycles.to_string(),
            if base.lea_is_slow() {
                "1".into()
            } else {
                "0".into()
            },
            c1.ret.map(|r| r.to_string()).unwrap_or_default(),
        ]);
    }
    t.note("paper: a single freeze changed allocation (r13 vs r14), 6–8% speedup via LEA latency");
    t.note("at queens' register pressure our allocator never reaches the slow registers; the mechanism rows isolate the quirk");
    Ok(t)
}

/// A hand-built MIR loop whose hot LEA uses the given base register:
/// `for i in 0..n { acc += i via lea }`.
fn lea_microkernel(base: frost_backend::PhysReg) -> frost_backend::MModule {
    use frost_backend::{AluOp, Cc, MBlock, MFunc, MInst, Operand, PhysReg, Reg, Width};
    let b = Reg::P(base);
    let i = Reg::P(PhysReg::Rcx);
    let n = Reg::P(PhysReg::Rdx);
    let acc = Reg::P(PhysReg::Rax);
    let entry = MBlock {
        name: "entry".into(),
        insts: vec![
            MInst::GetArg { dst: n, index: 0 },
            MInst::Mov {
                dst: i,
                src: Operand::Imm(0),
                width: Width::W64,
            },
            MInst::Mov {
                dst: acc,
                src: Operand::Imm(0),
                width: Width::W64,
            },
            MInst::Mov {
                dst: b,
                src: Operand::Imm(0),
                width: Width::W64,
            },
            MInst::Jmp { target: 1 },
        ],
    };
    let body = MBlock {
        name: "body".into(),
        insts: vec![
            // The hot LEA: acc-relevant address arithmetic on `base`.
            MInst::Lea {
                dst: acc,
                base: b,
                index: Some((acc, 1)),
                disp: 1,
            },
            MInst::Alu {
                op: AluOp::Add,
                dst: i,
                lhs: i,
                rhs: Operand::Imm(1),
                width: Width::W64,
                signed: false,
            },
            MInst::Cmp {
                lhs: i,
                rhs: Operand::R(n),
                width: Width::W64,
                signed: false,
            },
            MInst::Jcc {
                cc: Cc::B,
                target: 1,
            },
            MInst::Jmp { target: 2 },
        ],
    };
    let exit = MBlock {
        name: "exit".into(),
        insts: vec![MInst::Ret { src: Some(acc) }],
    };
    frost_backend::MModule {
        functions: vec![MFunc {
            name: "k".into(),
            num_params: 1,
            blocks: vec![entry, body, exit],
            num_vregs: 0,
            num_slots: 0,
            frame_bytes: 0,
            undef_vregs: vec![],
        }],
    }
}

/// Pulls functions off a shared stream and roundtrips each one
/// (print → parse → [`frost_ir::FunctionKey`] compare) across
/// `workers` scoped threads. Returns `(checked, mismatches)` plus the
/// first failure's rendered detail, if any.
fn roundtrip_stream(
    fns: impl Iterator<Item = Function> + Send,
    workers: usize,
) -> (u64, u64, Option<String>) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Functions a worker claims per lock acquisition.
    const BATCH: usize = 256;

    let stream = Mutex::new(fns);
    let checked = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let first_failure: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| {
                let mut batch = Vec::with_capacity(BATCH);
                loop {
                    {
                        let mut it = stream.lock().unwrap();
                        batch.extend(it.by_ref().take(BATCH));
                    }
                    if batch.is_empty() {
                        return;
                    }
                    for f in batch.drain(..) {
                        checked.fetch_add(1, Ordering::Relaxed);
                        if let Err(e) = check_roundtrip(&f) {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                            let mut slot = first_failure.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(format!("@{}: {e}", f.name));
                            }
                        }
                    }
                }
            });
        }
    });
    (
        checked.into_inner(),
        mismatches.into_inner(),
        first_failure.into_inner().unwrap(),
    )
}

/// The roundtrip-fidelity gate: every function of the §6 corpus (the
/// full exhaustive i2 arithmetic spaces, with and without `undef`), a
/// `fuzz`-sized random sample of deeper/wider spaces, and every
/// workload module (before and after O2 — loads, stores, geps, phis,
/// casts, calls, vectors) is printed, re-parsed, and compared by
/// [`frost_ir::FunctionKey`]. One textual form, zero drift: any
/// mismatch is a bug in the printer or the parser.
///
/// Returns the per-corpus table plus a deterministic one-line summary
/// (`roundtrip: checked=N mismatches=M`) for scripts to grep. `quick`
/// strides the multi-instruction exhaustive spaces instead of walking
/// them whole; ci.sh runs the full gate.
pub fn roundtrip(fuzz: usize, quick: bool) -> Result<(Table, String), FrostError> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    let mut t = Table::new(
        "roundtrip fidelity: print → parse → FunctionKey equality",
        &["corpus", "functions", "mismatches", "status"],
    );
    let mut total_checked = 0u64;
    let mut total_mismatches = 0u64;
    let mut failures: Vec<String> = Vec::new();
    let mut corpus =
        |t: &mut Table, name: &str, (checked, bad, first): (u64, u64, Option<String>)| {
            total_checked += checked;
            total_mismatches += bad;
            if let Some(f) = first {
                failures.push(format!("{name}: {f}"));
            }
            t.row(vec![
                name.to_string(),
                checked.to_string(),
                bad.to_string(),
                if bad == 0 {
                    "ok".into()
                } else {
                    "MISMATCH".into()
                },
            ]);
        };

    // The full §6 exhaustive spaces — unsampled, like the sweep.
    let exhaustive = [
        ("§6 exhaustive i2, 1 inst", GenConfig::arithmetic(1)),
        ("§6 exhaustive i2, 2 insts", GenConfig::arithmetic(2)),
        (
            "§6 exhaustive i2 + undef, 1 inst",
            GenConfig::arithmetic(1).with_undef(),
        ),
        (
            "§6 exhaustive i2 + select, 1 inst",
            GenConfig::with_selects(1),
        ),
        (
            "exhaustive guarded (assume/frozen facts), 1 inst",
            GenConfig::guards(1),
        ),
    ];
    // Prime, so a quick-mode stride doesn't resonate with the
    // generator's mixed-radix counter and skip whole dimensions.
    let stride = if quick { 1009 } else { 1 };
    for (name, cfg) in exhaustive {
        let multi_inst = cfg.num_insts > 1;
        corpus(
            &mut t,
            name,
            roundtrip_stream(
                enumerate_functions(cfg).step_by(if multi_inst { stride } else { 1 }),
                workers,
            ),
        );
    }

    // Random samples of the spaces too large to exhaust.
    let per_corpus = fuzz.div_ceil(4);
    let sampled = [
        ("fuzz: i2 arithmetic, 3 insts", GenConfig::arithmetic(3)),
        ("fuzz: i2 + select, 3 insts", GenConfig::with_selects(3)),
        (
            "fuzz: i2 + undef + select, 3 insts",
            GenConfig::with_selects(3).with_undef(),
        ),
        ("fuzz: guarded, 3 insts", GenConfig::guards(3)),
    ];
    for (name, cfg) in sampled {
        corpus(
            &mut t,
            name,
            roundtrip_stream(
                random_functions(cfg, 0xF1305, per_corpus).into_iter(),
                workers,
            ),
        );
    }

    // Workload modules exercise the rest of the instruction surface
    // (memory, geps, phis across loops, casts, calls, vectors), both
    // straight out of the frontend and after the fixed O2 pipeline.
    for w in all_workloads() {
        let raw = w
            .compile(&crate::harness::frontend_options(PipelineMode::Fixed))
            .map_err(|e| FrostError::stage("frontend", w.name, e))?;
        let (opt, _, _) = compile_workload(&w, PipelineMode::Fixed)?;
        corpus(
            &mut t,
            &format!("workload {}", w.name),
            roundtrip_stream(raw.functions.into_iter().chain(opt.functions), workers),
        );
    }

    for f in &failures {
        t.note(format!("first failure — {f}"));
    }
    t.note(
        "the oracle is FunctionKey (α-equivalence-exact), not string equality: the printer renames",
    );
    let summary = format!("roundtrip: checked={total_checked} mismatches={total_mismatches}");
    Ok((t, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inconsistency_matrix_matches_the_paper() {
        let t = inconsistencies();
        let cell = |row_contains: &str, col: usize| -> String {
            t.rows
                .iter()
                .find(|r| r[0].contains(row_contains))
                .unwrap_or_else(|| panic!("row {row_contains}"))[col]
                .clone()
        };
        // Columns: 1 = proposed, 2 = legacy-gvn, 3 = legacy-unswitch.
        assert_eq!(cell("GVN equality", 1), "sound");
        assert_eq!(cell("GVN equality", 3), "UNSOUND");
        assert_eq!(cell("unswitch without freeze", 1), "UNSOUND");
        assert_eq!(cell("unswitch without freeze", 3), "sound");
        assert_eq!(cell("unswitch with freeze", 1), "sound");
        assert_eq!(cell("select c,true,x -> or c,freeze(x)", 1), "sound");
        assert_eq!(cell("select c,true,x -> or c,x (no freeze)", 1), "UNSOUND");
        assert_eq!(cell("reassociate keeping nsw", 1), "UNSOUND");
        assert_eq!(cell("reassociate dropping nsw", 1), "sound");
        assert_eq!(cell("phi -> select", 1), "sound");
        assert_eq!(cell("phi -> select", 2), "UNSOUND");
        // The guard band: the fact is real (fixed rows are sound) but
        // scoped (dominance-blind application miscompiles), and the
        // freeze in front of a fact is load-bearing (forwarding it
        // re-exposes poison to the guard).
        assert_eq!(cell("assume fact, dominance-blind", 1), "UNSOUND");
        assert_eq!(cell("assume fact, dominance-blind", 3), "UNSOUND");
        assert_eq!(cell("assume fact, dominated region", 1), "sound");
        assert_eq!(cell("freeze forwarded into guard fact", 1), "UNSOUND");
        assert_eq!(cell("unreachable-guarded deletion", 1), "sound");
    }

    #[test]
    fn loadwiden_shows_the_section_5_4_split() {
        let t = loadwiden().unwrap();
        assert!(t.rows[0][1].contains("UNSOUND"), "{t}");
        assert_eq!(t.rows[1][1], "sound", "{t}");
    }

    #[test]
    fn widening_is_profitable_and_sound() {
        let t = widening().unwrap();
        // Row 1 is the widened configuration.
        let speedup: f64 = t.rows[1][3].trim_end_matches('%').parse().unwrap();
        assert!(speedup > 0.0, "widening must save cycles: {t}");
        assert!(t.rows[1][4].contains("sound"), "{t}");
        assert!(t.rows[2][4].contains("sound"), "{t}");
        assert!(t.rows[3][4].contains("UNSOUND"), "{t}");
    }

    #[test]
    fn fig6_quick_runs_and_results_match() {
        let t = fig6(true).unwrap();
        assert!(t.rows.len() >= 4);
        for r in &t.rows {
            assert_eq!(r[5], "yes", "cross-mode result mismatch in {}: {t}", r[0]);
        }
    }

    #[test]
    fn optfuzz_campaigns_have_expected_shape() {
        let t = optfuzz(40);
        for r in &t.rows {
            let violations: usize = r[5].parse().unwrap();
            if r[1] == "Fixed" {
                assert_eq!(violations, 0, "fixed-mode campaign must be clean: {t}");
            }
            assert_eq!(r[10], "yes", "plan/auto engines must agree: {t}");
        }
        // The legacy instcombine campaign (row 1) hunts undef bugs; with
        // a small stride it may or may not hit one, so only the fixed
        // rows are asserted here. The full run is asserted in repro.
    }
}
