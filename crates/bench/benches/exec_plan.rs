//! Plan engine vs. reference tree-walk on §6-shaped work: per-run
//! concrete execution, full outcome enumeration of a branching freeze
//! function, and an all-inputs sweep of a generated i2 function — the
//! shapes whose throughput *is* campaign throughput.

use frost_bench::Runner;
use frost_core::exec::reference;
use frost_core::{uninit_fill, Limits, Machine, Memory, ModulePlan, Semantics, Val};
use frost_fuzz::{enumerate_functions, GenConfig};
use frost_ir::{parse_module, Module};
use frost_refine::{enumerate_inputs, InputOptions};

fn main() {
    let r = Runner::new();
    let sem = Semantics::proposed();
    let limits = Limits::default();

    // Concrete execution: an i8 summation loop (hundreds of steps),
    // plan compiled once and reference walking the tree every run.
    let loop_mod = parse_module(
        r#"
define i8 @sum(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %s = phi i8 [ 0, %entry ], [ %s1, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %s1 = add i8 %s, %i
  %i1 = add i8 %i, 1
  br label %head
exit:
  ret i8 %s
}
"#,
    )
    .expect("parses");
    let args = [Val::int(8, 200)];
    let mem = Memory::zeroed(0);
    let plan = ModulePlan::compile(&loop_mod, sem);
    let idx = plan.function_index("sum").unwrap();
    let mut machine = Machine::new();
    r.bench("plan_sum_loop_200", || {
        plan.run_concrete(idx, &args, &mem, limits, &mut machine)
            .expect("runs")
    });
    r.bench("reference_sum_loop_200", || {
        reference::run_concrete(&loop_mod, "sum", &args, &mem, sem, limits).expect("runs")
    });

    // Enumeration with forking: two freezes of poison (16 leaves). The
    // plan resumes siblings from snapshots; the reference restarts.
    let freeze_mod = parse_module(
        "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = freeze i2 poison\n  %c = add i2 %a, %b\n  ret i2 %c\n}",
    )
    .expect("parses");
    let fplan = ModulePlan::compile(&freeze_mod, sem);
    let fidx = fplan.function_index("f").unwrap();
    r.bench("plan_enumerate_two_freezes", || {
        fplan
            .enumerate(fidx, &[], &mem, limits, &mut machine)
            .expect("enumerates")
            .len()
    });
    r.bench("reference_enumerate_two_freezes", || {
        reference::enumerate_outcomes(&freeze_mod, "f", &[], &mem, sem, limits)
            .expect("enumerates")
            .len()
    });

    // The §6 inner loop: one generated function, all enumerated inputs.
    // Compilation is inside the plan benchmark — this is the per-new-
    // function cost a campaign pays, amortized over the input sweep.
    let f = enumerate_functions(GenConfig::arithmetic(2))
        .nth(12_345)
        .expect("space is larger than that");
    let name = f.name.clone();
    let (tuples, block_sizes) = enumerate_inputs(&f, &InputOptions::new()).expect("enumerable");
    let fuzz_mem = Memory::with_initial_blocks(&block_sizes, uninit_fill(&sem));
    let mut module = Module::new();
    module.functions.push(f);
    r.bench("plan_section6_fn_all_inputs", || {
        let plan = ModulePlan::compile(&module, sem);
        let idx = plan.function_index(&name).unwrap();
        tuples
            .iter()
            .map(|args| {
                plan.enumerate(idx, args, &fuzz_mem, limits, &mut machine)
                    .expect("enumerates")
                    .len()
            })
            .sum::<usize>()
    });
    r.bench("reference_section6_fn_all_inputs", || {
        tuples
            .iter()
            .map(|args| {
                reference::enumerate_outcomes(&module, &name, args, &fuzz_mem, sem, limits)
                    .expect("enumerates")
                    .len()
            })
            .sum::<usize>()
    });
}
