//! Micro-benchmarks of the semantic engine itself: interpreter
//! throughput, nondeterministic outcome enumeration, and a full
//! refinement check — the moving parts behind E5/E6.

use frost_bench::Runner;
use frost_core::{enumerate_outcomes, run_concrete, Limits, Memory, Semantics, Val};
use frost_ir::parse_module;
use frost_refine::{check_refinement, CheckOptions};

fn main() {
    let r = Runner::new();

    // Interpreter throughput: an i8 summation loop (hundreds of steps).
    let loop_mod = parse_module(
        r#"
define i8 @sum(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %s = phi i8 [ 0, %entry ], [ %s1, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %s1 = add i8 %s, %i
  %i1 = add i8 %i, 1
  br label %head
exit:
  ret i8 %s
}
"#,
    )
    .expect("parses");
    r.bench("interpret_sum_loop_200", || {
        run_concrete(
            &loop_mod,
            "sum",
            &[Val::int(8, 200)],
            &Memory::zeroed(0),
            Semantics::proposed(),
            Limits::default(),
        )
        .expect("runs")
    });

    // Enumeration: two independent freezes of poison (fan-out 16).
    let freeze_mod = parse_module(
        "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = freeze i2 poison\n  %c = add i2 %a, %b\n  ret i2 %c\n}",
    )
    .expect("parses");
    r.bench("enumerate_two_freezes", || {
        enumerate_outcomes(
            &freeze_mod,
            "f",
            &[],
            &Memory::zeroed(0),
            Semantics::proposed(),
            Limits::default(),
        )
        .expect("enumerates")
        .len()
    });

    // A complete refinement check (the §2.3 fold at i4).
    let src = parse_module(
        "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %s = add nsw i4 %a, %b\n  %c = icmp sgt i4 %s, %a\n  ret i1 %c\n}",
    )
    .expect("parses");
    let tgt = parse_module(
        "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %c = icmp sgt i4 %b, 0\n  ret i1 %c\n}",
    )
    .expect("parses");
    r.bench("refinement_check_i4_pair", || {
        let verdict = check_refinement(
            &src,
            "f",
            &tgt,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(verdict.is_refinement());
    });
}
