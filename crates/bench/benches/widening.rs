//! E7 / Figure 3 as a micro-bench: the narrow-IV loop (per-iteration
//! sext) against its widened form, on both machine models.

use frost_backend::{compile_module, CostModel, Simulator, MEM_BASE};
use frost_bench::Runner;
use frost_ir::parse_module;
use frost_opt::{Dce, IndVarWiden, Pass, PipelineMode};

const NARROW: &str = r#"
define void @f(i32* %a, i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %p = getelementptr inbounds i32, i32* %a, i64 %iext
  store i32 42, i32* %p
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret void
}
"#;

fn main() {
    let r = Runner::new();
    let narrow = parse_module(NARROW).expect("parses");
    let mut widened = narrow.clone();
    IndVarWiden::new(PipelineMode::Fixed).apply_to_module(&mut widened);
    Dce::new().apply_to_module(&mut widened);
    for f in &mut widened.functions {
        f.compact();
    }

    for (label, module) in [("narrow", &narrow), ("widened", &widened)] {
        let mm = compile_module(module).expect("backend");
        for cost in [CostModel::machine1(), CostModel::machine2()] {
            r.bench(&format!("indvar/{label}/{}", cost.name), || {
                let mut sim = Simulator::new(&mm, cost, 2048);
                sim.run("f", &[MEM_BASE, 512]).expect("runs").cycles
            });
        }
    }
}
