//! Bit-sliced evaluator vs. plan machine on the §6 inner loop: one
//! all-i2 function, every enumerated input tuple. The plan machine
//! pays an interpreter pass per tuple (times each nondeterministic
//! choice script); the bit-sliced backend evaluates all tuples per
//! bitplane operation, so its advantage grows with the number of
//! choice scripts. Rows cover both regimes:
//!
//! * `arith` / `selects` — deterministic (`scripts = 1`): one
//!   bitplane pass replaces 25 interpreter passes (~5× per tuple;
//!   the shared `OutcomeSet` materialization cost bounds it there).
//! * `freeze_*` / `undef_legacy` — nondeterminism-bearing (`freeze` of
//!   a possibly-poison value, `undef` under the legacy semantics):
//!   the plan machine re-interprets the function per script while the
//!   bit-sliced backend re-runs only the suffix after each choice
//!   site (~5-7× per tuple, growing with script count).
//!
//! Per row the harness prints plan time, bit-sliced lowering time
//! (a per-*function* cost, reported separately), bit-sliced evaluation
//! time, and the per-tuple speedup `plan / evaluate`.

use frost_bench::Runner;
use frost_core::{
    uninit_fill, BitslicePlan, Limits, Machine, Memory, ModulePlan, OutcomeSet, Semantics,
};
use frost_fuzz::{enumerate_functions, GenConfig};
use frost_ir::{parse_module, Module};
use frost_refine::{enumerate_inputs, InputOptions};

/// One §6-shaped benchmark row.
struct Row {
    label: &'static str,
    module: Module,
    sem: Semantics,
    /// Enumerate `undef` input lanes too (the legacy-semantics rows).
    with_undef: bool,
}

impl Row {
    fn parsed(label: &'static str, src: &str, sem: Semantics, with_undef: bool) -> Row {
        Row {
            label,
            module: parse_module(src).expect("row parses"),
            sem,
            with_undef,
        }
    }

    fn generated(label: &'static str, cfg: GenConfig, nth: usize) -> Row {
        let f = enumerate_functions(cfg)
            .nth(nth)
            .expect("space is larger than that");
        let mut module = Module::new();
        module.functions.push(f);
        Row {
            label,
            module,
            sem: Semantics::proposed(),
            with_undef: false,
        }
    }
}

/// Deterministic rows from the exhaustive generator plus hand-picked
/// nondeterminism-bearing shapes (`freeze`, `undef`) that dominate the
/// §6 all-i2 space once poison-producing flags are in play.
fn corpus() -> Vec<Row> {
    vec![
        Row::generated("arith", GenConfig::arithmetic(2), 12_345),
        Row::generated("selects", GenConfig::with_selects(2), 23_456),
        Row::parsed(
            "freeze_nsw",
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %t0 = add nsw i2 %a, %b\n  \
             %t1 = freeze i2 %t0\n  ret i2 %t1\n}",
            Semantics::proposed(),
            false,
        ),
        Row::parsed(
            "freeze_param",
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %t0 = freeze i2 %a\n  \
             %t1 = mul i2 %t0, %b\n  ret i2 %t1\n}",
            Semantics::proposed(),
            false,
        ),
        Row::parsed(
            "undef_legacy",
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %t0 = add i2 %a, undef\n  \
             %t1 = xor i2 %t0, %b\n  ret i2 %t1\n}",
            Semantics::legacy_gvn(),
            true,
        ),
    ]
}

fn main() {
    let r = Runner::new();
    let limits = Limits::default();

    for row in corpus() {
        let Row {
            label,
            module,
            sem,
            with_undef,
        } = row;
        let f = &module.functions[0];
        let name = f.name.clone();
        let (tuples, block_sizes) =
            enumerate_inputs(f, &InputOptions::new().with_undef(with_undef)).expect("enumerable");
        let mem = Memory::with_initial_blocks(&block_sizes, uninit_fill(&sem));
        let plan = ModulePlan::compile(&module, sem);
        let idx = plan.function_index(&name).unwrap();
        let mut machine = Machine::new();

        // The two engines must agree byte-for-byte before their
        // throughput is worth comparing.
        let slice = BitslicePlan::compile(&plan, idx, &tuples, limits).expect("eligible");
        let sliced = slice.evaluate(&mem);
        let looped: Vec<OutcomeSet> = tuples
            .iter()
            .map(|args| {
                plan.enumerate(idx, args, &mem, limits, &mut machine)
                    .expect("enumerates")
            })
            .collect();
        assert_eq!(sliced, looped, "engines diverge on {label}:\n{module}");

        let n = tuples.len();
        println!("{label}: tuples={n} scripts={}", slice.scripts());
        let plan_t = r.bench(&format!("plan_{label}"), || {
            tuples
                .iter()
                .map(|args| {
                    plan.enumerate(idx, args, &mem, limits, &mut machine)
                        .expect("enumerates")
                        .len()
                })
                .sum::<usize>()
        });
        // Lowering runs once per (function, input set) under
        // `Engine::Auto` — a fixed per-function cost, reported on its
        // own line rather than folded into the per-tuple ratio.
        r.bench(&format!("bitslice_compile_{label}"), || {
            BitslicePlan::compile(&plan, idx, &tuples, limits)
                .expect("eligible")
                .scripts()
        });
        let eval_t = r.bench(&format!("bitslice_eval_{label}"), || {
            slice
                .evaluate(&mem)
                .iter()
                .map(OutcomeSet::len)
                .sum::<usize>()
        });
        let ratio = plan_t.best.as_nanos() as f64 / eval_t.best.as_nanos().max(1) as f64;
        println!("{label}: per-tuple speedup {ratio:.1}x");
        // Regression guard, deliberately below the measured margins
        // (4.9-5.1x deterministic, 5.2-6.9x nondeterministic) so
        // scheduler noise on a loaded CI box cannot flake it.
        let floor = if slice.scripts() > 1 { 3.0 } else { 2.0 };
        assert!(
            ratio >= floor,
            "bit-sliced evaluation regressed on {label}: {ratio:.2}x < {floor}x"
        );
    }
}
