//! E2 / §7.2 compile time as a Criterion bench: wall-clock frontend +
//! mid-end + backend time per pipeline mode, featuring the "Shootout
//! nestedloop" outlier workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frost_backend::compile_module;
use frost_bench::harness::frontend_options;
use frost_opt::{o2_pipeline, PipelineMode};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(20);
    for name in ["shootout_nestedloop", "stanford_queens", "sqlite3", "gcc"] {
        let w = frost_workloads::all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        for mode in
            [PipelineMode::Legacy, PipelineMode::Fixed, PipelineMode::FixedFreezeBlind]
        {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{mode:?}")),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let mut module =
                            w.compile(&frontend_options(mode)).expect("frontend");
                        o2_pipeline(mode).run(&mut module);
                        compile_module(&module).expect("backend")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
