//! E2 / §7.2 compile time as a micro-bench: wall-clock frontend +
//! mid-end + backend time per pipeline mode, featuring the "Shootout
//! nestedloop" outlier workload.

use frost_backend::compile_module;
use frost_bench::harness::frontend_options;
use frost_bench::Runner;
use frost_opt::{o2_pipeline, PipelineMode};

fn main() {
    let r = Runner::new();
    for name in ["shootout_nestedloop", "stanford_queens", "sqlite3", "gcc"] {
        let w = frost_workloads::all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        for mode in [
            PipelineMode::Legacy,
            PipelineMode::Fixed,
            PipelineMode::FixedFreezeBlind,
        ] {
            r.bench(&format!("compile/{name}/{mode:?}"), || {
                let mut module = w.compile(&frontend_options(mode)).expect("frontend");
                o2_pipeline(mode).run(&mut module);
                compile_module(&module).expect("backend")
            });
        }
    }
}
