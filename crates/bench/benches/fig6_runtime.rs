//! E1 / Figure 6 as a micro-bench: simulated run time of the
//! SPEC-shaped workloads under the legacy baseline and the freeze
//! prototype. The `repro --experiment fig6` binary prints the full
//! table; this bench tracks the same quantity statistically.

use frost_backend::{compile_module, CostModel, Simulator, MEM_BASE};
use frost_bench::{compile_workload, Runner};
use frost_opt::PipelineMode;
use frost_workloads::ArgSpec;

fn main() {
    let r = Runner::new();
    // A representative slice: the bit-field-heavy one, a CINT loop
    // kernel, and a CFP fixed-point kernel.
    let picks = ["gcc", "libquantum", "milc"];
    for name in picks {
        let w = frost_workloads::all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        for mode in [PipelineMode::Legacy, PipelineMode::Fixed] {
            let (module, _, _) = compile_workload(&w, mode).expect("compiles");
            let mm = compile_module(&module).expect("backend");
            let args: Vec<u64> = w
                .args
                .iter()
                .map(|a| match a {
                    ArgSpec::Int(v) => *v,
                    ArgSpec::Ptr(off) => MEM_BASE + u64::from(*off),
                })
                .collect();
            let mem = w.init_memory();
            r.bench(&format!("simulate/{name}/{mode:?}"), || {
                let mut sim = Simulator::new(&mm, CostModel::machine1(), mem.len());
                sim.mem.copy_from_slice(&mem);
                sim.run(w.entry, &args).expect("runs").cycles
            });
        }
    }
}
