//! Microbench for the analysis manager: the `-O2` pipeline with cached
//! analyses vs the same pipeline with every analysis request forced to
//! recompute, on SPEC-shaped workloads.
//!
//! The cached configuration is the production default
//! ([`ModuleAnalysisManager::new`]); the forced configuration
//! ([`ModuleAnalysisManager::with_forced_recompute`]) models the old
//! world where each loop pass rebuilt its own dominator tree and loop
//! forest. The printed `speedup` line is the best-sample ratio
//! forced/cached — above 1.0 means caching pays.

use frost_bench::harness::frontend_options;
use frost_bench::Runner;
use frost_ir::ModuleAnalysisManager;
use frost_opt::{o2_pipeline, PipelineMode};

fn main() {
    let r = Runner::new();
    let mode = PipelineMode::Fixed;
    let pipeline = o2_pipeline(mode);
    for name in ["stanford_queens", "sqlite3", "gcc", "shootout_nestedloop"] {
        let w = frost_workloads::all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        let module = w.compile(&frontend_options(mode)).expect("frontend");
        let cached = r.bench(&format!("o2/{name}/cached"), || {
            let mut m = module.clone();
            let mut mam = ModuleAnalysisManager::new();
            pipeline.run_with(&mut m, &mut mam);
            m
        });
        let forced = r.bench(&format!("o2/{name}/recompute"), || {
            let mut m = module.clone();
            let mut mam = ModuleAnalysisManager::with_forced_recompute();
            pipeline.run_with(&mut m, &mut mam);
            m
        });
        let speedup = forced.best.as_secs_f64() / cached.best.as_secs_f64();
        println!("o2/{name}: cache speedup {speedup:.2}x (best-sample ratio)");
    }
}
