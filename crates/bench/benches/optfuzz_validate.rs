//! E5 / §6 as a Criterion bench: throughput of the opt-fuzz +
//! refinement-checking loop (generation, optimization, exhaustive
//! outcome comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use frost_core::Semantics;
use frost_fuzz::{enumerate_functions, validate_transform, GenConfig};
use frost_opt::{Dce, InstCombine, Pass, PipelineMode};

fn bench_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("optfuzz_validate");
    group.sample_size(10);

    group.bench_function("instcombine_fixed_50fns_i2", |b| {
        b.iter(|| {
            let cfg = GenConfig::arithmetic(2);
            let report = validate_transform(
                enumerate_functions(cfg).step_by(997).take(50),
                Semantics::proposed(),
                |m| {
                    for f in &mut m.functions {
                        InstCombine::new(PipelineMode::Fixed).run_on_function(f);
                        Dce::new().run_on_function(f);
                        f.compact();
                    }
                },
            );
            assert!(report.is_clean());
            report.total
        })
    });

    group.bench_function("generation_only_5000fns", |b| {
        b.iter(|| enumerate_functions(GenConfig::arithmetic(2)).take(5000).count())
    });

    group.finish();
}

criterion_group!(benches, bench_validate);
criterion_main!(benches);
