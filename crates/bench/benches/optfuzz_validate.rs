//! E5 / §6 as a micro-bench: throughput of the opt-fuzz +
//! refinement-checking loop, and the parallel-campaign speedup.
//!
//! The headline comparison pits a 1-worker campaign against a 4-worker
//! campaign on the same fixed-seed corpus (identical verdicts by
//! construction) and prints the speedup; the sharded engine is expected
//! to clear 2x on any 4-core machine.

use frost_bench::Runner;
use frost_core::Semantics;
use frost_fuzz::{enumerate_functions, validate_transform, Campaign, GenConfig};
use frost_opt::{o2_pipeline, Dce, InstCombine, Pass, PipelineMode};

fn main() {
    let r = Runner::new();

    r.bench("instcombine_fixed_50fns_i2", || {
        let cfg = GenConfig::arithmetic(2);
        let report = validate_transform(
            enumerate_functions(cfg).step_by(997).take(50),
            Semantics::proposed(),
            |m| {
                for f in &mut m.functions {
                    InstCombine::new(PipelineMode::Fixed).apply(f);
                    Dce::new().apply(f);
                    f.compact();
                }
            },
        );
        assert!(report.is_clean());
        report.total
    });

    r.bench("generation_only_5000fns", || {
        enumerate_functions(GenConfig::arithmetic(2))
            .take(5000)
            .count()
    });

    // The campaign-engine comparison: same seed, same corpus, same
    // verdicts — only the worker count changes.
    let cfg = GenConfig::with_selects(3);
    let seed = 20170618; // PLDI 2017
    let count = 600;
    let campaign = |workers: usize| {
        Campaign::new(Semantics::proposed())
            .with_workers(workers)
            .with_shard_size(16)
            .run_random(&cfg, seed, count, |m| {
                o2_pipeline(PipelineMode::Fixed).run(m);
            })
    };

    let seq = r.bench("campaign_600fns_o2_1worker", || {
        let report = campaign(1);
        assert!(report.is_clean());
        report.total
    });
    let par = r.bench("campaign_600fns_o2_4workers", || {
        let report = campaign(4);
        assert!(report.is_clean());
        report.total
    });

    let speedup = seq.median.as_secs_f64() / par.median.as_secs_f64().max(1e-9);
    let one = campaign(1);
    let four = campaign(4);
    assert_eq!(
        one.violations, four.violations,
        "worker count must not change the verdicts"
    );
    println!(
        "parallel speedup (4 workers vs 1): {speedup:.2}x  \
         [{:.0} -> {:.0} fn/s]",
        one.stats.functions_per_sec, four.stats.functions_per_sec
    );
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        >= 4
    {
        assert!(
            speedup >= 2.0,
            "expected >=2x campaign speedup at 4 workers, got {speedup:.2}x"
        );
    }
}
