//! Print → parse → `FunctionKey` roundtrip fidelity, test-suite sized.
//!
//! The full gate (`repro -e roundtrip`, wired into scripts/ci.sh) runs
//! the *unsampled* §6 spaces plus a 10k fuzz sample; this integration
//! test keeps `cargo test` fast with a strided sample of the same
//! corpora, the same oracle: every function must survive printing and
//! re-parsing with its [`frost_ir::FunctionKey`] intact.

use frost_bench::experiments;
use frost_fuzz::{enumerate_functions, random_functions, GenConfig};
use frost_ir::check_roundtrip;

fn assert_all_roundtrip(fns: impl IntoIterator<Item = frost_ir::Function>) -> usize {
    let mut n = 0;
    for f in fns {
        if let Err(e) = check_roundtrip(&f) {
            panic!("roundtrip failed for @{}: {e}", f.name);
        }
        n += 1;
    }
    n
}

#[test]
fn strided_exhaustive_corpus_roundtrips() {
    // ~2.6M functions in the full 2-inst space; a stride of 1009 (prime,
    // so it doesn't resonate with the mixed-radix generator) keeps this
    // to ~2600 while still crossing every operand/flag dimension.
    let n = assert_all_roundtrip(enumerate_functions(GenConfig::arithmetic(2)).step_by(1009));
    assert!(n > 2000, "stride sampled only {n} functions");
}

#[test]
fn exhaustive_one_inst_spaces_roundtrip_completely() {
    for cfg in [
        GenConfig::arithmetic(1),
        GenConfig::arithmetic(1).with_undef(),
        GenConfig::with_selects(1),
    ] {
        assert_all_roundtrip(enumerate_functions(cfg));
    }
}

#[test]
fn random_deep_functions_roundtrip() {
    for cfg in [
        GenConfig::arithmetic(3),
        GenConfig::with_selects(3),
        GenConfig::with_selects(3).with_undef(),
    ] {
        let n = assert_all_roundtrip(random_functions(cfg, 20170618, 500));
        assert_eq!(n, 500);
    }
}

#[test]
fn workload_modules_roundtrip_before_and_after_o2() {
    // Loads, stores, geps, phis across loop headers, casts, calls,
    // vectors — the instruction surface the i2 spaces don't reach.
    use frost_bench::compile_workload;
    use frost_opt::PipelineMode;
    use frost_workloads::all_workloads;

    for w in all_workloads() {
        let raw = w
            .compile(&frost_bench::harness::frontend_options(PipelineMode::Fixed))
            .expect("workload compiles");
        let (opt, _, _) = compile_workload(&w, PipelineMode::Fixed).expect("workload optimizes");
        let n = assert_all_roundtrip(raw.functions.into_iter().chain(opt.functions));
        assert!(n >= 2, "workload {} produced {n} functions", w.name);
    }
}

#[test]
fn roundtrip_gate_summary_is_greppable() {
    // The ci.sh gate greps for this exact shape; pin it here so a
    // reworded summary can't silently disarm the gate.
    let (_, summary) = experiments::roundtrip(30, true).expect("gate runs");
    assert!(
        summary.contains("mismatches=0"),
        "summary changed shape or found mismatches: {summary}"
    );
    assert!(summary.starts_with("roundtrip: checked="), "{summary}");
}
