//! # frost-rng
//!
//! A tiny, fully deterministic pseudo-random number generator for
//! frost's fuzzing campaigns and property tests. The build environment
//! is offline, so the workspace carries its own generator instead of
//! depending on the `rand` crate: [`SmallRng`] is xoshiro256++ seeded
//! through SplitMix64, the same construction `rand`'s `SmallRng` uses
//! on 64-bit targets.
//!
//! Determinism is a *feature* here, not an accident: validation
//! campaigns key their reproducibility guarantees on "same seed ⇒ same
//! function stream", independent of thread count or platform. Every
//! method below is pure integer arithmetic with no global state.
//!
//! ```
//! use frost_rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(42);
//! let mut b = SmallRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// SplitMix64: the seed-expansion generator (public because campaign
/// sharding uses it to derive independent per-shard seeds).
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographically secure; statistically solid for fuzzing and
/// sampling. Copy-free reseeding via [`SmallRng::seed_from_u64`] makes
/// per-shard derivation cheap.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, so
    /// even seeds 0, 1, 2… give well-mixed states).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(sm.wrapping_sub(0x9E37_79B9_7F4A_7C15));
        }
        // All-zero state would be a fixed point; SplitMix64 of any seed
        // cannot produce four zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 128 uniformly distributed bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        // Debiased multiply-shift (Lemire): uniform without modulo bias.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(span);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(span);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as usize
    }

    /// `true` with probability `num / denom` (exact rational, avoiding
    /// floating point so cross-platform streams stay identical).
    pub fn gen_ratio(&mut self, num: u32, denom: u32) -> bool {
        assert!(
            denom > 0 && num <= denom,
            "gen_ratio needs num <= denom, denom > 0"
        );
        if num == denom {
            return true;
        }
        (self.gen_range(0..denom as usize) as u32) < num
    }

    /// A uniformly random boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SmallRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 draws must cover all 10 values"
        );
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn splitmix_is_a_good_shard_mixer() {
        // Adjacent shard indices must map to distant seeds.
        let seeds: Vec<u64> = (0..64).map(splitmix64).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn zero_seed_works() {
        let mut rng = SmallRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }
}
