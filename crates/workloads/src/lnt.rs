//! The LNT-like micro suite: small kernels in the style of the LLVM
//! Nightly Tests / Benchmark Game programs, including the two §7.2
//! protagonists — "Shootout nestedloop" (the compile-time outlier) and
//! "Stanford Queens" (the run-time outlier).

use crate::{ArgSpec, Suite, Workload};

fn k(name: &'static str, source: &str, args: Vec<ArgSpec>, mem: u32, seed: u64) -> Workload {
    Workload {
        name,
        suite: Suite::Lnt,
        source: source.to_string(),
        entry: "run",
        args,
        mem_bytes: mem,
        mem_seed: seed,
    }
}

/// The Stanford Queens program: counts N-queens solutions with the
/// classic column/diagonal occupancy arrays.
pub fn queens() -> Workload {
    k(
        "stanford_queens",
        r#"
struct stats {
    unsigned solutions : 12;
    unsigned nodes : 20;
};
int place(int *cols, int *d1, int *d2, struct stats *st, int n, int row) {
    if (row == n) {
        st->solutions = st->solutions + 1;
        return 1;
    }
    int found = 0;
    for (int c = 0; c < n; c++) {
        if (cols[c] == 0 && d1[row + c] == 0 && d2[row - c + n] == 0) {
            cols[c] = 1; d1[row + c] = 1; d2[row - c + n] = 1;
            found += place(cols, d1, d2, st, n, row + 1);
            cols[c] = 0; d1[row + c] = 0; d2[row - c + n] = 0;
        }
    }
    return found;
}
int run(int *cols, int *d1, int *d2, struct stats *st, int n) {
    int total = 0;
    for (int rep = 0; rep < 3; rep++) {
        for (int i = 0; i < n; i++) cols[i] = 0;
        for (int i = 0; i < 2 * n; i++) { d1[i] = 0; d2[i] = 0; }
        total += place(cols, d1, d2, st, n, 0);
    }
    return total;
}
"#,
        vec![
            ArgSpec::Ptr(0),
            ArgSpec::Ptr(64),
            ArgSpec::Ptr(192),
            ArgSpec::Ptr(320),
            ArgSpec::Int(8),
        ],
        328,
        0,
    )
}

/// The micro suite.
pub fn suite() -> Vec<Workload> {
    let mut v = vec![
        queens(),
        // The §7.2 compile-time outlier: tiny file, deeply nested loops.
        k(
            "shootout_nestedloop",
            r#"
int run(int n) {
    int x = 0;
    for (int a = 0; a < n; a++)
        for (int b = 0; b < n; b++)
            for (int c = 0; c < n; c++)
                for (int d = 0; d < n; d++)
                    x++;
    return x;
}
"#,
            vec![ArgSpec::Int(12)],
            0,
            0,
        ),
        k(
            "fib",
            r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int run(int n) { return fib(n); }
"#,
            vec![ArgSpec::Int(17)],
            0,
            0,
        ),
        k(
            "ackermann",
            r#"
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int run(void) { return ack(2, 6); }
"#,
            vec![],
            0,
            0,
        ),
        k(
            "sieve",
            r#"
int run(char *flags, int n) {
    int count = 0;
    for (int i = 0; i < n; i++) flags[i] = 1;
    for (int i = 2; i < n; i++) {
        if (flags[i] != 0) {
            count++;
            for (int j = i + i; j < n; j += i) flags[j] = 0;
        }
    }
    return count;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(4096)],
            4096,
            0,
        ),
        k(
            "matrix",
            r#"
int run(int *a, int *b, int *c, int n) {
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++) {
            int s = 0;
            for (int kk = 0; kk < n; kk++)
                s += (a[i * n + kk] & 255) * (b[kk * n + j] & 255);
            c[i * n + j] = s;
        }
    int t = 0;
    for (int i = 0; i < n * n; i++) t ^= c[i];
    return t;
}
"#,
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(1024),
                ArgSpec::Ptr(2048),
                ArgSpec::Int(16),
            ],
            3072,
            0x3a3a,
        ),
        k(
            "bitcount",
            r#"
int run(unsigned *data, int n) {
    int bits = 0;
    for (int i = 0; i < n; i++) {
        unsigned v = data[i];
        while (v != 0u) {
            v = v & (v - 1u);
            bits++;
        }
    }
    return bits;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(512)],
            2048,
            0xb17c,
        ),
        k(
            "bubblesort",
            r#"
int run(int *a, int n) {
    for (int i = 0; i < n; i++)
        for (int j = 0; j + 1 < n - i; j++)
            if (a[j] > a[j + 1]) {
                int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
            }
    return a[0] ^ a[n / 2] ^ a[n - 1];
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(160)],
            640,
            0xb0b5,
        ),
        k(
            "quicksort",
            r#"
void qs(int *a, int lo, int hi) {
    if (lo >= hi) return;
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            int t = a[i]; a[i] = a[j]; a[j] = t;
            i++; j--;
        }
    }
    qs(a, lo, j);
    qs(a, i, hi);
}
int run(int *a, int n) {
    qs(a, 0, n - 1);
    int inversions = 0;
    for (int i = 0; i + 1 < n; i++) if (a[i] > a[i + 1]) inversions++;
    return inversions;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(300)],
            1200,
            0x9055,
        ),
        k(
            "gcd_chain",
            r#"
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
int run(int n) {
    int acc = 0;
    for (int i = 1; i < n; i++)
        acc += gcd(i * 7919 & 65535, i * 104729 & 65535);
    return acc;
}
"#,
            vec![ArgSpec::Int(500)],
            0,
            0,
        ),
        k(
            "collatz",
            r#"
int run(int limit) {
    int longest = 0;
    for (int s = 1; s < limit; s++) {
        long v = (long)s;
        int len = 0;
        while (v != 1L && v < 100000000L && len < 500) {
            if ((v & 1L) == 0L) { v = v / 2L; } else { v = 3L * v + 1L; }
            len++;
        }
        if (len > longest) longest = len;
    }
    return longest;
}
"#,
            vec![ArgSpec::Int(400)],
            0,
            0,
        ),
        k(
            "crc32",
            r#"
unsigned run(char *data, int n) {
    unsigned crc = 0xffffffffu;
    for (int i = 0; i < n; i++) {
        crc = crc ^ (unsigned)((int)data[i] & 255);
        for (int b2 = 0; b2 < 8; b2++) {
            unsigned low = crc & 1u;
            crc = crc >> 1;
            if (low != 0u) crc = crc ^ 0xedb88320u;
        }
    }
    return ~crc;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(2048)],
            2048,
            0xcc32,
        ),
        k(
            "fannkuch",
            r#"
int run(int *perm, int *tmp, int n) {
    for (int i = 0; i < n; i++) perm[i] = i;
    int maxflips = 0;
    for (int iter = 0; iter < 200; iter++) {
        for (int i = 0; i < n; i++) tmp[i] = perm[i];
        int flips = 0;
        int first = tmp[0];
        while (first != 0) {
            int hi = first;
            for (int lo = 0; lo < hi; lo++) {
                int t = tmp[lo]; tmp[lo] = tmp[hi]; tmp[hi] = t;
                hi--;
            }
            flips++;
            first = tmp[0];
        }
        if (flips > maxflips) maxflips = flips;
        int rot = perm[0];
        int r = iter % (n - 1) + 1;
        for (int i = 0; i < r; i++) perm[i] = perm[i + 1];
        perm[r] = rot;
    }
    return maxflips;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(64), ArgSpec::Int(9)],
            128,
            0,
        ),
        k(
            "nbody_fixed",
            r#"
long run(long *px, long *py, long *vx, long *vy, int n, int steps) {
    for (int i = 0; i < n; i++) {
        px[i] = px[i] & 65535L; py[i] = py[i] & 65535L;
        vx[i] = 0L; vy[i] = 0L;
    }
    for (int s = 0; s < steps; s++) {
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
                if (i != j) {
                    long dx = px[j] - px[i];
                    long dy = py[j] - py[i];
                    long d2 = dx * dx + dy * dy + 256L;
                    vx[i] += (dx << 8) / d2;
                    vy[i] += (dy << 8) / d2;
                }
        for (int i = 0; i < n; i++) { px[i] += vx[i] >> 4; py[i] += vy[i] >> 4; }
    }
    long h = 0L;
    for (int i = 0; i < n; i++) h ^= px[i] + py[i];
    return h;
}
"#,
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(256),
                ArgSpec::Ptr(512),
                ArgSpec::Ptr(768),
                ArgSpec::Int(24),
                ArgSpec::Int(30),
            ],
            1024,
            0xbd11,
        ),
        k(
            "spectral_fixed",
            r#"
long a_elem(int i, int j) {
    return 65536L / (long)((i + j) * (i + j + 1) / 2 + i + 1);
}
long run(long *u, long *v, int n) {
    for (int i = 0; i < n; i++) u[i] = 65536L;
    for (int it = 0; it < 8; it++) {
        for (int i = 0; i < n; i++) {
            long s = 0L;
            for (int j = 0; j < n; j++) s += (a_elem(i, j) * u[j]) >> 16;
            v[i] = s;
        }
        for (int i = 0; i < n; i++) u[i] = v[i];
    }
    long h = 0L;
    for (int i = 0; i < n; i++) h += u[i];
    return h;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(512), ArgSpec::Int(64)],
            1024,
            0,
        ),
        k(
            "strreverse",
            r#"
int run(char *s, int n, int rounds) {
    for (int r = 0; r < rounds; r++) {
        int j = n - 1;
        for (int i = 0; i < j; i++) {
            char t = s[i]; s[i] = s[j]; s[j] = t;
            j--;
        }
    }
    int h = 0;
    for (int i = 0; i < n; i++) h = h * 31 + ((int)s[i] & 255) & 16777215;
    return h;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(1024), ArgSpec::Int(50)],
            1024,
            0x5335,
        ),
        k(
            "hanoi",
            r#"
int hanoi(int n, int from, int to, int via) {
    if (n == 0) return 0;
    return hanoi(n - 1, from, via, to) + 1 + hanoi(n - 1, via, to, from);
}
int run(int n) { return hanoi(n, 0, 2, 1); }
"#,
            vec![ArgSpec::Int(14)],
            0,
            0,
        ),
        k(
            "isqrt_sum",
            r#"
int isqrt(int x) {
    int r = 0;
    while ((r + 1) * (r + 1) <= x) r++;
    return r;
}
int run(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += isqrt(i);
    return s;
}
"#,
            vec![ArgSpec::Int(3000)],
            0,
            0,
        ),
        k(
            "josephus",
            r#"
int run(int n, int step) {
    int survivor = 0;
    for (int m = 2; m <= n; m++) survivor = (survivor + step) % m;
    return survivor;
}
"#,
            vec![ArgSpec::Int(20000), ArgSpec::Int(7)],
            0,
            0,
        ),
        k(
            "shellsort",
            r#"
int run(int *a, int n) {
    for (int gap = n / 2; gap > 0; gap = gap / 2) {
        for (int i = gap; i < n; i++) {
            int t = a[i];
            int j = i;
            while (j >= gap && a[j - gap] > t) {
                a[j] = a[j - gap];
                j -= gap;
            }
            a[j] = t;
        }
    }
    return a[0] ^ a[n - 1] ^ a[n / 3];
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(400)],
            1600,
            0x5e11,
        ),
        k(
            "adler32",
            r#"
unsigned run(char *data, int n) {
    unsigned a = 1u;
    unsigned b = 0u;
    for (int i = 0; i < n; i++) {
        a = (a + (unsigned)((int)data[i] & 255)) % 65521u;
        b = (b + a) % 65521u;
    }
    return (b << 16) | a;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(4096)],
            4096,
            0xad1e,
        ),
        k(
            "dotproduct",
            r#"
long run(int *a, int *b, int n, int rounds) {
    long acc = 0L;
    for (int r = 0; r < rounds; r++)
        for (int i = 0; i < n; i++)
            acc += (long)(a[i] & 4095) * (long)(b[i] & 4095);
    return acc;
}
"#,
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(2048),
                ArgSpec::Int(512),
                ArgSpec::Int(40),
            ],
            4096,
            0xd07b,
        ),
        k(
            "histogram",
            r#"
int run(char *data, int *bins, int n) {
    for (int i = 0; i < 256; i++) bins[i] = 0;
    for (int i = 0; i < n; i++) bins[(int)data[i] & 255]++;
    int maxbin = 0;
    for (int i = 0; i < 256; i++) if (bins[i] > maxbin) maxbin = bins[i];
    return maxbin;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(8192), ArgSpec::Int(8192)],
            8192 + 1024,
            0x4157,
        ),
        k(
            "rle",
            r#"
int run(char *input, char *output, int n) {
    int out = 0;
    int i = 0;
    while (i < n) {
        char c = input[i];
        int runlen = 1;
        while (i + runlen < n && input[i + runlen] == c && runlen < 255) runlen++;
        output[out] = (char)runlen;
        output[out + 1] = c;
        out += 2;
        i += runlen;
    }
    return out;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(4096), ArgSpec::Int(4096)],
            4096 + 8192,
            0x41e1,
        ),
        k(
            "popcnt_table",
            r#"
int run(char *table, unsigned *data, int n) {
    for (int i = 0; i < 256; i++) {
        int c = 0;
        int v = i;
        while (v != 0) { c += v & 1; v = v >> 1; }
        table[i] = (char)c;
    }
    int total = 0;
    for (int i = 0; i < n; i++) {
        unsigned v = data[i];
        total += (int)table[(int)(v & 255u)];
        total += (int)table[(int)((v >> 8) & 255u)];
        total += (int)table[(int)((v >> 16) & 255u)];
        total += (int)table[(int)((v >> 24) & 255u)];
    }
    return total;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(256), ArgSpec::Int(1024)],
            256 + 4096,
            0x90bc,
        ),
    ];
    v.shrink_to_fit();
    v
}
