//! SPEC CPU 2006-shaped kernels, one per C/C++ benchmark the paper
//! evaluates (§7.1). Each kernel is a distinct algorithm evoking its
//! namesake's hot loop; CFP benchmarks are fixed-point (Q16)
//! integer-izations, per the substitution table in DESIGN.md.

use crate::{ArgSpec, Suite, Workload};

fn w(
    name: &'static str,
    suite: Suite,
    source: &str,
    entry: &'static str,
    args: Vec<ArgSpec>,
    mem_bytes: u32,
    mem_seed: u64,
) -> Workload {
    Workload {
        name,
        suite,
        source: source.to_string(),
        entry,
        args,
        mem_bytes,
        mem_seed,
    }
}

/// The 12 CINT workloads.
pub fn cint() -> Vec<Workload> {
    vec![
        // perlbench: string hashing over a byte buffer (hash tables are
        // the interpreter's hot path).
        w(
            "perlbench",
            Suite::SpecInt,
            r#"
unsigned run(char *s, int n) {
    unsigned h = 5381u;
    for (int round = 0; round < 40; round++) {
        for (int i = 0; i < n; i++) {
            h = (h << 5) + h + (unsigned)s[i];
            h = h ^ (h >> 13);
        }
    }
    return h;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(512)],
            512,
            0x9e37,
        ),
        // bzip2: move-to-front coding.
        w(
            "bzip2",
            Suite::SpecInt,
            r#"
unsigned run(char *data, char *mtf, int n) {
    for (int i = 0; i < 256; i++) mtf[i] = (char)i;
    unsigned acc = 0u;
    for (int round = 0; round < 12; round++) {
        for (int i = 0; i < n; i++) {
            int c = (int)data[i] & 255;
            int j = 0;
            while (((int)mtf[j] & 255) != c) j++;
            acc += (unsigned)j;
            while (j > 0) { mtf[j] = mtf[j - 1]; j--; }
            mtf[0] = (char)c;
        }
    }
    return acc;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(2048), ArgSpec::Int(768)],
            2048 + 256,
            0xb217,
        ),
        // gcc: bit-field-dense instruction records (the §7.2 freeze-count
        // driver lives in the single-file suite; this kernel flips RTL-ish
        // flag words).
        w(
            "gcc",
            Suite::SpecInt,
            r#"
struct rtx {
    unsigned code : 8;
    unsigned mode : 5;
    unsigned jump : 1;
    unsigned call : 1;
    unsigned unchanging : 1;
    unsigned volatil : 1;
    unsigned in_struct : 1;
    unsigned used : 1;
    unsigned frame_related : 1;
};
unsigned fold_word(unsigned word) {
    unsigned h = word * 2654435761u;
    h = h ^ (h >> 15);
    h = h * 2246822519u;
    return h ^ (h >> 13);
}
unsigned decode(struct rtx *r, unsigned word) {
    r->code = (int)(word & 255u);
    r->mode = (int)((word >> 8) & 31u);
    r->jump = (int)((word >> 13) & 1u);
    r->call = (int)((word >> 14) & 1u);
    r->used = (int)((word >> 15) & 1u);
    if (r->jump != 0) { r->volatil = 1; } else { r->volatil = 0; }
    return (unsigned)(r->code + r->mode * 3 + r->used);
}
unsigned run(struct rtx *r, unsigned *insns, int n) {
    unsigned live = 0u;
    for (int pass = 0; pass < 10; pass++) {
        for (int i = 0; i < n; i++) {
            unsigned word = fold_word(insns[i]);
            live += decode(r, word);
            live = live ^ (live >> 11);
            insns[i] = insns[i] + live;
        }
    }
    return live;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(16), ArgSpec::Int(240)],
            16 + 960,
            0x6cc0,
        ),
        // mcf: Bellman-Ford-ish relaxation over a small graph in arrays.
        w(
            "mcf",
            Suite::SpecInt,
            r#"
int run(int *dist, int *from, int *to, int *cost, int nodes, int edges) {
    for (int i = 1; i < nodes; i++) dist[i] = 1000000;
    dist[0] = 0;
    for (int round = 0; round < nodes; round++) {
        for (int e = 0; e < edges; e++) {
            int f = from[e] % nodes;
            int t = to[e] % nodes;
            int c = (cost[e] & 1023) + 1;
            if (f < 0) f = 0 - f;
            if (t < 0) t = 0 - t;
            if (dist[f] + c < dist[t]) dist[t] = dist[f] + c;
        }
    }
    int sum = 0;
    for (int i = 0; i < nodes; i++) sum += dist[i] & 65535;
    return sum;
}
"#,
            "run",
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(512),
                ArgSpec::Ptr(2560),
                ArgSpec::Ptr(4608),
                ArgSpec::Int(128),
                ArgSpec::Int(512),
            ],
            512 + 2048 + 2048 + 2048,
            0x3cf1,
        ),
        // gobmk: liberty counting on a Go-like board.
        w(
            "gobmk",
            Suite::SpecInt,
            r#"
int run(char *board, int size) {
    int libs = 0;
    for (int round = 0; round < 60; round++) {
        for (int y = 1; y < size - 1; y++) {
            for (int x = 1; x < size - 1; x++) {
                int idx = y * size + x;
                if (((int)board[idx] & 3) == 1) {
                    if (((int)board[idx - 1] & 3) == 0) libs++;
                    if (((int)board[idx + 1] & 3) == 0) libs++;
                    if (((int)board[idx - size] & 3) == 0) libs++;
                    if (((int)board[idx + size] & 3) == 0) libs++;
                }
            }
        }
    }
    return libs;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(19)],
            19 * 19,
            0x60b0,
        ),
        // hmmer: Viterbi-style dynamic programming band.
        w(
            "hmmer",
            Suite::SpecInt,
            r#"
int max2(int a, int b) { return a > b ? a : b; }
int run(int *vrow, int *seq, int cols, int rows) {
    for (int j = 0; j < cols; j++) vrow[j] = 0;
    for (int i = 1; i < rows; i++) {
        int prev = vrow[0];
        for (int j = 1; j < cols; j++) {
            int emit = (seq[(i * cols + j) % cols] & 15) - 7;
            int best = max2(vrow[j], max2(vrow[j - 1], prev));
            prev = vrow[j];
            vrow[j] = max2(0, best + emit);
        }
    }
    int best = 0;
    for (int j = 0; j < cols; j++) best = max2(best, vrow[j]);
    return best;
}
"#,
            "run",
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(1024),
                ArgSpec::Int(256),
                ArgSpec::Int(220),
            ],
            1024 + 1024,
            0x4a3e,
        ),
        // sjeng: alpha-beta-ish recursive searcher over a hashed position.
        w(
            "sjeng",
            Suite::SpecInt,
            r#"
int search(unsigned pos, int depth, int alpha, int beta) {
    if (depth == 0) {
        int sc = (int)(pos & 255u) - 128;
        return sc;
    }
    int best = alpha;
    for (int m = 0; m < 4; m++) {
        unsigned next = pos * 1664525u + (unsigned)m * 1013904223u;
        int sc = 0 - search(next, depth - 1, 0 - beta, 0 - best);
        if (sc > best) best = sc;
        if (best >= beta) return best;
    }
    return best;
}
int run(int seeds) {
    int total = 0;
    for (int i = 0; i < seeds; i++) {
        total += search((unsigned)i * 2654435761u, 5, -30000, 30000);
    }
    return total;
}
"#,
            "run",
            vec![ArgSpec::Int(24)],
            0,
            0,
        ),
        // libquantum: toggling amplitude sign bits across a register file.
        w(
            "libquantum",
            Suite::SpecInt,
            r#"
unsigned run(unsigned *state, int n, int target) {
    unsigned parity = 0u;
    for (int round = 0; round < 220; round++) {
        unsigned mask = 1u << (unsigned)(target % 31);
        for (int i = 0; i < n; i++) {
            if (state[i] & mask) state[i] = state[i] ^ 0x80000000u;
            state[i] = state[i] ^ (state[i] >> 16);
            parity = parity ^ state[i];
        }
        target = target + 1;
    }
    return parity;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(256), ArgSpec::Int(3)],
            1024,
            0x71ba,
        ),
        // h264ref: sum of absolute differences over 8x8 blocks.
        w(
            "h264ref",
            Suite::SpecInt,
            r#"
int run(char *cur, char *ref, int width, int blocks) {
    int sad_total = 0;
    for (int b = 0; b < blocks; b++) {
        int bx = (b * 8) % (width - 8);
        int sad = 0;
        for (int y = 0; y < 8; y++) {
            for (int x = 0; x < 8; x++) {
                int c = (int)cur[y * width + bx + x] & 255;
                int r = (int)ref[y * width + bx + x] & 255;
                int d = c - r;
                if (d < 0) d = 0 - d;
                sad += d;
            }
        }
        sad_total += sad;
    }
    return sad_total;
}
"#,
            "run",
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(2048),
                ArgSpec::Int(128),
                ArgSpec::Int(600),
            ],
            4096,
            0x8264,
        ),
        // omnetpp: binary-heap event queue churn.
        w(
            "omnetpp",
            Suite::SpecInt,
            r#"
unsigned run(int *heap, int cap, int events) {
    int size = 0;
    unsigned acc = 0u;
    unsigned rng = 12345u;
    for (int e = 0; e < events; e++) {
        rng = rng * 1103515245u + 12345u;
        if (size < cap && ((rng >> 16) & 1u)) {
            int t = (int)((rng >> 8) & 4095u);
            int i = size;
            heap[i] = t;
            size = size + 1;
            while (i > 0 && heap[(i - 1) / 2] > heap[i]) {
                int p = (i - 1) / 2;
                int tmp = heap[p]; heap[p] = heap[i]; heap[i] = tmp;
                i = p;
            }
        } else if (size > 0) {
            acc += (unsigned)heap[0];
            size = size - 1;
            heap[0] = heap[size];
            int i = 0;
            int done = 0;
            while (done == 0) {
                int l = 2 * i + 1;
                int r = 2 * i + 2;
                int m = i;
                if (l < size && heap[l] < heap[m]) m = l;
                if (r < size && heap[r] < heap[m]) m = r;
                if (m == i) { done = 1; }
                else {
                    int tmp = heap[m]; heap[m] = heap[i]; heap[i] = tmp;
                    i = m;
                }
            }
        }
    }
    return acc;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(256), ArgSpec::Int(3000)],
            1024,
            0,
        ),
        // astar: grid relaxation sweeps.
        w(
            "astar",
            Suite::SpecInt,
            r#"
int run(int *g, int *cost, int size) {
    for (int i = 0; i < size * size; i++) g[i] = 1000000;
    g[0] = 0;
    for (int sweep = 0; sweep < 10; sweep++) {
        for (int y = 0; y < size; y++) {
            for (int x = 0; x < size; x++) {
                int i = y * size + x;
                int c = (cost[i] & 7) + 1;
                int best = g[i];
                if (x > 0 && g[i - 1] + c < best) best = g[i - 1] + c;
                if (y > 0 && g[i - size] + c < best) best = g[i - size] + c;
                if (x < size - 1 && g[i + 1] + c < best) best = g[i + 1] + c;
                if (y < size - 1 && g[i + size] + c < best) best = g[i + size] + c;
                g[i] = best;
            }
        }
    }
    return g[size * size - 1];
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(4096), ArgSpec::Int(32)],
            8192,
            0xa57a,
        ),
        // xalancbmk: traversal of an implicit binary tree with string-ish
        // tag matching.
        w(
            "xalancbmk",
            Suite::SpecInt,
            r#"
int run(int *tags, int n, int needle) {
    int matches = 0;
    for (int round = 0; round < 200; round++) {
        int i = 0;
        while (i < n) {
            int tag = tags[i] & 1023;
            if (tag == needle) matches++;
            if (tag < needle) { i = 2 * i + 1; } else { i = 2 * i + 2; }
        }
        needle = (needle + 7) & 1023;
    }
    return matches;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(1024), ArgSpec::Int(17)],
            4096,
            0xa1a,
        ),
    ]
}

/// The 7 CFP workloads, integer-ized (Q16 fixed point).
pub fn cfp() -> Vec<Workload> {
    vec![
        // milc: SU(3)-flavoured 3x3 "matrix" times vector in fixed point.
        w(
            "milc",
            Suite::SpecFp,
            r#"
long qmul(long a, long b) { return (a * b) >> 16; }
long run(long *m, long *v, int sites) {
    long acc = 0L;
    for (int s = 0; s < sites; s++) {
        for (int row = 0; row < 3; row++) {
            long sum = 0L;
            for (int col = 0; col < 3; col++) {
                long mv = (m[(s * 9 + row * 3 + col) % 72] & 131071L) - 65536L;
                long vv = (v[(s * 3 + col) % 24] & 131071L) - 65536L;
                sum += qmul(mv, vv);
            }
            acc += sum & 1048575L;
        }
    }
    return acc;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(576), ArgSpec::Int(1500)],
            576 + 192,
            0x111c,
        ),
        // namd: pairwise force accumulation with cutoff.
        w(
            "namd",
            Suite::SpecFp,
            r#"
long run(long *x, long *y, int n) {
    long fx = 0L;
    for (int i = 0; i < n; i++) {
        for (int j = i + 1; j < n; j++) {
            long dx = (x[i] & 8191L) - (x[j] & 8191L);
            long dy = (y[i] & 8191L) - (y[j] & 8191L);
            long r2 = dx * dx + dy * dy;
            if (r2 < 1000000L && r2 > 0L) {
                fx += (dx * 65536L) / r2;
            }
        }
    }
    return fx;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(1024), ArgSpec::Int(128)],
            2048,
            0x2a3d,
        ),
        // dealII: 1-D finite-element-ish tridiagonal smoothing sweeps.
        w(
            "dealII",
            Suite::SpecFp,
            r#"
long run(long *u, long *rhs, int n) {
    for (int i = 0; i < n; i++) u[i] = u[i] & 1048575L;
    for (int it = 0; it < 120; it++) {
        for (int i = 1; i < n - 1; i++) {
            long v = (u[i - 1] + u[i + 1] + (rhs[i] & 65535L)) / 3L;
            u[i] = v;
        }
    }
    long norm = 0L;
    for (int i = 0; i < n; i++) norm += u[i] & 1048575L;
    return norm;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(2048), ArgSpec::Int(256)],
            4096,
            0xdea1,
        ),
        // soplex: simplex-style pivoting on a dense tableau.
        w(
            "soplex",
            Suite::SpecFp,
            r#"
long run(long *tab, int rows, int cols) {
    long obj = 0L;
    for (int pivot = 0; pivot < 24; pivot++) {
        int pr = pivot % rows;
        int pc = (pivot * 7) % cols;
        long pv = (tab[pr * cols + pc] & 255L) + 1L;
        for (int r = 0; r < rows; r++) {
            if (r != pr) {
                long factor = ((tab[r * cols + pc] & 4095L) << 8) / pv;
                for (int c = 0; c < cols; c++) {
                    tab[r * cols + c] = tab[r * cols + c] - ((factor * (tab[pr * cols + c] & 4095L)) >> 8);
                }
            }
        }
        obj += pv;
    }
    return obj;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(24), ArgSpec::Int(32)],
            24 * 32 * 8,
            0x50fe,
        ),
        // povray: ray-sphere intersection tests in fixed point.
        w(
            "povray",
            Suite::SpecFp,
            r#"
long run(long *spheres, int n, int rays) {
    long hits = 0L;
    unsigned rng = 7u;
    for (int r = 0; r < rays; r++) {
        rng = rng * 1103515245u + 12345u;
        long ox = (long)(rng & 1023u);
        rng = rng * 1103515245u + 12345u;
        long oy = (long)(rng & 1023u);
        for (int s = 0; s < n; s++) {
            long cx = spheres[s * 3] & 1023L;
            long cy = spheres[s * 3 + 1] & 1023L;
            long rad = (spheres[s * 3 + 2] & 255L) + 16L;
            long dx = ox - cx;
            long dy = oy - cy;
            if (dx * dx + dy * dy <= rad * rad) hits++;
        }
    }
    return hits;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Int(64), ArgSpec::Int(600)],
            64 * 3 * 8,
            0x90f4,
        ),
        // lbm: lattice-Boltzmann-ish 1-D streaming + collision.
        w(
            "lbm",
            Suite::SpecFp,
            r#"
long run(long *f0, long *f1, int n) {
    for (int i = 0; i < n; i++) f0[i] = f0[i] & 1048575L;
    for (int t = 0; t < 160; t++) {
        for (int i = 1; i < n - 1; i++) {
            long rho = f0[i - 1] + f0[i] + f0[i + 1];
            long eq = rho / 3L;
            f1[i] = f0[i] + ((eq - f0[i]) >> 2);
        }
        for (int i = 1; i < n - 1; i++) f0[i] = f1[i] & 1048575L;
    }
    long mass = 0L;
    for (int i = 0; i < n; i++) mass += f0[i];
    return mass;
}
"#,
            "run",
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(4096), ArgSpec::Int(512)],
            8192,
            0x1b88,
        ),
        // sphinx3: Gaussian-mixture-ish log-likelihood scoring.
        w(
            "sphinx3",
            Suite::SpecFp,
            r#"
long run(long *feat, long *mean, int frames, int dims) {
    long best = -1000000000L;
    for (int fidx = 0; fidx < frames; fidx++) {
        long score = 0L;
        for (int d = 0; d < dims; d++) {
            long diff = (feat[(fidx * dims + d) % 256] & 4095L) - (mean[d % 64] & 4095L);
            score -= (diff * diff) >> 8;
        }
        if (score > best) best = score;
    }
    return best;
}
"#,
            "run",
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(2048),
                ArgSpec::Int(400),
                ArgSpec::Int(64),
            ],
            2048 + 512,
            0x5f17,
        ),
    ]
}
