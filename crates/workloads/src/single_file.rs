//! Analogues of the paper's five large single-file programs (§7.1
//! footnote 12): each is a distinct medium-sized program with several
//! cooperating functions, giving the compile-time and memory
//! experiments files bigger than the LNT micro kernels.

use crate::{ArgSpec, Suite, Workload};

fn p(name: &'static str, source: &str, args: Vec<ArgSpec>, mem: u32, seed: u64) -> Workload {
    Workload {
        name,
        suite: Suite::SingleFile,
        source: source.to_string(),
        entry: "run",
        args,
        mem_bytes: mem,
        mem_seed: seed,
    }
}

/// The five single-file programs.
pub fn suite() -> Vec<Workload> {
    vec![
        // gzip: LZ77-style match finding + Huffman-ish bit packing.
        p(
            "gzip",
            r#"
int match_len(char *buf, int a, int b, int limit) {
    int len = 0;
    while (len < limit && buf[a + len] == buf[b + len]) len++;
    return len;
}
unsigned emit(unsigned bitbuf, int value) {
    return (bitbuf << 3) ^ (unsigned)value;
}
unsigned run(char *buf, int n) {
    unsigned out = 0u;
    int pos = 64;
    while (pos < n - 8) {
        int best = 0;
        int bestoff = 0;
        for (int off = 1; off <= 32; off++) {
            int l = match_len(buf, pos - off, pos, 8);
            if (l > best) { best = l; bestoff = off; }
        }
        if (best >= 3) {
            out = emit(out, 256 + bestoff);
            out = emit(out, best);
            pos += best;
        } else {
            out = emit(out, (int)buf[pos] & 255);
            pos++;
        }
    }
    return out;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Int(6144)],
            6144,
            0x6219,
        ),
        // oggenc: windowed MDCT-ish transform + quantization in Q12.
        p(
            "oggenc",
            r#"
long window(long sample, int i, int n) {
    long tri = (long)(i < n / 2 ? i : n - i);
    return (sample * tri * 2L) / (long)n;
}
int quantize(long coeff, int bits) {
    long step = 1L << (long)(12 - bits);
    long q = coeff / step;
    if (q > 127L) q = 127L;
    if (q < -128L) q = -128L;
    return (int)q;
}
int run(long *pcm, char *packet, int n) {
    for (int i = 0; i < n; i++) pcm[i] = (pcm[i] & 8191L) - 4096L;
    int out = 0;
    for (int frame = 0; frame + 64 <= n; frame += 64) {
        for (int ii = 0; ii < 64; ii++) {
            long acc = 0L;
            for (int jj = 0; jj < 64; jj++) {
                long w = window(pcm[frame + jj], jj, 64);
                long phase = (long)(((2 * jj + 1) * ii) % 128) - 64L;
                acc += w * phase / 64L;
            }
            packet[out] = (char)quantize(acc, (ii & 3) + 4);
            out++;
        }
    }
    int h = 0;
    for (int i = 0; i < out; i++) h = (h * 33 + ((int)packet[i] & 255)) & 16777215;
    return h;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(8192), ArgSpec::Int(768)],
            8192 + 1024,
            0x0995,
        ),
        // sqlite3: varint decoding + B-tree-ish page search.
        p(
            "sqlite3",
            r#"
int get_varint(char *page, int pos, int *out) {
    int v = 0;
    int i = 0;
    while (i < 4) {
        int byte = (int)page[pos + i] & 255;
        v = (v << 7) | (byte & 127);
        i++;
        if ((byte & 128) == 0) { out[0] = v; return i; }
    }
    out[0] = v;
    return i;
}
int cell_key(char *page, int cell, int *scratch) {
    int off = 8 + cell * 6;
    int used = get_varint(page, off, scratch);
    return scratch[0] & 65535;
}
int search_page(char *page, int ncells, int key, int *scratch) {
    int lo = 0;
    int hi = ncells - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        int k = cell_key(page, mid, scratch);
        if (k == key) return mid;
        if (k < key) { lo = mid + 1; } else { hi = mid - 1; }
    }
    return -1;
}
int run(char *pages, int *scratch, int npages, int queries) {
    int hits = 0;
    unsigned rng = 2463534242u;
    for (int q = 0; q < queries; q++) {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        int pg = (int)(rng % (unsigned)npages);
        int key = (int)((rng >> 8) & 65535u);
        int r = search_page(pages, 64, key, scratch);
        hits += r >= 0 ? 1 : 0;
        hits += pg & 1;
    }
    return hits;
}
"#,
            vec![
                ArgSpec::Ptr(0),
                ArgSpec::Ptr(8192),
                ArgSpec::Int(16),
                ArgSpec::Int(800),
            ],
            8192 + 64,
            0x5917,
        ),
        // lame: polyphase filterbank-ish subband analysis in fixed point.
        p(
            "lame",
            r#"
long filter_tap(long sample, int tap) {
    long coeff = (long)((tap * tap) % 97 - 48);
    return sample * coeff;
}
long run(long *pcm, long *subbands, int n) {
    for (int i = 0; i < n; i++) pcm[i] = (pcm[i] & 16383L) - 8192L;
    for (int sb = 0; sb < 32; sb++) subbands[sb] = 0L;
    for (int start = 0; start + 64 <= n; start += 32) {
        for (int sb = 0; sb < 32; sb++) {
            long acc = 0L;
            for (int t = 0; t < 64; t++) {
                acc += filter_tap(pcm[start + t], (t * (2 * sb + 1)) % 64);
            }
            subbands[sb] += acc >> 12;
        }
    }
    long h = 0L;
    for (int sb = 0; sb < 32; sb++) h ^= subbands[sb];
    return h;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(8192), ArgSpec::Int(1000)],
            8192 + 256,
            0x1a3e,
        ),
        // tcc: a tokenizer + tiny stack-machine evaluator.
        p(
            "tcc",
            r#"
int is_digit(int c) { return c >= 48 && c <= 57 ? 1 : 0; }
int run(char *src, int *stack, int n) {
    int sp = 0;
    int acc = 0;
    int i = 0;
    while (i < n) {
        int c = (int)src[i] & 127;
        if (is_digit(c) != 0) {
            int v = 0;
            while (i < n && is_digit((int)src[i] & 127) != 0) {
                v = (v * 10 + (((int)src[i] & 127) - 48)) & 65535;
                i++;
            }
            if (sp < 64) { stack[sp] = v; sp++; }
        } else if (c == 43) {
            if (sp >= 2) { stack[sp - 2] = stack[sp - 2] + stack[sp - 1] & 1048575; sp--; }
            i++;
        } else if (c == 42) {
            if (sp >= 2) { stack[sp - 2] = stack[sp - 2] * stack[sp - 1] & 1048575; sp--; }
            i++;
        } else {
            if (sp > 0) { acc = (acc ^ stack[sp - 1]) & 1048575; }
            i++;
        }
    }
    return acc + sp;
}
"#,
            vec![ArgSpec::Ptr(0), ArgSpec::Ptr(8192), ArgSpec::Int(8192)],
            8192 + 256,
            0x7cc0,
        ),
    ]
}
