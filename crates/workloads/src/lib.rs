//! # frost-workloads
//!
//! Synthetic benchmark programs standing in for the paper's evaluation
//! suites (§7.1): SPEC CPU 2006 CINT and CFP (one kernel per benchmark
//! name, CFP integer-ized as fixed-point), an LNT-like micro suite, the
//! "Stanford Queens" program behind the §7.2 anecdote, and analogues of
//! the five large single-file programs (with a bit-field-heavy
//! "gcc"-like program driving the §7.2 freeze-count observation).
//!
//! Every workload is a mini-C program compiled by `frost-cc`; the
//! harness in `frost-bench` compiles each with the legacy and the
//! freeze pipelines and runs them on the machine simulator.

#![warn(missing_docs)]

pub mod lnt;
pub mod single_file;
pub mod spec;

use frost_cc::{compile_source, CcError, CodegenOptions};
use frost_ir::Module;

/// Which suite a workload belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// SPEC CPU 2006 integer benchmarks (C/C++ ones).
    SpecInt,
    /// SPEC CPU 2006 floating-point benchmarks (integer-ized).
    SpecFp,
    /// The LLVM Nightly Test analogue: small kernels.
    Lnt,
    /// Large single-file program analogues.
    SingleFile,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::SpecInt => "CINT",
            Suite::SpecFp => "CFP",
            Suite::Lnt => "LNT",
            Suite::SingleFile => "single-file",
        }
    }
}

/// How an entry-point argument is constructed by the harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgSpec {
    /// An integer constant.
    Int(u64),
    /// A pointer to `offset` bytes past the start of workload memory.
    Ptr(u32),
}

/// A benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (SPEC names for the SPEC suites).
    pub name: &'static str,
    /// The suite it belongs to.
    pub suite: Suite,
    /// mini-C source.
    pub source: String,
    /// Entry function.
    pub entry: &'static str,
    /// Entry arguments.
    pub args: Vec<ArgSpec>,
    /// Bytes of memory to allocate.
    pub mem_bytes: u32,
    /// Seed for pseudo-random memory initialization (0 = zeroed).
    pub mem_seed: u64,
}

impl Workload {
    /// Compiles the workload with the given options.
    ///
    /// # Errors
    ///
    /// Returns the frontend error on failure (workloads are tested to
    /// compile, so this indicates a regression).
    pub fn compile(&self, opts: &CodegenOptions) -> Result<Module, CcError> {
        compile_source(&self.source, opts)
    }

    /// Fills a memory image deterministically from the seed
    /// (xorshift64*), or zeroes when the seed is 0.
    pub fn init_memory(&self) -> Vec<u8> {
        let mut mem = vec![0u8; self.mem_bytes as usize];
        if self.mem_seed != 0 {
            let mut x = self.mem_seed;
            for b in &mut mem {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8;
            }
        }
        mem
    }
}

/// All SPEC CINT workloads.
pub fn spec_cint() -> Vec<Workload> {
    spec::cint()
}

/// All SPEC CFP workloads (integer-ized kernels).
pub fn spec_cfp() -> Vec<Workload> {
    spec::cfp()
}

/// The LNT-like micro suite.
pub fn lnt_suite() -> Vec<Workload> {
    lnt::suite()
}

/// The single-file program analogues (incl. the bit-field-heavy
/// gcc-like program).
pub fn single_file_suite() -> Vec<Workload> {
    single_file::suite()
}

/// The Stanford Queens program (§7.2's outlier).
pub fn queens() -> Workload {
    lnt::queens()
}

/// Every workload.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = spec_cint();
    v.extend(spec_cfp());
    v.extend(lnt_suite());
    v.extend(single_file_suite());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_compile_under_both_lowerings() {
        for w in all_workloads() {
            for freeze in [true, false] {
                let opts = CodegenOptions {
                    freeze_bitfields: freeze,
                    emit_wrap_flags: true,
                };
                let m = w.compile(&opts).unwrap_or_else(|e| {
                    panic!(
                        "workload {} fails to compile (freeze={freeze}): {e}",
                        w.name
                    )
                });
                frost_ir::verify::verify_module(&m, frost_ir::VerifyMode::Legacy).unwrap_or_else(
                    |e| panic!("workload {} fails verification: {}", w.name, e.join("; ")),
                );
            }
        }
    }

    #[test]
    fn suite_sizes_match_the_paper() {
        // §7.1: 12 CINT + 7 CFP C/C++ benchmarks.
        assert_eq!(spec_cint().len(), 12);
        assert_eq!(spec_cfp().len(), 7);
        assert!(lnt_suite().len() >= 20, "a meaningful LNT-like population");
        assert_eq!(single_file_suite().len(), 5);
    }

    #[test]
    fn memory_init_is_deterministic() {
        let w = &spec_cint()[0];
        assert_eq!(w.init_memory(), w.init_memory());
        if w.mem_seed != 0 {
            assert!(w.init_memory().iter().any(|&b| b != 0));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_workloads().iter().map(|w| w.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn gcc_like_workload_is_bitfield_heavy() {
        let w = spec_cint()
            .into_iter()
            .find(|w| w.name == "gcc")
            .expect("gcc workload exists");
        let with = w
            .compile(&CodegenOptions::default())
            .unwrap()
            .freeze_count();
        assert!(with > 0, "freeze instructions from bit-field stores");
        let without = w
            .compile(&CodegenOptions {
                freeze_bitfields: false,
                emit_wrap_flags: true,
            })
            .unwrap()
            .freeze_count();
        assert_eq!(without, 0);
    }
}
