//! # frost-backend
//!
//! The lowering pipeline of the frost compiler: instruction selection to
//! an x86-flavoured machine IR, linear-scan register allocation,
//! object-size accounting, and a cycle-model simulator — everything the
//! performance evaluation of *"Taming Undefined Behavior in LLVM"*
//! (PLDI 2017, §6–§7) needs below the mid-end:
//!
//! * `freeze` lowers to a **register copy** and `poison`/`undef`
//!   constants to a **pinned undef register** (§6 "Lowering freeze");
//! * the allocator reserves a register for each pinned undef value
//!   during its live range, reproducing the §7.2 register-pressure
//!   effects;
//! * the [simulator](sim) has two cost models standing in for the
//!   paper's two machines, including the register-dependent LEA latency
//!   behind the "Stanford Queens" outlier;
//! * [`encode`] gives x86-shaped byte sizes for the object-size
//!   experiment.
//!
//! ```
//! use frost_backend::{compile_module, CostModel, Simulator};
//! use frost_ir::parse_module;
//!
//! let m = parse_module(
//!     "define i32 @inc(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}",
//! )?;
//! let mm = compile_module(&m)?;
//! let mut sim = Simulator::new(&mm, CostModel::machine1(), 0);
//! let run = sim.run("inc", &[41])?;
//! assert_eq!(run.ret, Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod isel;
pub mod mir;
pub mod regalloc;
pub mod sim;

use frost_ir::Module;
use frost_opt::PipelineMode;

pub use encode::{function_size, inst_size, module_size};
pub use isel::{select_function, select_module, IselError};
pub use mir::{AluOp, Cc, MBlock, MFunc, MInst, MModule, Operand, PhysReg, Reg, Width};
pub use regalloc::{allocate, lea_base_registers, AllocStats};
pub use sim::{CostModel, SimError, SimRun, Simulator, MEM_BASE};

/// Compiles an IR module to fully register-allocated MIR.
///
/// # Errors
///
/// Returns [`IselError`] on shapes the target cannot express.
pub fn compile_module(module: &Module) -> Result<MModule, IselError> {
    let mut mm = select_module(module)?;
    for f in &mut mm.functions {
        allocate(f);
    }
    Ok(mm)
}

/// Compiles with an explicit pipeline-mode tag (reserved for future
/// mode-dependent lowering decisions; selection and allocation are
/// currently mode-independent, exactly like the paper's backend, where
/// freeze is already gone by this point).
///
/// # Errors
///
/// Returns [`IselError`] on shapes the target cannot express.
pub fn compile_module_with_mode(
    module: &Module,
    _mode: PipelineMode,
) -> Result<MModule, IselError> {
    compile_module(module)
}
