//! A cycle-model simulator for allocated MIR.
//!
//! Two cost-model presets stand in for the paper's two evaluation
//! machines (§7.1: a Core i7-870 "machine 1" and a Core i5-6600
//! "machine 2"), including the register-dependent LEA latency the
//! paper's §7.2 traces the "Stanford Queens" outlier to.
//!
//! Every run is metered through `frost-telemetry` (see
//! docs/OBSERVABILITY.md): the counters `frost.backend.sim.runs`,
//! `.cycles`, and `.insts` accumulate totals, and — when tracing is
//! enabled — each run attributes its cycles to the basic blocks that
//! spent them, emitting one `backend.sim.block` point event per
//! (function, block) with the cycle and instruction share. Block
//! attribution is *exclusive* of callees: a called function's cycles
//! land on the callee's own blocks (the call-overhead cycles stay with
//! the calling block), so summing every `backend.sim.block` event of a
//! run reproduces the run's `cycles` total exactly. That granularity is
//! what a §7.2-style outlier hunt wants: the Queens LEA penalty shows
//! up concentrated in the loop block that pays it.

use std::collections::HashMap;
use std::sync::OnceLock;

use frost_telemetry::Counter;

use crate::mir::{AluOp, Cc, MFunc, MInst, MModule, Operand, Reg, Width};

/// Per-instruction-class latencies, in cycles.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Preset name.
    pub name: &'static str,
    /// Simple ALU (add/sub/logic).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide.
    pub div: u64,
    /// LEA.
    pub lea: u64,
    /// Extra LEA latency when the base is one of the slow registers
    /// (§7.2 / Intel ORM §3.5.1.3).
    pub lea_slow_extra: u64,
    /// Register move / materialization.
    pub mov: u64,
    /// Extending move.
    pub movx: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Compare/test.
    pub cmp: u64,
    /// setcc.
    pub setcc: u64,
    /// cmov.
    pub cmov: u64,
    /// Taken or not-taken branch (flat model).
    pub branch: u64,
    /// Call overhead.
    pub call: u64,
    /// Return overhead.
    pub ret: u64,
    /// Spill/reload memory traffic.
    pub spill: u64,
}

impl CostModel {
    /// "Machine 1" (Nehalem-class: slower divides, slow LEA quirk).
    pub fn machine1() -> CostModel {
        CostModel {
            name: "machine1",
            alu: 1,
            mul: 4,
            div: 26,
            lea: 1,
            lea_slow_extra: 2,
            mov: 1,
            movx: 1,
            load: 4,
            store: 3,
            cmp: 1,
            setcc: 2,
            cmov: 2,
            branch: 2,
            call: 4,
            ret: 2,
            spill: 4,
        }
    }

    /// "Machine 2" (Skylake-class: faster divide and memory, milder LEA
    /// penalty).
    pub fn machine2() -> CostModel {
        CostModel {
            name: "machine2",
            alu: 1,
            mul: 3,
            div: 21,
            lea: 1,
            lea_slow_extra: 1,
            mov: 1,
            movx: 1,
            load: 3,
            store: 2,
            cmp: 1,
            setcc: 1,
            cmov: 1,
            branch: 1,
            call: 3,
            ret: 1,
            spill: 3,
        }
    }
}

/// Simulation failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Division by zero or `ud2`.
    Trap(String),
    /// Out-of-bounds memory access.
    Fault(u64),
    /// The cycle budget was exhausted.
    CycleLimit,
    /// Missing function or malformed code.
    Bad(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Trap(s) => write!(f, "trap: {s}"),
            SimError::Fault(a) => write!(f, "memory fault at {a:#x}"),
            SimError::CycleLimit => write!(f, "cycle limit exceeded"),
            SimError::Bad(s) => write!(f, "bad program: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// The entry function's return value (if any).
    pub ret: Option<u64>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic instruction count.
    pub insts: u64,
    /// Calls to external (unresolved) functions, by name.
    pub extern_calls: HashMap<String, u64>,
}

/// Base address of simulated memory (null stays invalid).
pub const MEM_BASE: u64 = 0x1000;

/// Process-wide simulation totals, resolved once.
struct SimCounters {
    runs: &'static Counter,
    cycles: &'static Counter,
    insts: &'static Counter,
}

fn sim_counters() -> &'static SimCounters {
    static CTRS: OnceLock<SimCounters> = OnceLock::new();
    CTRS.get_or_init(|| SimCounters {
        runs: frost_telemetry::counter("frost.backend.sim.runs"),
        cycles: frost_telemetry::counter("frost.backend.sim.cycles"),
        insts: frost_telemetry::counter("frost.backend.sim.insts"),
    })
}

/// The machine simulator.
pub struct Simulator<'m> {
    module: &'m MModule,
    cost: CostModel,
    /// Flat memory; address `MEM_BASE + i` maps to `mem[i]`.
    pub mem: Vec<u8>,
    /// Stack pointer for `alloca` frames: frames are carved downward
    /// from the *top* of `mem`, so programs that use `alloca` must be
    /// given enough memory for their deepest activation chain.
    sp: u64,
    max_cycles: u64,
    cycles: u64,
    insts: u64,
    extern_calls: HashMap<String, u64>,
    /// Per-(function name, block label) cycle/instruction attribution,
    /// populated only while tracing is enabled and drained into
    /// `backend.sim.block` point events at the end of each run.
    block_attr: HashMap<(String, String), (u64, u64)>,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Flags {
    Cmp {
        l: u64,
        r: u64,
        width: Width,
        signed_hint: bool,
    },
    None,
}

struct Frame {
    regs: [u64; 16],
    slots: Vec<u64>,
    flags: Flags,
    /// Base address of this activation's `alloca` frame.
    frame_base: u64,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator with `mem_bytes` of zeroed memory.
    pub fn new(module: &'m MModule, cost: CostModel, mem_bytes: usize) -> Simulator<'m> {
        Simulator {
            module,
            cost,
            mem: vec![0; mem_bytes],
            sp: MEM_BASE + mem_bytes as u64,
            max_cycles: 2_000_000_000,
            cycles: 0,
            insts: 0,
            extern_calls: HashMap::new(),
            block_attr: HashMap::new(),
        }
    }

    /// Overrides the cycle budget.
    pub fn with_max_cycles(mut self, max: u64) -> Simulator<'m> {
        self.max_cycles = max;
        self
    }

    /// Runs `name` with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on traps, faults, or cycle exhaustion.
    pub fn run(&mut self, name: &str, args: &[u64]) -> Result<SimRun, SimError> {
        let ctrs = sim_counters();
        ctrs.runs.incr();
        let (c0, i0) = (self.cycles, self.insts);
        let result = self.call(name, args, 0);
        ctrs.cycles.add(self.cycles - c0);
        ctrs.insts.add(self.insts - i0);
        self.emit_block_attr();
        let ret = result?;
        Ok(SimRun {
            ret,
            cycles: self.cycles,
            insts: self.insts,
            extern_calls: std::mem::take(&mut self.extern_calls),
        })
    }

    /// Emits one `backend.sim.block` point event per (function, block)
    /// visited since the last emission, in deterministic order, and
    /// clears the attribution table. No-op when nothing was attributed
    /// (tracing off).
    fn emit_block_attr(&mut self) {
        if self.block_attr.is_empty() {
            return;
        }
        let mut attr: Vec<_> = self.block_attr.drain().collect();
        attr.sort();
        for ((func, block), (cycles, insts)) in attr {
            frost_telemetry::point("backend.sim.block")
                .field("func", func)
                .field("block", block)
                .field("cycles", cycles)
                .field("insts", insts)
                .emit();
        }
    }

    fn charge(&mut self, c: u64) -> Result<(), SimError> {
        self.cycles += c;
        self.insts += 1;
        if self.cycles > self.max_cycles {
            Err(SimError::CycleLimit)
        } else {
            Ok(())
        }
    }

    fn load_mem(&self, addr: u64, width: Width) -> Result<u64, SimError> {
        let bytes = (width.bits() / 8) as u64;
        if addr < MEM_BASE || addr + bytes > MEM_BASE + self.mem.len() as u64 {
            return Err(SimError::Fault(addr));
        }
        let off = (addr - MEM_BASE) as usize;
        let mut v: u64 = 0;
        for i in 0..bytes as usize {
            v |= u64::from(self.mem[off + i]) << (8 * i);
        }
        Ok(v)
    }

    fn store_mem(&mut self, addr: u64, v: u64, width: Width) -> Result<(), SimError> {
        let bytes = (width.bits() / 8) as u64;
        if addr < MEM_BASE || addr + bytes > MEM_BASE + self.mem.len() as u64 {
            return Err(SimError::Fault(addr));
        }
        let off = (addr - MEM_BASE) as usize;
        for i in 0..bytes as usize {
            self.mem[off + i] = (v >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[u64], depth: u32) -> Result<Option<u64>, SimError> {
        if depth > 128 {
            return Err(SimError::Bad("call depth exceeded".into()));
        }
        let Some(func) = self.module.function(name) else {
            // External: count it, return 0.
            *self.extern_calls.entry(name.to_string()).or_insert(0) += 1;
            return Ok(Some(0));
        };
        // Carve this activation's alloca frame off the stack (the top
        // of simulated memory, growing downward).
        let frame_bytes = u64::from(func.frame_bytes);
        if frame_bytes > self.sp.saturating_sub(MEM_BASE) {
            return Err(SimError::Fault(self.sp));
        }
        let saved_sp = self.sp;
        self.sp -= frame_bytes;
        let mut frame = Frame {
            regs: [0; 16],
            slots: vec![0; func.num_slots as usize],
            flags: Flags::None,
            frame_base: self.sp,
        };
        let result = self.exec(func, &mut frame, args, depth);
        self.sp = saved_sp;
        result
    }

    /// Folds the cycles/instructions charged since the last snapshot
    /// into block `bi` of `func` and advances the snapshot.
    fn attr_block(&mut self, func: &MFunc, bi: usize, c0: &mut u64, i0: &mut u64) {
        let (dc, di) = (self.cycles - *c0, self.insts - *i0);
        *c0 = self.cycles;
        *i0 = self.insts;
        if dc == 0 && di == 0 {
            return;
        }
        let entry = self
            .block_attr
            .entry((func.name.clone(), func.blocks[bi].name.clone()))
            .or_insert((0, 0));
        entry.0 += dc;
        entry.1 += di;
    }

    fn exec(
        &mut self,
        func: &MFunc,
        fr: &mut Frame,
        args: &[u64],
        depth: u32,
    ) -> Result<Option<u64>, SimError> {
        let mut bi = 0usize;
        let mut ii = 0usize;
        // Per-block attribution snapshots, advanced at block
        // boundaries. Checked once per exec, not per instruction: a run
        // that starts with tracing off stays unattributed throughout.
        let trace = frost_telemetry::enabled();
        let (mut c0, mut i0) = (self.cycles, self.insts);
        loop {
            let Some(inst) = func.blocks[bi].insts.get(ii) else {
                return Err(SimError::Bad(format!(
                    "fell off block {bi} of {}",
                    func.name
                )));
            };
            ii += 1;
            match inst {
                MInst::GetArg { dst, index } => {
                    self.charge(self.cost.mov)?;
                    let v = args.get(*index).copied().ok_or_else(|| {
                        SimError::Bad(format!("missing argument {index} to {}", func.name))
                    })?;
                    write_reg(fr, *dst, v);
                }
                MInst::Mov { dst, src, width } => {
                    self.charge(self.cost.mov)?;
                    let v = width.mask(self.operand(fr, src));
                    write_reg(fr, *dst, v);
                }
                MInst::Alu {
                    op,
                    dst,
                    lhs,
                    rhs,
                    width,
                    signed,
                } => {
                    self.charge(if *op == AluOp::Imul {
                        self.cost.mul
                    } else {
                        self.cost.alu
                    })?;
                    let a = width.mask(read_reg(fr, *lhs));
                    let b = width.mask(self.operand(fr, rhs));
                    let bits = width.bits();
                    let r = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::Imul => a.wrapping_mul(b),
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Shl => {
                            if b >= u64::from(bits) {
                                0
                            } else {
                                a << b
                            }
                        }
                        AluOp::Shr => {
                            if b >= u64::from(bits) {
                                0
                            } else {
                                a >> b
                            }
                        }
                        AluOp::Sar => {
                            let sa = sign_extend(a, bits);
                            let sh = b.min(u64::from(bits - 1));
                            (sa >> sh) as u64
                        }
                    };
                    let _ = signed;
                    write_reg(fr, *dst, width.mask(r));
                }
                MInst::Div {
                    dst,
                    lhs,
                    rhs,
                    signed,
                    rem,
                    width,
                } => {
                    self.charge(self.cost.div)?;
                    let a = width.mask(read_reg(fr, *lhs));
                    let b = width.mask(read_reg(fr, *rhs));
                    if b == 0 {
                        return Err(SimError::Trap("divide by zero".into()));
                    }
                    let bits = width.bits();
                    let r = if *signed {
                        let sa = sign_extend(a, bits);
                        let sb = sign_extend(b, bits);
                        if sb == -1 && sa == i64::MIN >> (64 - bits) {
                            return Err(SimError::Trap("divide overflow".into()));
                        }
                        if *rem {
                            (sa % sb) as u64
                        } else {
                            (sa / sb) as u64
                        }
                    } else if *rem {
                        a % b
                    } else {
                        a / b
                    };
                    write_reg(fr, *dst, width.mask(r));
                }
                MInst::Lea {
                    dst,
                    base,
                    index,
                    disp,
                } => {
                    let mut cost = self.cost.lea;
                    if let Reg::P(p) = base {
                        if p.lea_is_slow() {
                            cost += self.cost.lea_slow_extra;
                        }
                    }
                    self.charge(cost)?;
                    let mut addr = read_reg(fr, *base).wrapping_add(*disp as i64 as u64);
                    if let Some((r, scale)) = index {
                        addr = addr.wrapping_add(read_reg(fr, *r).wrapping_mul(u64::from(*scale)));
                    }
                    write_reg(fr, *dst, addr);
                }
                MInst::FrameAddr { dst, offset } => {
                    self.charge(self.cost.lea)?;
                    let addr = fr.frame_base + u64::from(*offset);
                    write_reg(fr, *dst, addr);
                }
                MInst::MovX {
                    dst,
                    src,
                    from,
                    to,
                    signed,
                } => {
                    self.charge(self.cost.movx)?;
                    let v = from.mask(read_reg(fr, *src));
                    let r = if *signed {
                        to.mask(sign_extend(v, from.bits()) as u64)
                    } else {
                        v
                    };
                    write_reg(fr, *dst, r);
                }
                MInst::Load {
                    dst,
                    base,
                    disp,
                    width,
                } => {
                    self.charge(self.cost.load)?;
                    let addr = read_reg(fr, *base).wrapping_add(*disp as i64 as u64);
                    let v = self.load_mem(addr, *width)?;
                    write_reg(fr, *dst, v);
                }
                MInst::Store {
                    base,
                    disp,
                    src,
                    width,
                } => {
                    self.charge(self.cost.store)?;
                    let addr = read_reg(fr, *base).wrapping_add(*disp as i64 as u64);
                    let v = width.mask(self.operand(fr, src));
                    self.store_mem(addr, v, *width)?;
                }
                MInst::Cmp {
                    lhs,
                    rhs,
                    width,
                    signed,
                } => {
                    self.charge(self.cost.cmp)?;
                    fr.flags = Flags::Cmp {
                        l: width.mask(read_reg(fr, *lhs)),
                        r: width.mask(self.operand(fr, rhs)),
                        width: *width,
                        signed_hint: *signed,
                    };
                }
                MInst::Test { src, width } => {
                    self.charge(self.cost.cmp)?;
                    let v = width.mask(read_reg(fr, *src));
                    fr.flags = Flags::Cmp {
                        l: v,
                        r: 0,
                        width: *width,
                        signed_hint: false,
                    };
                }
                MInst::SetCc { cc, dst } => {
                    self.charge(self.cost.setcc)?;
                    let v = eval_cc(fr.flags, *cc)?;
                    write_reg(fr, *dst, u64::from(v));
                }
                MInst::CmovCc {
                    cc,
                    dst,
                    src,
                    width,
                } => {
                    self.charge(self.cost.cmov)?;
                    if eval_cc(fr.flags, *cc)? {
                        let v = width.mask(read_reg(fr, *src));
                        write_reg(fr, *dst, v);
                    }
                }
                MInst::Jcc { cc, target } => {
                    self.charge(self.cost.branch)?;
                    if eval_cc(fr.flags, *cc)? {
                        if trace {
                            self.attr_block(func, bi, &mut c0, &mut i0);
                        }
                        bi = *target;
                        ii = 0;
                    }
                }
                MInst::Jmp { target } => {
                    self.charge(self.cost.branch)?;
                    if trace {
                        self.attr_block(func, bi, &mut c0, &mut i0);
                    }
                    bi = *target;
                    ii = 0;
                }
                MInst::Call {
                    callee,
                    args: arg_regs,
                    dst,
                } => {
                    self.charge(self.cost.call)?;
                    let vals: Vec<u64> = arg_regs.iter().map(|r| read_reg(fr, *r)).collect();
                    let callee = callee.clone();
                    let dst = *dst;
                    if trace {
                        // Flush up to and including the call overhead;
                        // the callee attributes its own blocks, and the
                        // snapshot reset below keeps its cycles off
                        // this block.
                        self.attr_block(func, bi, &mut c0, &mut i0);
                    }
                    let ret = self.call(&callee, &vals, depth + 1)?;
                    (c0, i0) = (self.cycles, self.insts);
                    if let Some(d) = dst {
                        write_reg(fr, d, ret.unwrap_or(0));
                    }
                }
                MInst::Ret { src } => {
                    self.charge(self.cost.ret)?;
                    if trace {
                        self.attr_block(func, bi, &mut c0, &mut i0);
                    }
                    return Ok(src.map(|r| read_reg(fr, r)));
                }
                MInst::Spill { slot, src } => {
                    self.charge(self.cost.spill)?;
                    let v = read_reg(fr, *src);
                    fr.slots[*slot as usize] = v;
                }
                MInst::Reload { dst, slot } => {
                    self.charge(self.cost.spill)?;
                    let v = fr.slots[*slot as usize];
                    write_reg(fr, *dst, v);
                }
                MInst::Ud2 => return Err(SimError::Trap("ud2".into())),
            }
        }
    }

    fn operand(&self, fr: &Frame, o: &Operand) -> u64 {
        match o {
            Operand::R(r) => read_reg(fr, *r),
            Operand::Imm(v) => *v as u64,
        }
    }
}

fn read_reg(fr: &Frame, r: Reg) -> u64 {
    match r {
        Reg::P(p) => fr.regs[p.index()],
        Reg::V(_) => panic!("virtual register after allocation"),
    }
}

fn write_reg(fr: &mut Frame, r: Reg, v: u64) {
    match r {
        Reg::P(p) => fr.regs[p.index()] = v,
        Reg::V(_) => panic!("virtual register after allocation"),
    }
}

fn sign_extend(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

fn eval_cc(flags: Flags, cc: Cc) -> Result<bool, SimError> {
    let Flags::Cmp { l, r, width, .. } = flags else {
        return Err(SimError::Bad("conditional without flags".into()));
    };
    let bits = width.bits();
    let (sl, sr) = (sign_extend(l, bits), sign_extend(r, bits));
    Ok(match cc {
        Cc::E => l == r,
        Cc::Ne => l != r,
        Cc::A => l > r,
        Cc::Ae => l >= r,
        Cc::B => l < r,
        Cc::Be => l <= r,
        Cc::G => sl > sr,
        Cc::Ge => sl >= sr,
        Cc::L => sl < sr,
        Cc::Le => sl <= sr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_module_with_mode;
    use frost_ir::parse_module;
    use frost_opt::PipelineMode;

    fn run(src: &str, fname: &str, args: &[u64], mem: usize) -> SimRun {
        let m = parse_module(src).unwrap();
        let mm = compile_module_with_mode(&m, PipelineMode::Fixed).unwrap();
        let mut sim = Simulator::new(&mm, CostModel::machine1(), mem);
        sim.run(fname, args).unwrap()
    }

    #[test]
    fn arithmetic_matches_ir_semantics() {
        let r = run(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %x = add i32 %a, %b\n  %y = mul i32 %x, 3\n  ret i32 %y\n}",
            "f",
            &[4, 5],
            0,
        );
        assert_eq!(r.ret, Some(27));
    }

    #[test]
    fn loops_execute_and_cost_scales() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %head ]
  %s = phi i32 [ 0, %entry ], [ %s2, %head ]
  %s2 = add i32 %s, %i
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, %n
  br i1 %c, label %head, label %exit
exit:
  ret i32 %s2
}
"#;
        let small = run(src, "sum", &[10], 0);
        let big = run(src, "sum", &[100], 0);
        assert_eq!(small.ret, Some(45));
        assert_eq!(big.ret, Some(4950));
        assert!(
            big.cycles > small.cycles * 5,
            "{} vs {}",
            big.cycles,
            small.cycles
        );
    }

    #[test]
    fn memory_round_trips() {
        let src = r#"
define i32 @f(i32* %p) {
entry:
  store i32 3735928559, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}
"#;
        let r = run(src, "f", &[MEM_BASE], 8);
        assert_eq!(r.ret, Some(0xdead_beef));
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = parse_module(
            "define void @f(i32* %p) {\nentry:\n  store i32 1, i32* %p\n  ret void\n}",
        )
        .unwrap();
        let mm = compile_module_with_mode(&m, PipelineMode::Fixed).unwrap();
        let mut sim = Simulator::new(&mm, CostModel::machine1(), 2);
        let err = sim.run("f", &[MEM_BASE]).unwrap_err();
        assert!(matches!(err, SimError::Fault(_)));
        let mut sim = Simulator::new(&mm, CostModel::machine1(), 2);
        let err = sim.run("f", &[0]).unwrap_err();
        assert!(matches!(err, SimError::Fault(0)));
    }

    #[test]
    fn division_traps() {
        let m = parse_module(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %q = udiv i32 %a, %b\n  ret i32 %q\n}",
        )
        .unwrap();
        let mm = compile_module_with_mode(&m, PipelineMode::Fixed).unwrap();
        let mut sim = Simulator::new(&mm, CostModel::machine1(), 0);
        assert_eq!(sim.run("f", &[10, 3]).unwrap().ret, Some(3));
        let mut sim = Simulator::new(&mm, CostModel::machine1(), 0);
        assert!(matches!(sim.run("f", &[1, 0]), Err(SimError::Trap(_))));
    }

    #[test]
    fn calls_within_the_module_and_external() {
        let src = r#"
declare void @tick(i32)
define i32 @double(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}
define i32 @f(i32 %x) {
entry:
  call void @tick(i32 %x)
  %a = call i32 @double(i32 %x)
  %b = call i32 @double(i32 %a)
  ret i32 %b
}
"#;
        let r = run(src, "f", &[5], 0);
        assert_eq!(r.ret, Some(20));
        assert_eq!(r.extern_calls.get("tick"), Some(&1));
    }

    #[test]
    fn signed_comparisons_and_selects() {
        let src = r#"
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
"#;
        assert_eq!(run(src, "max", &[5, 9], 0).ret, Some(9));
        // -3 (as u32) vs 2: signed max is 2.
        assert_eq!(run(src, "max", &[0xffff_fffd, 2], 0).ret, Some(2));
    }

    #[test]
    fn freeze_compiles_and_runs_as_copy() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %a = freeze i32 %x
  %b = add i32 %a, %a
  ret i32 %b
}
"#;
        assert_eq!(run(src, "f", &[21], 0).ret, Some(42));
    }

    #[test]
    fn machine_models_differ() {
        let src = r#"
define i32 @divs(i32 %a, i32 %b) {
entry:
  %q1 = udiv i32 %a, %b
  %q2 = udiv i32 %q1, %b
  ret i32 %q2
}
"#;
        let m = parse_module(src).unwrap();
        let mm = compile_module_with_mode(&m, PipelineMode::Fixed).unwrap();
        let c1 = Simulator::new(&mm, CostModel::machine1(), 0)
            .run("divs", &[100, 3])
            .unwrap();
        let c2 = Simulator::new(&mm, CostModel::machine2(), 0)
            .run("divs", &[100, 3])
            .unwrap();
        assert_eq!(c1.ret, c2.ret);
        assert!(c1.cycles > c2.cycles, "machine1 divides slower");
    }

    #[test]
    fn block_attribution_sums_to_run_totals() {
        let src = r#"
define i32 @attr_helper(i32 %x) {
entry:
  %r = mul i32 %x, 3
  ret i32 %r
}
define i32 @attr_probe(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %head ]
  %s = phi i32 [ 0, %entry ], [ %s2, %head ]
  %t = call i32 @attr_helper(i32 %i)
  %s2 = add i32 %s, %t
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, %n
  br i1 %c, label %head, label %exit
exit:
  ret i32 %s2
}
"#;
        let m = parse_module(src).unwrap();
        let mm = compile_module_with_mode(&m, PipelineMode::Fixed).unwrap();
        frost_telemetry::enable(frost_telemetry::TraceFormat::Jsonl);
        let mut sim = Simulator::new(&mm, CostModel::machine1(), 0);
        let r = sim.run("attr_probe", &[10]).unwrap();
        frost_telemetry::disable();
        // Filter by the probe's unique function names: other tests in
        // this binary may emit events while tracing is on.
        let (mut cycles, mut insts) = (0u64, 0u64);
        for ev in frost_telemetry::drain() {
            if ev.name != "backend.sim.block" {
                continue;
            }
            let func = ev.fields.iter().find(|(k, _)| *k == "func");
            match func {
                Some((_, frost_telemetry::FieldValue::Str(s))) if s.starts_with("attr_") => {}
                _ => continue,
            }
            for (k, v) in &ev.fields {
                if let frost_telemetry::FieldValue::U64(n) = v {
                    match *k {
                        "cycles" => cycles += n,
                        "insts" => insts += n,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(r.ret, Some(135));
        assert_eq!(cycles, r.cycles, "attribution must be exhaustive");
        assert_eq!(insts, r.insts);
    }

    #[test]
    fn sext_i1_produces_minus_one() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %c = icmp eq i32 %x, 7
  %s = sext i1 %c to i32
  ret i32 %s
}
"#;
        assert_eq!(run(src, "f", &[7], 0).ret, Some(0xffff_ffff));
        assert_eq!(run(src, "f", &[8], 0).ret, Some(0));
    }
}
