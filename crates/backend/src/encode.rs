//! Object-code size accounting (the §7.2 "object code size"
//! experiment): a byte-size table modelled on x86-64 encodings, down to
//! the quirk that an address with an `R13`/`RBP` base needs an explicit
//! displacement byte.

use crate::mir::{MInst, Operand, PhysReg, Reg, Width};

fn needs_rex(width: Width) -> bool {
    width == Width::W64
}

fn base_penalty(base: &Reg) -> usize {
    // [r13] and [rbp] cannot be encoded without a disp8.
    match base {
        Reg::P(PhysReg::R13) => 1,
        _ => 0,
    }
}

fn imm_size(v: i64) -> usize {
    if (-128..=127).contains(&v) {
        1
    } else {
        4
    }
}

/// The encoded size of one instruction in bytes.
pub fn inst_size(inst: &MInst) -> usize {
    match inst {
        MInst::Mov { src, width, .. } => match src {
            Operand::R(_) => 2 + usize::from(needs_rex(*width)),
            Operand::Imm(v) => {
                if *v == 0 {
                    2 // xor reg, reg idiom
                } else {
                    1 + imm_size(*v).max(4) + usize::from(needs_rex(*width))
                }
            }
        },
        MInst::Alu {
            dst,
            lhs,
            rhs,
            width,
            ..
        } => {
            let mut size = 2 + usize::from(needs_rex(*width));
            if let Operand::Imm(v) = rhs {
                size += imm_size(*v);
            }
            if dst != lhs {
                // x86 is two-address: materialize the extra mov.
                size += 2 + usize::from(needs_rex(*width));
            }
            size
        }
        MInst::Div { width, .. } => 5 + usize::from(needs_rex(*width)), // xor rdx + div
        MInst::Lea {
            base, disp, index, ..
        } => {
            let mut size = 3 + usize::from(index.is_some()) + base_penalty(base);
            if *disp != 0 {
                size += imm_size(i64::from(*disp));
            }
            size
        }
        // lea from rbp: rex + opcode + modrm + disp.
        MInst::FrameAddr { offset, .. } => 4 + imm_size(i64::from(*offset)),
        MInst::MovX { to, .. } => 3 + usize::from(needs_rex(*to)),
        MInst::Load {
            base, disp, width, ..
        }
        | MInst::Store {
            base, disp, width, ..
        } => {
            let src_imm = match inst {
                MInst::Store {
                    src: Operand::Imm(v),
                    ..
                } => imm_size(*v).max(1),
                _ => 0,
            };
            let mut size = 2 + usize::from(needs_rex(*width)) + base_penalty(base) + src_imm;
            if *disp != 0 {
                size += imm_size(i64::from(*disp));
            }
            size
        }
        MInst::Cmp { rhs, width, .. } => {
            2 + usize::from(needs_rex(*width))
                + match rhs {
                    Operand::Imm(v) => imm_size(*v),
                    Operand::R(_) => 0,
                }
        }
        MInst::Test { width, .. } => 2 + usize::from(needs_rex(*width)),
        MInst::SetCc { .. } => 3,
        MInst::CmovCc { width, .. } => 3 + usize::from(needs_rex(*width)),
        MInst::Jcc { .. } => 2,
        MInst::Jmp { .. } => 2,
        MInst::Call { .. } => 5,
        MInst::Ret { .. } => 1,
        MInst::Spill { .. } | MInst::Reload { .. } => 5, // mov [rbp+disp]
        MInst::GetArg { .. } => 3,
        MInst::Ud2 => 2,
    }
}

/// Total object size of a function in bytes.
pub fn function_size(func: &crate::mir::MFunc) -> usize {
    func.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .map(inst_size)
        .sum()
}

/// Total object size of a module in bytes.
pub fn module_size(module: &crate::mir::MModule) -> usize {
    module.functions.iter().map(function_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{AluOp, Cc};

    #[test]
    fn two_address_form_costs_an_extra_mov() {
        let three_addr = MInst::Alu {
            op: AluOp::Add,
            dst: Reg::P(PhysReg::Rax),
            lhs: Reg::P(PhysReg::Rcx),
            rhs: Operand::R(Reg::P(PhysReg::Rdx)),
            width: Width::W32,
            signed: false,
        };
        let two_addr = MInst::Alu {
            op: AluOp::Add,
            dst: Reg::P(PhysReg::Rax),
            lhs: Reg::P(PhysReg::Rax),
            rhs: Operand::R(Reg::P(PhysReg::Rdx)),
            width: Width::W32,
            signed: false,
        };
        assert!(inst_size(&three_addr) > inst_size(&two_addr));
    }

    #[test]
    fn r13_base_lea_is_bigger() {
        let normal = MInst::Lea {
            dst: Reg::P(PhysReg::Rax),
            base: Reg::P(PhysReg::Rcx),
            index: Some((Reg::P(PhysReg::Rdx), 4)),
            disp: 0,
        };
        let r13 = MInst::Lea {
            dst: Reg::P(PhysReg::Rax),
            base: Reg::P(PhysReg::R13),
            index: Some((Reg::P(PhysReg::Rdx), 4)),
            disp: 0,
        };
        assert_eq!(inst_size(&r13), inst_size(&normal) + 1);
    }

    #[test]
    fn wide_ops_need_rex() {
        let w32 = MInst::Mov {
            dst: Reg::P(PhysReg::Rax),
            src: Operand::R(Reg::P(PhysReg::Rcx)),
            width: Width::W32,
        };
        let w64 = MInst::Mov {
            dst: Reg::P(PhysReg::Rax),
            src: Operand::R(Reg::P(PhysReg::Rcx)),
            width: Width::W64,
        };
        assert!(inst_size(&w64) > inst_size(&w32));
    }

    #[test]
    fn every_variant_has_nonzero_size() {
        let r = Reg::P(PhysReg::Rax);
        let samples = vec![
            MInst::SetCc { cc: Cc::E, dst: r },
            MInst::Jcc {
                cc: Cc::E,
                target: 0,
            },
            MInst::Jmp { target: 0 },
            MInst::Call {
                callee: "f".into(),
                args: vec![],
                dst: None,
            },
            MInst::Ret { src: None },
            MInst::Spill { slot: 0, src: r },
            MInst::Reload { dst: r, slot: 0 },
            MInst::GetArg { dst: r, index: 0 },
            MInst::Ud2,
        ];
        for s in samples {
            assert!(inst_size(&s) > 0, "{s:?}");
        }
    }
}
