//! Instruction selection: frost IR → MIR.
//!
//! The undefined-behavior story follows §6 of the paper exactly:
//!
//! * `freeze %x` lowers to a **register copy** — at machine level a copy
//!   gives every use of the destination the same bits, which is
//!   precisely freeze's semantics;
//! * the `poison`/`undef` constants lower to a **pinned undef register**
//!   — a virtual register that is never defined, whose live range the
//!   allocator must still honor ("our prototype reserves a register for
//!   each poison value within a function, during its live range only"),
//!   reproducing the register-pressure effect measured in §7.2;
//! * small vectors (≤ 64 bits) are packed into scalar registers;
//!   element access becomes shift/mask arithmetic.

use std::collections::HashMap;

use frost_ir::{
    BinOp, BlockId, CastKind, Cond, Constant, Function, Inst, InstId, Module, Terminator, Ty, Value,
};

use crate::mir::{AluOp, Cc, MBlock, MFunc, MInst, MModule, Operand, Reg, Width};

/// Instruction-selection failures (unsupported types or shapes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IselError(pub String);

impl std::fmt::Display for IselError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "isel: {}", self.0)
    }
}

impl std::error::Error for IselError {}

/// Compiles a whole module to MIR.
///
/// # Errors
///
/// Returns [`IselError`] for types wider than 64 bits or other shapes
/// the target cannot express.
pub fn select_module(module: &Module) -> Result<MModule, IselError> {
    let mut out = MModule::default();
    for f in &module.functions {
        out.functions.push(select_function(f)?);
    }
    Ok(out)
}

/// The machine width of an IR type (vectors are packed).
fn width_of(ty: &Ty) -> Result<Width, IselError> {
    Width::for_bits(ty.bitwidth())
        .ok_or_else(|| IselError(format!("type {ty} does not fit a 64-bit register")))
}

struct Isel<'a> {
    func: &'a Function,
    blocks: Vec<MBlock>,
    /// IR instruction -> vreg holding its result.
    values: HashMap<InstId, Reg>,
    /// Param index -> vreg.
    params: Vec<Reg>,
    next_vreg: u32,
    /// The per-function pinned undef register (§6), allocated lazily.
    undef_vreg: Option<Reg>,
    undef_list: Vec<u32>,
    /// Bytes of `alloca` frame assigned so far (each slot 8-aligned).
    frame_bytes: u32,
    /// Constant-index geps whose every use is a load/store address:
    /// folded into the access's displacement instead of a `lea`.
    gep_folds: HashMap<InstId, (Value, i32)>,
}

impl<'a> Isel<'a> {
    fn fresh(&mut self) -> Reg {
        let r = Reg::V(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    fn emit(&mut self, bb: usize, inst: MInst) {
        self.blocks[bb].insts.push(inst);
    }

    /// The pinned undef register (created on first demand).
    fn undef_reg(&mut self) -> Reg {
        if let Some(r) = self.undef_vreg {
            return r;
        }
        let r = self.fresh();
        if let Reg::V(n) = r {
            self.undef_list.push(n);
        }
        self.undef_vreg = Some(r);
        r
    }

    /// Materializes an operand into a register.
    fn reg_of(&mut self, bb: usize, v: &Value) -> Result<Reg, IselError> {
        match self.operand_of(bb, v)? {
            Operand::R(r) => Ok(r),
            Operand::Imm(imm) => {
                let ty = self.func.value_ty(v);
                let dst = self.fresh();
                self.emit(
                    bb,
                    MInst::Mov {
                        dst,
                        src: Operand::Imm(imm),
                        width: width_of(&ty)?,
                    },
                );
                Ok(dst)
            }
        }
    }

    /// Lowers an operand to a register or immediate.
    fn operand_of(&mut self, bb: usize, v: &Value) -> Result<Operand, IselError> {
        match v {
            Value::Inst(id) => Ok(Operand::R(self.values[id])),
            Value::Arg(i) => Ok(Operand::R(self.params[*i as usize])),
            Value::Const(c) => self.const_operand(bb, c),
        }
    }

    /// The `(base register, displacement)` addressing mode for a memory
    /// access through `ptr`: a folded constant-index gep contributes its
    /// displacement, everything else is a plain `[reg + 0]`.
    fn addr_of(&mut self, bb: usize, ptr: &Value) -> Result<(Reg, i32), IselError> {
        if let Value::Inst(id) = ptr {
            if let Some((base, disp)) = self.gep_folds.get(id) {
                let (base, disp) = (base.clone(), *disp);
                return Ok((self.reg_of(bb, &base)?, disp));
            }
        }
        Ok((self.reg_of(bb, ptr)?, 0))
    }

    fn const_operand(&mut self, bb: usize, c: &Constant) -> Result<Operand, IselError> {
        match c {
            Constant::Int { value, .. } => Ok(Operand::Imm(*value as i64)),
            Constant::Null(_) => Ok(Operand::Imm(0)),
            // §6: poison (and legacy undef) become a pinned undef
            // register.
            Constant::Poison(_) | Constant::Undef(_) => Ok(Operand::R(self.undef_reg())),
            Constant::Vector(elems) => {
                // Pack defined elements; poison elements contribute the
                // undef register's bits — conservatively pack them as 0
                // unless the whole constant is undef-like.
                if elems
                    .iter()
                    .any(|e| e.contains_poison() || e.contains_undef())
                    && elems
                        .iter()
                        .all(|e| e.contains_poison() || e.contains_undef())
                {
                    return Ok(Operand::R(self.undef_reg()));
                }
                let elem_bits = elems[0].ty().bitwidth();
                let mut packed: i64 = 0;
                for (i, e) in elems.iter().enumerate() {
                    let bits = e.as_int().unwrap_or(0);
                    packed |= (bits as i64) << (i as u32 * elem_bits);
                }
                let _ = bb;
                Ok(Operand::Imm(packed))
            }
        }
    }
}

fn alu_for(op: BinOp) -> Option<(AluOp, bool)> {
    Some(match op {
        BinOp::Add => (AluOp::Add, false),
        BinOp::Sub => (AluOp::Sub, false),
        BinOp::Mul => (AluOp::Imul, false),
        BinOp::And => (AluOp::And, false),
        BinOp::Or => (AluOp::Or, false),
        BinOp::Xor => (AluOp::Xor, false),
        BinOp::Shl => (AluOp::Shl, false),
        BinOp::LShr => (AluOp::Shr, false),
        BinOp::AShr => (AluOp::Sar, true),
        _ => return None,
    })
}

/// Finds constant-index geps whose every use is the address operand of
/// a load or store, mapping gep -> (base value, byte displacement).
/// Such a gep needs no `lea` of its own — the displacement rides along
/// in the access's addressing mode, which keeps the §7.2 LEA cost model
/// honest about address arithmetic the hardware folds for free.
fn fold_geps(func: &Function) -> HashMap<InstId, (Value, i32)> {
    fn kill(v: &Value, cand: &mut HashMap<InstId, (Value, i32)>) {
        if let Value::Inst(id) = v {
            cand.remove(id);
        }
    }

    let mut cand: HashMap<InstId, (Value, i32)> = HashMap::new();
    for bb in func.block_ids() {
        for &id in &func.block(bb).insts {
            let Inst::Gep {
                elem_ty,
                base,
                idx_ty,
                idx,
                ..
            } = func.inst(id)
            else {
                continue;
            };
            let Some(raw) = idx.as_int_const() else {
                continue;
            };
            let bits = idx_ty.bitwidth();
            if bits == 0 || bits > 64 {
                continue;
            }
            let sidx = ((raw as i128) << (128 - bits)) >> (128 - bits);
            let disp = sidx.checked_mul(i128::from(elem_ty.byte_size()));
            let Some(disp) = disp.and_then(|d| i32::try_from(d).ok()) else {
                continue;
            };
            cand.insert(id, (base.clone(), disp));
        }
    }
    if cand.is_empty() {
        return cand;
    }
    for bb in func.block_ids() {
        for &id in &func.block(bb).insts {
            match func.inst(id) {
                // The address position of a memory access is the one
                // use a fold absorbs.
                Inst::Load { .. } => {}
                Inst::Store { val, .. } => kill(val, &mut cand),
                inst => {
                    for v in inst.operands() {
                        kill(&v, &mut cand);
                    }
                }
            }
        }
        match &func.block(bb).term {
            Terminator::Ret(Some(v)) => kill(v, &mut cand),
            Terminator::Br { cond, .. } => kill(cond, &mut cand),
            _ => {}
        }
    }
    cand
}

fn cc_for(cond: Cond) -> Cc {
    match cond {
        Cond::Eq => Cc::E,
        Cond::Ne => Cc::Ne,
        Cond::Ugt => Cc::A,
        Cond::Uge => Cc::Ae,
        Cond::Ult => Cc::B,
        Cond::Ule => Cc::Be,
        Cond::Sgt => Cc::G,
        Cond::Sge => Cc::Ge,
        Cond::Slt => Cc::L,
        Cond::Sle => Cc::Le,
    }
}

/// Compiles one function to MIR (virtual registers; run the register
/// allocator next).
///
/// # Errors
///
/// Returns [`IselError`] on unsupported shapes.
pub fn select_function(func: &Function) -> Result<MFunc, IselError> {
    let mut isel = Isel {
        func,
        blocks: func
            .blocks
            .iter()
            .map(|b| MBlock {
                name: b.name.clone(),
                insts: Vec::new(),
            })
            .collect(),
        values: HashMap::new(),
        params: Vec::new(),
        next_vreg: 0,
        undef_vreg: None,
        undef_list: Vec::new(),
        frame_bytes: 0,
        gep_folds: fold_geps(func),
    };

    // Prologue: fetch arguments into vregs (validating their widths).
    for (i, p) in func.params.iter().enumerate() {
        width_of(&p.ty)?;
        let r = isel.fresh();
        isel.params.push(r);
        isel.emit(0, MInst::GetArg { dst: r, index: i });
    }
    if !func.ret_ty.is_void() {
        width_of(&func.ret_ty)?;
    }

    // Pre-create a vreg for every phi (their copies are emitted in the
    // predecessors).
    for bb in func.block_ids() {
        for &id in &func.block(bb).insts {
            if matches!(func.inst(id), Inst::Phi { .. }) {
                let r = isel.fresh();
                isel.values.insert(id, r);
            }
        }
    }

    // Select in reverse postorder: SSA dominance then guarantees every
    // non-phi operand's definition is already selected (block indices
    // are not topological after CFG surgery like unswitching).
    let rpo = frost_ir::cfg::reverse_postorder(func);
    let mut selected = vec![false; func.blocks.len()];
    for bb in rpo {
        selected[bb.index()] = true;
        let bi = bb.index();
        for &id in &func.block(bb).insts {
            select_inst(&mut isel, bi, id)?;
        }
        // Phi copies for the successors, then the terminator.
        emit_phi_copies(&mut isel, bb)?;
        select_terminator(&mut isel, bb)?;
    }
    // Unreachable blocks are never executed; lower them to traps so the
    // MIR stays structurally complete.
    for (bi, done) in selected.iter().enumerate() {
        if !done {
            isel.blocks[bi].insts.clear();
            isel.blocks[bi].insts.push(MInst::Ud2);
        }
    }

    Ok(MFunc {
        name: func.name.clone(),
        num_params: func.params.len(),
        blocks: isel.blocks,
        num_vregs: isel.next_vreg,
        num_slots: 0,
        frame_bytes: isel.frame_bytes,
        undef_vregs: isel.undef_list,
    })
}

fn select_inst(isel: &mut Isel<'_>, bi: usize, id: InstId) -> Result<(), IselError> {
    let func = isel.func;
    let inst = func.inst(id).clone();
    match &inst {
        Inst::Phi { .. } => Ok(()), // handled via predecessor copies
        Inst::Bin {
            op, ty, lhs, rhs, ..
        } => {
            let width = width_of(ty)?;
            if ty.is_vector() {
                return Err(IselError(format!(
                    "vector arithmetic {op} is not supported"
                )));
            }
            let dst = isel.fresh();
            match op {
                BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => {
                    let l = isel.reg_of(bi, lhs)?;
                    let r = isel.reg_of(bi, rhs)?;
                    isel.emit(
                        bi,
                        MInst::Div {
                            dst,
                            lhs: l,
                            rhs: r,
                            signed: matches!(op, BinOp::SDiv | BinOp::SRem),
                            rem: matches!(op, BinOp::URem | BinOp::SRem),
                            width,
                        },
                    );
                }
                _ => {
                    let (alu, signed) = alu_for(*op).expect("non-division op");
                    let l = isel.reg_of(bi, lhs)?;
                    let r = isel.operand_of(bi, rhs)?;
                    isel.emit(
                        bi,
                        MInst::Alu {
                            op: alu,
                            dst,
                            lhs: l,
                            rhs: r,
                            width,
                            signed,
                        },
                    );
                }
            }
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Icmp { cond, ty, lhs, rhs } => {
            if ty.is_vector() {
                return Err(IselError("vector icmp is not supported".into()));
            }
            let width = width_of(ty)?;
            let l = isel.reg_of(bi, lhs)?;
            let r = isel.operand_of(bi, rhs)?;
            let signed = matches!(cond, Cond::Sgt | Cond::Sge | Cond::Slt | Cond::Sle);
            isel.emit(
                bi,
                MInst::Cmp {
                    lhs: l,
                    rhs: r,
                    width,
                    signed,
                },
            );
            let dst = isel.fresh();
            isel.emit(
                bi,
                MInst::SetCc {
                    cc: cc_for(*cond),
                    dst,
                },
            );
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Select {
            cond,
            ty,
            tval,
            fval,
        } => {
            let width = width_of(ty)?;
            let dst = isel.fresh();
            let f = isel.operand_of(bi, fval)?;
            isel.emit(bi, MInst::Mov { dst, src: f, width });
            let c = isel.reg_of(bi, cond)?;
            isel.emit(
                bi,
                MInst::Test {
                    src: c,
                    width: Width::W8,
                },
            );
            let t = isel.reg_of(bi, tval)?;
            isel.emit(
                bi,
                MInst::CmovCc {
                    cc: Cc::Ne,
                    dst,
                    src: t,
                    width,
                },
            );
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Freeze { ty, val } => {
            // §6: freeze is a register copy.
            let width = width_of(ty)?;
            let src = isel.operand_of(bi, val)?;
            let dst = isel.fresh();
            isel.emit(bi, MInst::Mov { dst, src, width });
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        } => {
            let from = width_of(from_ty)?;
            let to = width_of(to_ty)?;
            let src = isel.reg_of(bi, val)?;
            let dst = isel.fresh();
            match kind {
                CastKind::Trunc => {
                    isel.emit(
                        bi,
                        MInst::Mov {
                            dst,
                            src: Operand::R(src),
                            width: to,
                        },
                    );
                }
                CastKind::Zext | CastKind::Sext => {
                    // Sub-byte source widths need an explicit mask /
                    // shift pair; our frontends only produce legal
                    // widths, but i1 (carried as a byte holding 0/1) is
                    // fine for zext and needs care for sext.
                    let signed = *kind == CastKind::Sext;
                    if from_ty.int_bits() == Some(1) && signed {
                        // sext i1: 0 -> 0, 1 -> -1: neg via 0 - x.
                        let zero = isel.fresh();
                        isel.emit(
                            bi,
                            MInst::Mov {
                                dst: zero,
                                src: Operand::Imm(0),
                                width: to,
                            },
                        );
                        isel.emit(
                            bi,
                            MInst::Alu {
                                op: AluOp::Sub,
                                dst,
                                lhs: zero,
                                rhs: Operand::R(src),
                                width: to,
                                signed: true,
                            },
                        );
                    } else {
                        isel.emit(
                            bi,
                            MInst::MovX {
                                dst,
                                src,
                                from,
                                to,
                                signed,
                            },
                        );
                    }
                }
            }
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Bitcast { to_ty, val, .. } => {
            // Same bit width: a copy.
            let width = width_of(to_ty)?;
            let src = isel.operand_of(bi, val)?;
            let dst = isel.fresh();
            isel.emit(bi, MInst::Mov { dst, src, width });
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Gep {
            elem_ty,
            base,
            idx_ty,
            idx,
            ..
        } => {
            if isel.gep_folds.contains_key(&id) {
                // Every use is a load/store address: the displacement
                // is folded there and no lea is emitted.
                return Ok(());
            }
            let base_r = isel.reg_of(bi, base)?;
            let idx_r = isel.reg_of(bi, idx)?;
            // Widen the index to pointer width (sext, the C `long` cast
            // of §2.4).
            let idx_w = width_of(idx_ty)?;
            let widened = if idx_w == Width::W64 {
                idx_r
            } else {
                let w = isel.fresh();
                isel.emit(
                    bi,
                    MInst::MovX {
                        dst: w,
                        src: idx_r,
                        from: idx_w,
                        to: Width::W64,
                        signed: true,
                    },
                );
                w
            };
            let scale = elem_ty.byte_size();
            let dst = isel.fresh();
            if matches!(scale, 1 | 2 | 4 | 8) {
                isel.emit(
                    bi,
                    MInst::Lea {
                        dst,
                        base: base_r,
                        index: Some((widened, scale as u8)),
                        disp: 0,
                    },
                );
            } else {
                let scaled = isel.fresh();
                isel.emit(
                    bi,
                    MInst::Alu {
                        op: AluOp::Imul,
                        dst: scaled,
                        lhs: widened,
                        rhs: Operand::Imm(i64::from(scale)),
                        width: Width::W64,
                        signed: true,
                    },
                );
                isel.emit(
                    bi,
                    MInst::Lea {
                        dst,
                        base: base_r,
                        index: Some((scaled, 1)),
                        disp: 0,
                    },
                );
            }
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Load { ty, ptr } => {
            let width = width_of(ty)?;
            let (base, disp) = isel.addr_of(bi, ptr)?;
            let dst = isel.fresh();
            isel.emit(
                bi,
                MInst::Load {
                    dst,
                    base,
                    disp,
                    width,
                },
            );
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Store { ty, val, ptr } => {
            let width = width_of(ty)?;
            let src = isel.operand_of(bi, val)?;
            let (base, disp) = isel.addr_of(bi, ptr)?;
            isel.emit(
                bi,
                MInst::Store {
                    base,
                    disp,
                    src,
                    width,
                },
            );
            Ok(())
        }
        Inst::ExtractElement {
            elem_ty, vec, idx, ..
        } => {
            let lane = idx.as_int_const().expect("verified constant lane") as u32;
            let elem_bits = elem_ty.bitwidth();
            let vec_ty = isel.func.value_ty(vec);
            let vw = width_of(&vec_ty)?;
            let src = isel.reg_of(bi, vec)?;
            let shifted = if lane == 0 {
                src
            } else {
                let s = isel.fresh();
                isel.emit(
                    bi,
                    MInst::Alu {
                        op: AluOp::Shr,
                        dst: s,
                        lhs: src,
                        rhs: Operand::Imm(i64::from(lane * elem_bits)),
                        width: vw,
                        signed: false,
                    },
                );
                s
            };
            let dst = isel.fresh();
            let ew = width_of(elem_ty)?;
            if elem_bits == ew.bits() {
                isel.emit(
                    bi,
                    MInst::Mov {
                        dst,
                        src: Operand::R(shifted),
                        width: ew,
                    },
                );
            } else {
                isel.emit(
                    bi,
                    MInst::Alu {
                        op: AluOp::And,
                        dst,
                        lhs: shifted,
                        rhs: Operand::Imm(((1i64 << elem_bits) - 1).max(1)),
                        width: ew,
                        signed: false,
                    },
                );
            }
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::InsertElement {
            elem_ty,
            len,
            vec,
            elt,
            idx,
        } => {
            let lane = idx.as_int_const().expect("verified constant lane") as u32;
            let elem_bits = elem_ty.bitwidth();
            let vw = width_of(&Ty::vector(*len, elem_ty.clone()))?;
            let src = isel.reg_of(bi, vec)?;
            // cleared = vec & ~(mask << lane*bits)
            let lane_mask: i64 = if elem_bits >= 64 {
                -1
            } else {
                (((1u128 << elem_bits) - 1) as i64) << (lane * elem_bits)
            };
            let cleared = isel.fresh();
            isel.emit(
                bi,
                MInst::Alu {
                    op: AluOp::And,
                    dst: cleared,
                    lhs: src,
                    rhs: Operand::Imm(!lane_mask),
                    width: vw,
                    signed: false,
                },
            );
            // shifted_elt = (elt & mask) << lane*bits
            let e = isel.reg_of(bi, elt)?;
            let masked = isel.fresh();
            isel.emit(
                bi,
                MInst::Alu {
                    op: AluOp::And,
                    dst: masked,
                    lhs: e,
                    rhs: Operand::Imm(if elem_bits >= 64 {
                        -1
                    } else {
                        (1i64 << elem_bits) - 1
                    }),
                    width: vw,
                    signed: false,
                },
            );
            let shifted = if lane == 0 {
                masked
            } else {
                let s = isel.fresh();
                isel.emit(
                    bi,
                    MInst::Alu {
                        op: AluOp::Shl,
                        dst: s,
                        lhs: masked,
                        rhs: Operand::Imm(i64::from(lane * elem_bits)),
                        width: vw,
                        signed: false,
                    },
                );
                s
            };
            let dst = isel.fresh();
            isel.emit(
                bi,
                MInst::Alu {
                    op: AluOp::Or,
                    dst,
                    lhs: cleared,
                    rhs: Operand::R(shifted),
                    width: vw,
                    signed: false,
                },
            );
            isel.values.insert(id, dst);
            Ok(())
        }
        Inst::Call {
            ret_ty,
            callee,
            args,
            ..
        } => {
            let mut regs = Vec::with_capacity(args.len());
            for a in args {
                regs.push(isel.reg_of(bi, a)?);
            }
            let dst = if ret_ty.is_void() {
                None
            } else {
                let d = isel.fresh();
                isel.values.insert(id, d);
                Some(d)
            };
            isel.emit(
                bi,
                MInst::Call {
                    callee: callee.clone(),
                    args: regs,
                    dst,
                },
            );
            Ok(())
        }
        Inst::Alloca { ty } => {
            // A static frame slot, 8-aligned so neighbouring slots
            // never share an aligned word.
            let offset = isel.frame_bytes;
            isel.frame_bytes = offset + ty.byte_size().next_multiple_of(8);
            let dst = isel.fresh();
            isel.emit(bi, MInst::FrameAddr { dst, offset });
            isel.values.insert(id, dst);
            Ok(())
        }
        // `assume` generates no machine code: the fact it asserts was
        // for the optimizer, and on the UB executions (false or poison
        // fact) *any* target behavior — including carrying on — refines
        // the source. This mirrors production backends, which drop
        // `llvm.assume` at selection.
        Inst::Assume { .. } => Ok(()),
        // At machine level both pointer casts are bit-identity: the
        // two-phase bookkeeping is an IR-only construct.
        Inst::PtrToInt { to_ty, val, .. } | Inst::IntToPtr { to_ty, val, .. } => {
            let width = width_of(to_ty)?;
            let src = isel.operand_of(bi, val)?;
            let dst = isel.fresh();
            isel.emit(bi, MInst::Mov { dst, src, width });
            isel.values.insert(id, dst);
            Ok(())
        }
    }
}

/// Emits the parallel copies realizing the successors' phis, at the end
/// of block `bb` (before its terminator). Uses per-phi temporaries so
/// simultaneous assignments (swaps) stay correct.
fn emit_phi_copies(isel: &mut Isel<'_>, bb: BlockId) -> Result<(), IselError> {
    let func = isel.func;
    let bi = bb.index();
    for succ in func.block(bb).term.successors() {
        let mut temps: Vec<(Reg, Reg, Width)> = Vec::new();
        for &pid in &func.block(succ).insts {
            let Inst::Phi { ty, incoming } = func.inst(pid) else {
                break;
            };
            let width = width_of(ty)?;
            let (v, _) = incoming
                .iter()
                .find(|(_, from)| *from == bb)
                .ok_or_else(|| IselError(format!("phi {pid} missing incoming for {bb}")))?;
            let src = isel.operand_of(bi, v)?;
            let tmp = isel.fresh();
            isel.emit(
                bi,
                MInst::Mov {
                    dst: tmp,
                    src,
                    width,
                },
            );
            temps.push((isel.values[&pid], tmp, width));
        }
        for (dst, tmp, width) in temps {
            isel.emit(
                bi,
                MInst::Mov {
                    dst,
                    src: Operand::R(tmp),
                    width,
                },
            );
        }
    }
    Ok(())
}

fn select_terminator(isel: &mut Isel<'_>, bb: BlockId) -> Result<(), IselError> {
    let bi = bb.index();
    match isel.func.block(bb).term.clone() {
        Terminator::Ret(None) => {
            isel.emit(bi, MInst::Ret { src: None });
        }
        Terminator::Ret(Some(v)) => {
            let r = isel.reg_of(bi, &v)?;
            isel.emit(bi, MInst::Ret { src: Some(r) });
        }
        Terminator::Jmp(dest) => {
            isel.emit(
                bi,
                MInst::Jmp {
                    target: dest.index(),
                },
            );
        }
        Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } => {
            let c = isel.reg_of(bi, &cond)?;
            isel.emit(
                bi,
                MInst::Test {
                    src: c,
                    width: Width::W8,
                },
            );
            isel.emit(
                bi,
                MInst::Jcc {
                    cc: Cc::Ne,
                    target: then_bb.index(),
                },
            );
            isel.emit(
                bi,
                MInst::Jmp {
                    target: else_bb.index(),
                },
            );
        }
        Terminator::Unreachable => {
            isel.emit(bi, MInst::Ud2);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_function;

    fn mir_of(src: &str) -> MFunc {
        select_function(&parse_function(src).unwrap()).unwrap()
    }

    #[test]
    fn freeze_lowers_to_a_copy() {
        let m = mir_of("define i32 @f(i32 %x) {\nentry:\n  %a = freeze i32 %x\n  ret i32 %a\n}");
        let has_copy = m.blocks[0].insts.iter().any(|i| {
            matches!(
                i,
                MInst::Mov {
                    src: Operand::R(_),
                    ..
                }
            )
        });
        assert!(has_copy, "{m}");
        assert!(m.undef_vregs.is_empty());
    }

    #[test]
    fn poison_lowers_to_pinned_undef_register() {
        let m = mir_of("define i32 @f() {\nentry:\n  %a = add i32 poison, 1\n  ret i32 %a\n}");
        assert_eq!(m.undef_vregs.len(), 1, "{m}");
        // The undef vreg is used but never defined.
        let undef = Reg::V(m.undef_vregs[0]);
        let defined = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.defs().contains(&undef));
        let used = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| i.uses().contains(&undef));
        assert!(!defined && used);
    }

    #[test]
    fn gep_uses_lea_with_scale() {
        let m = mir_of(
            "define i32* @f(i32* %p, i32 %i) {\nentry:\n  %q = getelementptr i32, i32* %p, i32 %i\n  ret i32* %q\n}",
        );
        let lea = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i, MInst::Lea { .. }))
            .expect("lea emitted");
        let MInst::Lea {
            index: Some((_, scale)),
            ..
        } = lea
        else {
            panic!()
        };
        assert_eq!(*scale, 4);
        // The sext of the index is explicit (§2.4's cltq).
        assert!(m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, MInst::MovX { signed: true, .. })));
    }

    #[test]
    fn alloca_becomes_a_frame_slot() {
        let m = mir_of(
            "define i8* @f() {\nentry:\n  %a = alloca i8\n  %b = alloca i32\n  ret i8* %b\n}",
        );
        let addrs: Vec<_> = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, MInst::FrameAddr { .. }))
            .collect();
        assert_eq!(addrs.len(), 2, "{m}");
        // Slots are disjoint and 8-aligned; the frame covers both.
        let MInst::FrameAddr { offset: o0, .. } = addrs[0] else {
            panic!()
        };
        let MInst::FrameAddr { offset: o1, .. } = addrs[1] else {
            panic!()
        };
        assert_eq!((*o0, *o1), (0, 8));
        assert_eq!(m.frame_bytes, 16);
    }

    #[test]
    fn pointer_casts_become_copies() {
        let m = mir_of(
            "define i8* @f(i8* %p) {\nentry:\n  %i = ptrtoint i8* %p to i32\n  %q = inttoptr i32 %i to i8*\n  ret i8* %q\n}",
        );
        let movs = m.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    MInst::Mov {
                        src: Operand::R(_),
                        ..
                    }
                )
            })
            .count();
        assert!(movs >= 2, "{m}");
    }

    #[test]
    fn const_gep_folds_into_load_displacement() {
        let m = mir_of(
            "define i32 @f(i32* %p) {\nentry:\n  %q = getelementptr i32, i32* %p, i32 3\n  %v = load i32, i32* %q\n  ret i32 %v\n}",
        );
        // No lea: the gep rides in the load's addressing mode.
        assert!(
            !m.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i, MInst::Lea { .. })),
            "{m}"
        );
        let load = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i, MInst::Load { .. }))
            .expect("load emitted");
        let MInst::Load { disp, .. } = load else {
            panic!()
        };
        assert_eq!(*disp, 12);
    }

    #[test]
    fn escaping_gep_keeps_its_lea() {
        // The gep is returned as well as loaded: it must still be
        // materialized.
        let m = mir_of(
            "define i32* @f(i32* %p) {\nentry:\n  %q = getelementptr i32, i32* %p, i32 3\n  %v = load i32, i32* %q\n  store i32 %v, i32* %q\n  ret i32* %q\n}",
        );
        assert!(
            m.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i, MInst::Lea { .. })),
            "{m}"
        );
    }

    #[test]
    fn branches_become_test_and_jcc() {
        let m = mir_of(
            r#"
define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 10
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"#,
        );
        let entry = &m.blocks[0].insts;
        assert!(entry.iter().any(|i| matches!(i, MInst::Cmp { .. })));
        assert!(entry
            .iter()
            .any(|i| matches!(i, MInst::SetCc { cc: Cc::L, .. })));
        assert!(entry
            .iter()
            .any(|i| matches!(i, MInst::Jcc { cc: Cc::Ne, .. })));
    }

    #[test]
    fn phis_become_parallel_copies_in_predecessors() {
        let m = mir_of(
            r#"
define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ %x, %a ], [ %y, %b ]
  ret i32 %p
}
"#,
        );
        // Each of a and b carries two movs (tmp + phi write).
        for bi in [1usize, 2] {
            let movs = m.blocks[bi]
                .insts
                .iter()
                .filter(|i| matches!(i, MInst::Mov { .. }))
                .count();
            assert_eq!(movs, 2, "{m}");
        }
    }

    #[test]
    fn select_uses_cmov() {
        let m = mir_of(
            "define i32 @f(i1 %c, i32 %a, i32 %b) {\nentry:\n  %r = select i1 %c, i32 %a, i32 %b\n  ret i32 %r\n}",
        );
        assert!(
            m.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, MInst::CmovCc { .. })),
            "{m}"
        );
    }

    #[test]
    fn vector_insert_extract_become_shift_mask() {
        let m = mir_of(
            r#"
define i16 @f(<2 x i16> %v, i16 %e) {
entry:
  %v2 = insertelement <2 x i16> %v, i16 %e, i32 1
  %r = extractelement <2 x i16> %v2, i32 1
  ret i16 %r
}
"#,
        );
        let shifts = m
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    MInst::Alu {
                        op: AluOp::Shl | AluOp::Shr,
                        ..
                    }
                )
            })
            .count();
        assert!(shifts >= 2, "{m}");
    }

    #[test]
    fn wide_types_are_rejected() {
        let err = select_function(
            &parse_function("define i128 @f(i128 %x) {\nentry:\n  ret i128 %x\n}").unwrap(),
        )
        .unwrap_err();
        assert!(err.0.contains("does not fit"));
    }
}
