//! Linear-scan register allocation (Poletto–Sarkar) with spilling.
//!
//! Pinned undef vregs (the §6 lowering of poison) have an interval from
//! function entry to their last use: the allocator genuinely *reserves a
//! register for each poison value during its live range*, the
//! register-pressure effect §7.2 measures. The allocation preference
//! order puts `R13`–`R15` last, so added pressure (e.g. from a freeze
//! copy) can shift hot values onto the slow-LEA registers — the Queens
//! anecdote's mechanism.

use std::collections::{HashMap, HashSet};

use crate::mir::{MFunc, MInst, PhysReg, Reg};

/// Statistics from one allocation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Virtual registers processed.
    pub vregs: u32,
    /// Intervals spilled to the stack.
    pub spilled: u32,
    /// Peak number of simultaneously live intervals.
    pub peak_pressure: u32,
}

/// Allocates registers in place; returns statistics.
///
/// After this runs, no `Reg::V` remains in the function and
/// `num_slots` reflects the spill area.
pub fn allocate(func: &mut MFunc) -> AllocStats {
    // --- Linearize: global instruction numbers per (block, index). ---
    let mut block_start = Vec::with_capacity(func.blocks.len());
    let mut counter: u32 = 0;
    for b in &func.blocks {
        block_start.push(counter);
        counter += b.insts.len() as u32 + 1; // +1 keeps block ends distinct
    }
    let total_points = counter;

    // --- Block-level liveness (use/def, then backward dataflow). ---
    let nblocks = func.blocks.len();
    let mut gen: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut kill: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (bi, b) in func.blocks.iter().enumerate() {
        for inst in &b.insts {
            for u in inst.uses() {
                if let Reg::V(v) = u {
                    if !kill[bi].contains(&v) {
                        gen[bi].insert(v);
                    }
                }
            }
            for d in inst.defs() {
                if let Reg::V(v) = d {
                    kill[bi].insert(v);
                }
            }
            match inst {
                MInst::Jmp { target } => succs[bi].push(*target),
                MInst::Jcc { target, .. } => succs[bi].push(*target),
                _ => {}
            }
        }
    }
    let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    loop {
        let mut changed = false;
        for bi in (0..nblocks).rev() {
            let mut out: HashSet<u32> = HashSet::new();
            for &s in &succs[bi] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<u32> = gen[bi].clone();
            for &v in &out {
                if !kill[bi].contains(&v) {
                    inn.insert(v);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- Intervals: [start, end] per vreg over the linear order. ---
    let mut start: HashMap<u32, u32> = HashMap::new();
    let mut end: HashMap<u32, u32> = HashMap::new();
    let touch = |v: u32, point: u32, start: &mut HashMap<u32, u32>, end: &mut HashMap<u32, u32>| {
        start
            .entry(v)
            .and_modify(|s| *s = (*s).min(point))
            .or_insert(point);
        end.entry(v)
            .and_modify(|e| *e = (*e).max(point))
            .or_insert(point);
    };
    for (bi, b) in func.blocks.iter().enumerate() {
        let bstart = block_start[bi];
        let bend = bstart + b.insts.len() as u32;
        for &v in &live_in[bi] {
            touch(v, bstart, &mut start, &mut end);
        }
        for &v in &live_out[bi] {
            touch(v, bend, &mut start, &mut end);
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            let point = bstart + ii as u32;
            for r in inst.uses().into_iter().chain(inst.defs()) {
                if let Reg::V(v) = r {
                    touch(v, point, &mut start, &mut end);
                }
            }
        }
    }
    // Pinned undef registers are live from entry (they are "defined" by
    // the environment).
    for &v in &func.undef_vregs {
        if let Some(e) = end.get(&v).copied() {
            touch(v, 0, &mut start, &mut end);
            let _ = e;
        }
    }

    // --- Linear scan. ---
    let mut intervals: Vec<(u32, u32, u32)> =
        start.iter().map(|(&v, &s)| (s, end[&v], v)).collect();
    intervals.sort_unstable();

    let mut free: Vec<PhysReg> = PhysReg::ALLOCATABLE.iter().rev().copied().collect();
    let mut active: Vec<(u32, u32, PhysReg)> = Vec::new(); // (end, vreg, reg)
    let mut assignment: HashMap<u32, PhysReg> = HashMap::new();
    let mut spilled: HashMap<u32, u32> = HashMap::new();
    let mut next_slot = func.num_slots;
    let mut stats = AllocStats {
        vregs: intervals.len() as u32,
        ..AllocStats::default()
    };

    for &(s, e, v) in &intervals {
        // Expire old intervals.
        active.retain(|&(aend, _, reg)| {
            if aend < s {
                free.push(reg);
                false
            } else {
                true
            }
        });
        stats.peak_pressure = stats.peak_pressure.max(active.len() as u32 + 1);
        if let Some(reg) = free.pop() {
            assignment.insert(v, reg);
            active.push((e, v, reg));
            active.sort_unstable();
        } else {
            // Spill the active interval that ends last (or this one).
            let (last_end, last_v, last_reg) = *active.last().expect("active is full");
            if last_end > e {
                // Steal its register.
                spilled.insert(last_v, next_slot);
                assignment.remove(&last_v);
                next_slot += 1;
                active.pop();
                assignment.insert(v, last_reg);
                active.push((e, v, last_reg));
                active.sort_unstable();
            } else {
                spilled.insert(v, next_slot);
                next_slot += 1;
            }
        }
        let _ = total_points;
    }
    stats.spilled = spilled.len() as u32;
    func.num_slots = next_slot;

    // --- Rewrite: assigned vregs -> phys; spilled vregs -> scratch with
    // reload/spill around each use/def. ---
    let scratch = [PhysReg::R10, PhysReg::R11];
    for b in &mut func.blocks {
        let mut new_insts: Vec<MInst> = Vec::with_capacity(b.insts.len());
        for mut inst in std::mem::take(&mut b.insts) {
            // Map spilled uses to scratch registers.
            let mut scratch_used = 0usize;
            let mut local: HashMap<u32, PhysReg> = HashMap::new();
            for u in inst.uses() {
                if let Reg::V(v) = u {
                    if let Some(&slot) = spilled.get(&v) {
                        let sreg = *local.entry(v).or_insert_with(|| {
                            let r = scratch[scratch_used % 2];
                            scratch_used += 1;
                            r
                        });
                        new_insts.push(MInst::Reload {
                            dst: Reg::P(sreg),
                            slot,
                        });
                    }
                }
            }
            // Defs of spilled vregs also go through scratch.
            let mut def_spill: Option<(PhysReg, u32)> = None;
            for d in inst.defs() {
                if let Reg::V(v) = d {
                    if let Some(&slot) = spilled.get(&v) {
                        let r = *local.entry(v).or_insert(scratch[scratch_used % 2]);
                        def_spill = Some((r, slot));
                    }
                }
            }
            inst.map_regs(|r| match r {
                Reg::V(v) => {
                    if let Some(&p) = local.get(&v) {
                        Reg::P(p)
                    } else if let Some(&p) = assignment.get(&v) {
                        Reg::P(p)
                    } else {
                        // A vreg with no interval is never read: it is a
                        // dead def; park it in scratch.
                        Reg::P(PhysReg::R11)
                    }
                }
                p => p,
            });
            new_insts.push(inst);
            if let Some((r, slot)) = def_spill {
                new_insts.push(MInst::Spill {
                    slot,
                    src: Reg::P(r),
                });
            }
        }
        b.insts = new_insts;
    }
    func.num_vregs = 0;
    stats
}

/// Which physical register each LEA base ends up in — exposed for the
/// Queens-anecdote experiment (E9).
pub fn lea_base_registers(func: &MFunc) -> Vec<PhysReg> {
    let mut out = Vec::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let MInst::Lea {
                base: Reg::P(p), ..
            } = inst
            {
                out.push(*p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::select_function;
    use frost_ir::parse_function;

    fn alloc(src: &str) -> (MFunc, AllocStats) {
        let mut m = select_function(&parse_function(src).unwrap()).unwrap();
        let stats = allocate(&mut m);
        (m, stats)
    }

    fn no_vregs(f: &MFunc) -> bool {
        f.blocks.iter().flat_map(|b| &b.insts).all(|i| {
            i.uses()
                .iter()
                .chain(i.defs().iter())
                .all(|r| matches!(r, Reg::P(_)))
        })
    }

    #[test]
    fn straight_line_allocates_without_spills() {
        let (m, stats) = alloc(
            r#"
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, %a
  %z = xor i32 %y, %b
  ret i32 %z
}
"#,
        );
        assert!(no_vregs(&m), "{m}");
        assert_eq!(stats.spilled, 0);
        assert_eq!(m.num_slots, 0);
    }

    #[test]
    fn high_pressure_spills() {
        // 16 simultaneously live values exceed the 12 allocatable regs.
        let mut body = String::from("define i64 @f(i64 %a, i64 %b) {\nentry:\n");
        for i in 0..16 {
            body.push_str(&format!("  %v{i} = add i64 %a, {i}\n"));
        }
        // Keep them all live: a chain of xors.
        body.push_str("  %acc0 = xor i64 %v0, %v1\n");
        for i in 1..15 {
            body.push_str(&format!(
                "  %acc{i} = xor i64 %acc{} , %v{}\n",
                i - 1,
                i + 1
            ));
        }
        body.push_str("  ret i64 %acc14\n}\n");
        let (m, stats) = alloc(&body);
        assert!(no_vregs(&m), "{m}");
        assert!(stats.spilled > 0, "{stats:?}");
        assert!(m.num_slots > 0);
        assert!(m.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, MInst::Spill { .. })));
        assert!(m.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, MInst::Reload { .. })));
    }

    #[test]
    fn loops_keep_values_alive_across_back_edges() {
        let (m, _) = alloc(
            r#"
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %head ]
  %s = phi i32 [ 0, %entry ], [ %s2, %head ]
  %s2 = add i32 %s, %i
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, %n
  br i1 %c, label %head, label %exit
exit:
  ret i32 %s2
}
"#,
        );
        assert!(no_vregs(&m), "{m}");
        // The loop-carried values and %n must not share a register at
        // the same program point; the simulator test (sim.rs) verifies
        // behavior end-to-end.
    }

    #[test]
    fn undef_vreg_occupies_a_register() {
        let (m, stats) =
            alloc("define i32 @f(i32 %x) {\nentry:\n  %a = add i32 poison, %x\n  ret i32 %a\n}");
        assert!(no_vregs(&m), "{m}");
        // The pinned undef register consumed an interval.
        assert!(stats.vregs >= 2);
    }
}
