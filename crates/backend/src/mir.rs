//! The machine IR (MIR): an x86-flavoured, register-based
//! representation produced by instruction selection.
//!
//! MIR has no poison and no freeze: §6's lowering converts poison
//! values into *pinned undef registers* (a vreg that is never defined —
//! reads yield whatever the register holds) and `freeze` into plain
//! register copies (all uses of the copy observe one value).

use std::fmt;

/// Operand widths supported by the machine (i1 is carried in a byte).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Width {
    /// 8-bit.
    W8,
    /// 16-bit.
    W16,
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
}

impl Width {
    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// The narrowest machine width holding `bits` (i1..i64).
    pub fn for_bits(bits: u32) -> Option<Width> {
        match bits {
            0 => None,
            1..=8 => Some(Width::W8),
            9..=16 => Some(Width::W16),
            17..=32 => Some(Width::W32),
            33..=64 => Some(Width::W64),
            _ => None,
        }
    }

    /// Masks a 64-bit payload to this width.
    pub fn mask(self, v: u64) -> u64 {
        match self {
            Width::W64 => v,
            w => v & ((1u64 << w.bits()) - 1),
        }
    }
}

/// The machine's physical registers. `Rsp`/`Rbp` are reserved for the
/// stack; `R10`/`R11` are reserved as spill scratch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum PhysReg {
    Rax,
    Rcx,
    Rdx,
    Rbx,
    Rsi,
    Rdi,
    R8,
    R9,
    R12,
    R13,
    R14,
    R15,
    // Reserved:
    R10,
    R11,
}

impl PhysReg {
    /// Registers available to the allocator, in allocation-preference
    /// order. `R13`..`R15` come last: they are the "expensive" LEA
    /// registers of the §7.2 Queens anecdote, used only under pressure.
    pub const ALLOCATABLE: [PhysReg; 12] = [
        PhysReg::Rax,
        PhysReg::Rcx,
        PhysReg::Rdx,
        PhysReg::Rbx,
        PhysReg::Rsi,
        PhysReg::Rdi,
        PhysReg::R8,
        PhysReg::R9,
        PhysReg::R12,
        PhysReg::R13,
        PhysReg::R14,
        PhysReg::R15,
    ];

    /// Index into a dense register file array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Registers with a slower LEA on some microarchitectures (the
    /// Intel Optimization Reference Manual point cited in §7.2).
    pub fn lea_is_slow(self) -> bool {
        matches!(self, PhysReg::R13 | PhysReg::Rbx)
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PhysReg::Rax => "rax",
            PhysReg::Rcx => "rcx",
            PhysReg::Rdx => "rdx",
            PhysReg::Rbx => "rbx",
            PhysReg::Rsi => "rsi",
            PhysReg::Rdi => "rdi",
            PhysReg::R8 => "r8",
            PhysReg::R9 => "r9",
            PhysReg::R10 => "r10",
            PhysReg::R11 => "r11",
            PhysReg::R12 => "r12",
            PhysReg::R13 => "r13",
            PhysReg::R14 => "r14",
            PhysReg::R15 => "r15",
        };
        f.write_str(name)
    }
}

/// A register reference: virtual before allocation, physical after.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Reg {
    /// A virtual register.
    V(u32),
    /// A physical register.
    P(PhysReg),
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::V(n) => write!(f, "v{n}"),
            Reg::P(p) => write!(f, "%{p}"),
        }
    }
}

/// A register-or-immediate operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A register.
    R(Reg),
    /// A sign-extended immediate.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::R(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
        }
    }
}

/// Two-operand ALU opcodes (`dst = lhs op rhs`; encoded as x86
/// two-address, costed accordingly).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Imul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Imul => "imul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
        };
        f.write_str(s)
    }
}

/// Condition codes for `setcc`/`cmovcc`/`jcc`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Cc {
    E,
    Ne,
    A,
    Ae,
    B,
    Be,
    G,
    Ge,
    L,
    Le,
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::A => "a",
            Cc::Ae => "ae",
            Cc::B => "b",
            Cc::Be => "be",
            Cc::G => "g",
            Cc::Ge => "ge",
            Cc::L => "l",
            Cc::Le => "le",
        };
        f.write_str(s)
    }
}

/// A machine instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum MInst {
    /// `mov dst, src` (register copy or immediate materialization).
    /// Also the lowering of `freeze` (§6).
    Mov {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// `dst = lhs op rhs` (three-address form; encoding accounts for
    /// the x86 two-address mov when `dst != lhs`).
    Alu {
        /// Opcode.
        op: AluOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
        /// Operation width.
        width: Width,
        /// Signed interpretation (shifts).
        signed: bool,
    },
    /// Division/remainder (`idiv`/`div`; traps on zero divisor).
    Div {
        /// Quotient (or remainder) destination.
        dst: Reg,
        /// Dividend.
        lhs: Reg,
        /// Divisor.
        rhs: Reg,
        /// Signed division.
        signed: bool,
        /// Produce the remainder instead of the quotient.
        rem: bool,
        /// Operation width.
        width: Width,
    },
    /// `lea dst, [base + index*scale + disp]`.
    Lea {
        /// Destination.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Optional scaled index.
        index: Option<(Reg, u8)>,
        /// Displacement.
        disp: i32,
    },
    /// `lea dst, [rbp - frame + offset]`: the address of byte `offset`
    /// of this activation's `alloca` frame. The frame base register is
    /// implicit (rbp is reserved), so no general-purpose register is
    /// read.
    FrameAddr {
        /// Destination.
        dst: Reg,
        /// Byte offset into the function's alloca frame.
        offset: u32,
    },
    /// Zero- or sign-extending move.
    MovX {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
        /// Source width.
        from: Width,
        /// Destination width.
        to: Width,
        /// Sign-extend when `true`.
        signed: bool,
    },
    /// Load `width` bits from `[base + disp]`.
    Load {
        /// Destination.
        dst: Reg,
        /// Address base register.
        base: Reg,
        /// Displacement.
        disp: i32,
        /// Access width.
        width: Width,
    },
    /// Store `width` bits to `[base + disp]`.
    Store {
        /// Address base register.
        base: Reg,
        /// Displacement.
        disp: i32,
        /// Value to store.
        src: Operand,
        /// Access width.
        width: Width,
    },
    /// `cmp lhs, rhs` (sets flags).
    Cmp {
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
        /// Comparison width.
        width: Width,
        /// Signed flags interpretation recorded for the simulator.
        signed: bool,
    },
    /// `test src, src` (flags := src == 0).
    Test {
        /// Tested register.
        src: Reg,
        /// Width.
        width: Width,
    },
    /// `setcc dst` (dst := cc ? 1 : 0).
    SetCc {
        /// Condition.
        cc: Cc,
        /// Destination.
        dst: Reg,
    },
    /// `cmovcc dst, src`.
    CmovCc {
        /// Condition.
        cc: Cc,
        /// Destination (keeps its value when the condition is false).
        dst: Reg,
        /// Source.
        src: Reg,
        /// Width.
        width: Width,
    },
    /// Conditional jump to a block index.
    Jcc {
        /// Condition.
        cc: Cc,
        /// Target block.
        target: usize,
    },
    /// Unconditional jump to a block index.
    Jmp {
        /// Target block.
        target: usize,
    },
    /// Call a function; arguments and result use abstract slots managed
    /// by the simulator (all-callee-saved model).
    Call {
        /// Callee symbol.
        callee: String,
        /// Argument registers, in order.
        args: Vec<Reg>,
        /// Result register, if any.
        dst: Option<Reg>,
    },
    /// Return (value, if any, in `src`).
    Ret {
        /// Returned register.
        src: Option<Reg>,
    },
    /// Spill a register to a stack slot (inserted by the allocator).
    Spill {
        /// Stack slot index.
        slot: u32,
        /// Source register.
        src: Reg,
    },
    /// Reload a register from a stack slot.
    Reload {
        /// Destination register.
        dst: Reg,
        /// Stack slot index.
        slot: u32,
    },
    /// Fetches the `index`-th function argument into a register
    /// (abstract calling convention; the simulator carries argument
    /// slots across calls).
    GetArg {
        /// Destination.
        dst: Reg,
        /// Argument index.
        index: usize,
    },
    /// The lowering of `unreachable`: trap.
    Ud2,
}

impl MInst {
    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let op = |o: &Operand, out: &mut Vec<Reg>| {
            if let Operand::R(r) = o {
                out.push(*r);
            }
        };
        match self {
            MInst::Mov { src, .. } => op(src, &mut out),
            MInst::Alu { lhs, rhs, .. } => {
                out.push(*lhs);
                op(rhs, &mut out);
            }
            MInst::Div { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            MInst::Lea { base, index, .. } => {
                out.push(*base);
                if let Some((r, _)) = index {
                    out.push(*r);
                }
            }
            MInst::MovX { src, .. } => out.push(*src),
            MInst::Load { base, .. } => out.push(*base),
            MInst::Store { base, src, .. } => {
                out.push(*base);
                op(src, &mut out);
            }
            MInst::Cmp { lhs, rhs, .. } => {
                out.push(*lhs);
                op(rhs, &mut out);
            }
            MInst::Test { src, .. } => out.push(*src),
            MInst::CmovCc { dst, src, .. } => {
                // cmov reads its destination (it may keep it).
                out.push(*dst);
                out.push(*src);
            }
            MInst::Call { args, .. } => out.extend(args.iter().copied()),
            MInst::Ret { src: Some(r) } => out.push(*r),
            MInst::Spill { src, .. } => out.push(*src),
            _ => {}
        }
        out
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            MInst::Mov { dst, .. }
            | MInst::Alu { dst, .. }
            | MInst::Div { dst, .. }
            | MInst::Lea { dst, .. }
            | MInst::MovX { dst, .. }
            | MInst::Load { dst, .. }
            | MInst::SetCc { dst, .. }
            | MInst::CmovCc { dst, .. }
            | MInst::Reload { dst, .. }
            | MInst::FrameAddr { dst, .. }
            | MInst::GetArg { dst, .. } => vec![*dst],
            MInst::Call { dst, .. } => dst.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Rewrites every register reference through `f`.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        let map_op = |o: &mut Operand, f: &mut dyn FnMut(Reg) -> Reg| {
            if let Operand::R(r) = o {
                *r = f(*r);
            }
        };
        match self {
            MInst::Mov { dst, src, .. } => {
                *dst = f(*dst);
                map_op(src, &mut f);
            }
            MInst::Alu { dst, lhs, rhs, .. } => {
                *dst = f(*dst);
                *lhs = f(*lhs);
                map_op(rhs, &mut f);
            }
            MInst::Div { dst, lhs, rhs, .. } => {
                *dst = f(*dst);
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            MInst::Lea {
                dst, base, index, ..
            } => {
                *dst = f(*dst);
                *base = f(*base);
                if let Some((r, _)) = index {
                    *r = f(*r);
                }
            }
            MInst::MovX { dst, src, .. } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            MInst::Load { dst, base, .. } => {
                *dst = f(*dst);
                *base = f(*base);
            }
            MInst::Store { base, src, .. } => {
                *base = f(*base);
                map_op(src, &mut f);
            }
            MInst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                map_op(rhs, &mut f);
            }
            MInst::Test { src, .. } => *src = f(*src),
            MInst::SetCc { dst, .. } => *dst = f(*dst),
            MInst::CmovCc { dst, src, .. } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            MInst::Call { args, dst, .. } => {
                for a in args {
                    *a = f(*a);
                }
                if let Some(d) = dst {
                    *d = f(*d);
                }
            }
            MInst::Ret { src } => {
                if let Some(r) = src {
                    *r = f(*r);
                }
            }
            MInst::Spill { src, .. } => *src = f(*src),
            MInst::Reload { dst, .. }
            | MInst::FrameAddr { dst, .. }
            | MInst::GetArg { dst, .. } => *dst = f(*dst),
            MInst::Jcc { .. } | MInst::Jmp { .. } | MInst::Ud2 => {}
        }
    }
}

/// A machine basic block.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MBlock {
    /// Label (for printing).
    pub name: String,
    /// Instructions; the last is a terminator (`Jmp`/`Jcc`+fallthrough
    /// is not used: blocks end with explicit jumps or `Ret`/`Ud2`).
    pub insts: Vec<MInst>,
}

/// A machine function.
#[derive(Clone, PartialEq, Debug)]
pub struct MFunc {
    /// Symbol name.
    pub name: String,
    /// Number of parameters (passed in abstract argument slots).
    pub num_params: usize,
    /// Blocks; index 0 is the entry.
    pub blocks: Vec<MBlock>,
    /// Number of virtual registers (0 after full allocation).
    pub num_vregs: u32,
    /// Number of spill slots.
    pub num_slots: u32,
    /// Bytes of stack frame reserved for `alloca` (addressed by
    /// [`MInst::FrameAddr`]).
    pub frame_bytes: u32,
    /// Virtual registers that are *pinned undef* (the §6 lowering of
    /// poison): never written, read as whatever the register holds.
    pub undef_vregs: Vec<u32>,
}

impl MFunc {
    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for MFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: # params={} slots={} frame={}",
            self.name, self.num_params, self.num_slots, self.frame_bytes
        )?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, ".{}_{}:", i, b.name)?;
            for inst in &b.insts {
                writeln!(f, "    {inst:?}")?;
            }
        }
        Ok(())
    }
}

/// A compiled module of machine functions.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MModule {
    /// Functions by definition order.
    pub functions: Vec<MFunc>,
}

impl MModule {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&MFunc> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Width::for_bits(1), Some(Width::W8));
        assert_eq!(Width::for_bits(12), Some(Width::W16));
        assert_eq!(Width::for_bits(33), Some(Width::W64));
        assert_eq!(Width::for_bits(65), None);
        assert_eq!(Width::W8.mask(0x1ff), 0xff);
        assert_eq!(Width::W64.mask(u64::MAX), u64::MAX);
    }

    #[test]
    fn uses_and_defs() {
        let i = MInst::Alu {
            op: AluOp::Add,
            dst: Reg::V(2),
            lhs: Reg::V(0),
            rhs: Operand::R(Reg::V(1)),
            width: Width::W32,
            signed: false,
        };
        assert_eq!(i.uses(), vec![Reg::V(0), Reg::V(1)]);
        assert_eq!(i.defs(), vec![Reg::V(2)]);

        let cmov = MInst::CmovCc {
            cc: Cc::Ne,
            dst: Reg::V(3),
            src: Reg::V(4),
            width: Width::W32,
        };
        assert!(
            cmov.uses().contains(&Reg::V(3)),
            "cmov reads its destination"
        );
    }

    #[test]
    fn map_regs_rewrites_everything() {
        let mut i = MInst::Lea {
            dst: Reg::V(0),
            base: Reg::V(1),
            index: Some((Reg::V(2), 4)),
            disp: 8,
        };
        i.map_regs(|r| match r {
            Reg::V(n) => Reg::V(n + 10),
            p => p,
        });
        assert_eq!(
            i,
            MInst::Lea {
                dst: Reg::V(10),
                base: Reg::V(11),
                index: Some((Reg::V(12), 4)),
                disp: 8
            }
        );
    }

    #[test]
    fn allocatable_set_excludes_reserved() {
        assert!(!PhysReg::ALLOCATABLE.contains(&PhysReg::R10));
        assert!(!PhysReg::ALLOCATABLE.contains(&PhysReg::R11));
        assert_eq!(PhysReg::ALLOCATABLE.len(), 12);
        assert!(PhysReg::R13.lea_is_slow());
        assert!(!PhysReg::Rax.lea_is_slow());
    }
}
