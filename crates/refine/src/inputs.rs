//! Enumeration of function inputs for exhaustive refinement checking.
//!
//! For integer parameters every defined value is enumerated plus
//! `poison` (and `undef` under legacy semantics); pointer parameters
//! receive addresses of disjoint cells inside the test memory. This
//! mirrors the paper's validation setup (§6): exhaustive checking over
//! tiny integer types.

use std::sync::{Arc, Mutex, OnceLock};

use frost_core::{poison_of, undef_of, FastHashMap, Memory, Val};
use frost_ir::{Function, Ty};

/// Options controlling input enumeration.
///
/// Build with [`InputOptions::new`] and the `with_*` knobs:
///
/// ```
/// use frost_refine::InputOptions;
/// let opts = InputOptions::new().with_undef(true).with_max_tuples(1 << 10);
/// assert!(opts.include_undef);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InputOptions {
    /// Include `poison` among the argument values.
    pub include_poison: bool,
    /// Include `undef` among the argument values (only meaningful under
    /// legacy semantics).
    pub include_undef: bool,
    /// Bytes of test memory allotted per pointer parameter.
    pub bytes_per_pointer: u32,
    /// Upper bound on the number of argument tuples; enumeration fails
    /// (returns `None`) beyond it.
    pub max_tuples: usize,
}

impl Default for InputOptions {
    fn default() -> InputOptions {
        InputOptions {
            include_poison: true,
            include_undef: false,
            bytes_per_pointer: 4,
            max_tuples: 1 << 16,
        }
    }
}

impl InputOptions {
    /// The default enumeration: poison included, undef excluded, 4
    /// bytes of memory per pointer, at most 2¹⁶ tuples.
    pub fn new() -> InputOptions {
        InputOptions::default()
    }

    /// Returns these options with `poison` included among (or excluded
    /// from) the argument values.
    #[must_use]
    pub fn with_poison(self, include_poison: bool) -> InputOptions {
        InputOptions {
            include_poison,
            ..self
        }
    }

    /// Returns these options with `undef` included among (or excluded
    /// from) the argument values. Only meaningful under legacy
    /// semantics; [`CheckOptions::new`](crate::CheckOptions::new)
    /// already follows `sem.has_undef`.
    #[must_use]
    pub fn with_undef(self, include_undef: bool) -> InputOptions {
        InputOptions {
            include_undef,
            ..self
        }
    }

    /// Returns these options with the given test-memory allotment per
    /// pointer parameter.
    #[must_use]
    pub fn with_bytes_per_pointer(self, bytes_per_pointer: u32) -> InputOptions {
        InputOptions {
            bytes_per_pointer,
            ..self
        }
    }

    /// Returns these options with the given cap on enumerated argument
    /// tuples.
    #[must_use]
    pub fn with_max_tuples(self, max_tuples: usize) -> InputOptions {
        InputOptions { max_tuples, ..self }
    }
}

/// The candidate values for one parameter of type `ty`.
///
/// Returns `None` if the type's domain cannot be enumerated within
/// `cap` values.
pub fn param_values(
    ty: &Ty,
    next_ptr_base: &mut u32,
    opts: &InputOptions,
    cap: usize,
) -> Option<Vec<Val>> {
    match ty {
        Ty::Int(_) => {
            let mut vals = frost_core::enumerate_scalar(ty, cap)?;
            if opts.include_poison {
                vals.push(Val::Poison);
            }
            if opts.include_undef {
                vals.push(undef_of(ty));
            }
            Some(vals)
        }
        Ty::Ptr(_) => {
            // One in-bounds cell per pointer parameter; poison/undef
            // pointers when requested.
            let base = *next_ptr_base;
            *next_ptr_base += opts.bytes_per_pointer;
            let mut vals = vec![Val::Ptr(base)];
            if opts.include_poison {
                vals.push(poison_of(ty));
            }
            Some(vals)
        }
        Ty::Vector { elems, elem } => {
            let elem_vals = param_values(elem, next_ptr_base, opts, cap)?;
            let total = elem_vals.len().checked_pow(*elems)?;
            if total > cap {
                return None;
            }
            let mut tuples: Vec<Vec<Val>> = vec![Vec::new()];
            for _ in 0..*elems {
                let mut next = Vec::with_capacity(tuples.len() * elem_vals.len());
                for t in &tuples {
                    for v in &elem_vals {
                        let mut t2 = t.clone();
                        t2.push(v.clone());
                        next.push(t2);
                    }
                }
                tuples = next;
            }
            Some(tuples.into_iter().map(Val::Vec).collect())
        }
        Ty::Void => None,
    }
}

/// All argument tuples for `func`, plus the test memory its pointer
/// parameters index into.
///
/// Returns `None` if the input space exceeds `opts.max_tuples`.
pub fn enumerate_inputs(func: &Function, opts: &InputOptions) -> Option<(Vec<Vec<Val>>, u32)> {
    let mut next_ptr = Memory::BASE;
    let mut per_param: Vec<Vec<Val>> = Vec::with_capacity(func.params.len());
    for p in &func.params {
        per_param.push(param_values(&p.ty, &mut next_ptr, opts, opts.max_tuples)?);
    }
    let mem_bytes = next_ptr - Memory::BASE;

    let mut tuples: Vec<Vec<Val>> = vec![Vec::new()];
    for vals in &per_param {
        let mut next = Vec::with_capacity(tuples.len().saturating_mul(vals.len()));
        for t in &tuples {
            for v in vals {
                if next.len() >= opts.max_tuples {
                    return None;
                }
                let mut t2 = t.clone();
                t2.push(v.clone());
                next.push(t2);
            }
        }
        tuples = next;
        if tuples.len() > opts.max_tuples {
            return None;
        }
    }
    Some((tuples, mem_bytes))
}

/// A shared, immutable input enumeration: the argument tuples plus the
/// test-memory size, behind an [`Arc`] so concurrent checkers can hold
/// it without copying the tuple list.
pub type SharedInputs = Arc<(Vec<Vec<Val>>, u32)>;

/// Memo table type: parameter type list + options → shared enumeration
/// (or the memoized failure).
type InputMemo = FastHashMap<(Vec<Ty>, InputOptions), Option<SharedInputs>>;

/// The process-wide memo for [`enumerate_inputs_cached`], keyed by
/// everything [`enumerate_inputs`] reads: the parameter type list and
/// the options. Signatures in a campaign number in the dozens, so the
/// table stays tiny for the lifetime of the process.
fn input_memo() -> &'static Mutex<InputMemo> {
    static MEMO: OnceLock<Mutex<InputMemo>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(FastHashMap::default()))
}

/// Memoized [`enumerate_inputs`]. The result depends only on the
/// function's parameter types and the options, and §6 campaigns
/// re-enumerate the same handful of signatures millions of times —
/// checkers on the hot path share one materialized tuple list per
/// signature instead of rebuilding it per check. Unenumerable
/// signatures (`None`) are memoized too.
pub fn enumerate_inputs_cached(func: &Function, opts: &InputOptions) -> Option<SharedInputs> {
    let key = (
        func.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
        *opts,
    );
    if let Some(hit) = input_memo().lock().expect("input memo lock").get(&key) {
        return hit.clone();
    }
    // Enumerate outside the lock; a racing duplicate insert stores an
    // identical value.
    let computed = enumerate_inputs(func, opts).map(Arc::new);
    input_memo()
        .lock()
        .expect("input memo lock")
        .insert(key, computed.clone());
    computed
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::FunctionBuilder;

    fn fn_with(params: &[(&str, Ty)]) -> Function {
        let mut b = FunctionBuilder::new("f", params, Ty::Void);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn int_params_enumerate_all_values_plus_poison() {
        let f = fn_with(&[("x", Ty::Int(2))]);
        let (tuples, mem) = enumerate_inputs(&f, &InputOptions::default()).unwrap();
        assert_eq!(tuples.len(), 5); // 4 values + poison
        assert_eq!(mem, 0);
        assert!(tuples.iter().any(|t| t[0] == Val::Poison));
    }

    #[test]
    fn undef_included_when_requested() {
        let f = fn_with(&[("x", Ty::Int(1))]);
        let opts = InputOptions::new().with_undef(true);
        let (tuples, _) = enumerate_inputs(&f, &opts).unwrap();
        assert_eq!(tuples.len(), 4); // false, true, poison, undef
    }

    #[test]
    fn pointers_get_disjoint_cells() {
        let f = fn_with(&[("p", Ty::ptr_to(Ty::i8())), ("q", Ty::ptr_to(Ty::i8()))]);
        let opts = InputOptions::new().with_poison(false);
        let (tuples, mem) = enumerate_inputs(&f, &opts).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(mem, 8);
        assert_ne!(tuples[0][0], tuples[0][1]);
    }

    #[test]
    fn tuple_count_is_the_product() {
        let f = fn_with(&[("x", Ty::Int(2)), ("y", Ty::Int(1))]);
        let (tuples, _) = enumerate_inputs(&f, &InputOptions::default()).unwrap();
        assert_eq!(tuples.len(), 5 * 3);
    }

    #[test]
    fn overflow_of_cap_returns_none() {
        let f = fn_with(&[("x", Ty::i32())]);
        assert!(enumerate_inputs(&f, &InputOptions::default()).is_none());
        let opts = InputOptions::new().with_max_tuples(100);
        let h = fn_with(&[("x", Ty::Int(4)), ("y", Ty::Int(4))]);
        assert!(enumerate_inputs(&h, &opts).is_none());
    }

    #[test]
    fn cached_inputs_are_shared_per_signature() {
        // An options value no other test uses, so this test owns its
        // process-global memo entries.
        let opts = InputOptions::new().with_max_tuples((1 << 16) - 3);
        let f = fn_with(&[("x", Ty::Int(2))]);
        let g = fn_with(&[("other_name", Ty::Int(2))]);
        let a = enumerate_inputs_cached(&f, &opts).unwrap();
        let b = enumerate_inputs_cached(&g, &opts).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "same signature must share one materialized enumeration"
        );
        assert_eq!(*a, enumerate_inputs(&f, &opts).unwrap());
        // Unenumerable signatures memoize their failure.
        let wide = fn_with(&[("x", Ty::i32())]);
        assert!(enumerate_inputs_cached(&wide, &opts).is_none());
        assert!(enumerate_inputs_cached(&wide, &opts).is_none());
    }

    #[test]
    fn vector_params_enumerate_per_element() {
        let f = fn_with(&[("v", Ty::vector(2, Ty::Int(1)))]);
        let opts = InputOptions::new().with_poison(true);
        let (tuples, _) = enumerate_inputs(&f, &opts).unwrap();
        // 3 choices per element (0, 1, poison), 2 elements.
        assert_eq!(tuples.len(), 9);
    }
}
