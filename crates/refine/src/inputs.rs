//! Enumeration of function inputs for exhaustive refinement checking.
//!
//! For integer parameters every defined value is enumerated plus
//! `poison` (and `undef` under legacy semantics); pointer parameters
//! receive provenance-carrying pointers to disjoint initial memory
//! blocks. This mirrors the paper's validation setup (§6): exhaustive
//! checking over tiny integer types — and, with
//! [`InputOptions::with_memory_values`], over tiny initial memories.

use std::sync::{Arc, Mutex, OnceLock};

use frost_core::{poison_of, undef_of, Bit, FastHashMap, Memory, Ptr, Val};
use frost_ir::{Function, Ty};

/// Options controlling input enumeration.
///
/// Build with [`InputOptions::new`] and the `with_*` knobs:
///
/// ```
/// use frost_refine::InputOptions;
/// let opts = InputOptions::new().with_undef(true).with_max_tuples(1 << 10);
/// assert!(opts.include_undef);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InputOptions {
    /// Include `poison` among the argument values.
    pub include_poison: bool,
    /// Include `undef` among the argument values (only meaningful under
    /// legacy semantics).
    pub include_undef: bool,
    /// Bytes in the initial memory block behind each pointer parameter.
    pub bytes_per_pointer: u32,
    /// Upper bound on the number of argument tuples; enumeration fails
    /// (returns `None`) beyond it.
    pub max_tuples: usize,
    /// Enumerate the *contents* of the initial memory blocks, not just
    /// their shape. Each byte ranges over the reduced alphabet
    /// `{0x00, 0x01, 0xFF, poison}` — 257 states per byte is infeasible
    /// even at two bytes, and these four cover the all-bits patterns
    /// plus the deferred-UB marker that distinguish memory passes. Off
    /// by default: every byte is then the semantics' uninitialized fill.
    pub memory_values: bool,
}

impl Default for InputOptions {
    fn default() -> InputOptions {
        InputOptions {
            include_poison: true,
            include_undef: false,
            bytes_per_pointer: 4,
            max_tuples: 1 << 16,
            memory_values: false,
        }
    }
}

impl InputOptions {
    /// The default enumeration: poison included, undef excluded, 4
    /// bytes of memory per pointer, at most 2¹⁶ tuples, memory contents
    /// not enumerated.
    pub fn new() -> InputOptions {
        InputOptions::default()
    }

    /// Returns these options with `poison` included among (or excluded
    /// from) the argument values.
    #[must_use]
    pub fn with_poison(self, include_poison: bool) -> InputOptions {
        InputOptions {
            include_poison,
            ..self
        }
    }

    /// Returns these options with `undef` included among (or excluded
    /// from) the argument values. Only meaningful under legacy
    /// semantics; [`CheckOptions::new`](crate::CheckOptions::new)
    /// already follows `sem.has_undef`.
    #[must_use]
    pub fn with_undef(self, include_undef: bool) -> InputOptions {
        InputOptions {
            include_undef,
            ..self
        }
    }

    /// Returns these options with the given initial-block size per
    /// pointer parameter.
    #[must_use]
    pub fn with_bytes_per_pointer(self, bytes_per_pointer: u32) -> InputOptions {
        InputOptions {
            bytes_per_pointer,
            ..self
        }
    }

    /// Returns these options with the given cap on enumerated argument
    /// tuples.
    #[must_use]
    pub fn with_max_tuples(self, max_tuples: usize) -> InputOptions {
        InputOptions { max_tuples, ..self }
    }

    /// Returns these options with initial-memory contents enumerated
    /// (or not); see the [`memory_values`](InputOptions::memory_values)
    /// field for the byte alphabet. Combine with a small
    /// [`bytes_per_pointer`](InputOptions::with_bytes_per_pointer) —
    /// the memory space is 4^total-bytes.
    #[must_use]
    pub fn with_memory_values(self, memory_values: bool) -> InputOptions {
        InputOptions {
            memory_values,
            ..self
        }
    }
}

/// The candidate values for one parameter of type `ty`.
///
/// Pointer parameters consume the next initial-block index (pushing its
/// size onto `block_sizes`) and produce a provenance-carrying
/// [`Ptr::Block`] pointer to its start. Returns `None` if the type's
/// domain cannot be enumerated within `cap` values.
pub fn param_values(
    ty: &Ty,
    block_sizes: &mut Vec<u32>,
    opts: &InputOptions,
    cap: usize,
) -> Option<Vec<Val>> {
    match ty {
        Ty::Int(_) => {
            let mut vals = frost_core::enumerate_scalar(ty, cap)?;
            if opts.include_poison {
                vals.push(Val::Poison);
            }
            if opts.include_undef {
                vals.push(undef_of(ty));
            }
            Some(vals)
        }
        Ty::Ptr(_) => {
            // One disjoint initial block per pointer parameter;
            // poison/undef pointers when requested.
            let block = block_sizes.len() as u32;
            block_sizes.push(opts.bytes_per_pointer);
            let mut vals = vec![Val::Ptr(Ptr::Block { block, off: 0 })];
            if opts.include_poison {
                vals.push(poison_of(ty));
            }
            Some(vals)
        }
        Ty::Vector { elems, elem } => {
            let elem_vals = param_values(elem, block_sizes, opts, cap)?;
            let total = elem_vals.len().checked_pow(*elems)?;
            if total > cap {
                return None;
            }
            let mut tuples: Vec<Vec<Val>> = vec![Vec::new()];
            for _ in 0..*elems {
                let mut next = Vec::with_capacity(tuples.len() * elem_vals.len());
                for t in &tuples {
                    for v in &elem_vals {
                        let mut t2 = t.clone();
                        t2.push(v.clone());
                        next.push(t2);
                    }
                }
                tuples = next;
            }
            Some(tuples.into_iter().map(Val::Vec).collect())
        }
        Ty::Void => None,
    }
}

/// All argument tuples for `func`, plus the sizes of the initial memory
/// blocks its pointer parameters point into (one block per pointer
/// parameter, in parameter order).
///
/// Returns `None` if the input space exceeds `opts.max_tuples`.
pub fn enumerate_inputs(func: &Function, opts: &InputOptions) -> Option<(Vec<Vec<Val>>, Vec<u32>)> {
    let mut block_sizes: Vec<u32> = Vec::new();
    let mut per_param: Vec<Vec<Val>> = Vec::with_capacity(func.params.len());
    for p in &func.params {
        per_param.push(param_values(
            &p.ty,
            &mut block_sizes,
            opts,
            opts.max_tuples,
        )?);
    }

    let mut tuples: Vec<Vec<Val>> = vec![Vec::new()];
    for vals in &per_param {
        let mut next = Vec::with_capacity(tuples.len().saturating_mul(vals.len()));
        for t in &tuples {
            for v in vals {
                if next.len() >= opts.max_tuples {
                    return None;
                }
                let mut t2 = t.clone();
                t2.push(v.clone());
                next.push(t2);
            }
        }
        tuples = next;
        if tuples.len() > opts.max_tuples {
            return None;
        }
    }
    Some((tuples, block_sizes))
}

/// The reduced byte alphabet for initial-memory enumeration: `None` is
/// a fully-poison byte.
const MEMORY_BYTES: [Option<u8>; 4] = [Some(0x00), Some(0x01), Some(0xFF), None];

fn byte_bits(byte: Option<u8>) -> [Bit; 8] {
    match byte {
        None => [Bit::Poison; 8],
        Some(v) => {
            let mut bits = [Bit::Zero; 8];
            for (i, b) in bits.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    *b = Bit::One;
                }
            }
            bits
        }
    }
}

/// Every candidate initial memory for the given block shape.
///
/// Without [`InputOptions::memory_values`] this is a single memory
/// whose bytes are all `fill` (the semantics' uninitialized-byte
/// marker). With it, every byte of every initial block independently
/// ranges over the reduced alphabet `{0x00, 0x01, 0xFF, poison}`;
/// returns `None` when 4^total-bytes exceeds `opts.max_tuples`.
pub fn enumerate_memories(
    block_sizes: &[u32],
    opts: &InputOptions,
    fill: Bit,
) -> Option<Vec<Memory>> {
    let base = Memory::with_initial_blocks(block_sizes, fill);
    if !opts.memory_values {
        return Some(vec![base]);
    }
    let total: u32 = block_sizes.iter().sum();
    let count = MEMORY_BYTES.len().checked_pow(total)?;
    if count > opts.max_tuples {
        return None;
    }
    let mut mems = Vec::with_capacity(count);
    for combo in 0..count {
        let mut m = base.clone();
        let mut c = combo;
        for (bi, &size) in block_sizes.iter().enumerate() {
            for off in 0..size {
                let byte = MEMORY_BYTES[c % MEMORY_BYTES.len()];
                c /= MEMORY_BYTES.len();
                let block = bi as u32;
                let stored = m.store_ptr(Ptr::Block { block, off }, &byte_bits(byte));
                debug_assert!(stored, "initial-block store is always in bounds");
            }
        }
        mems.push(m);
    }
    Some(mems)
}

/// A shared, immutable input enumeration: the argument tuples plus the
/// initial-block sizes, behind an [`Arc`] so concurrent checkers can
/// hold it without copying the tuple list.
pub type SharedInputs = Arc<(Vec<Vec<Val>>, Vec<u32>)>;

/// Memo table type: parameter type list + options → shared enumeration
/// (or the memoized failure).
type InputMemo = FastHashMap<(Vec<Ty>, InputOptions), Option<SharedInputs>>;

/// The process-wide memo for [`enumerate_inputs_cached`], keyed by
/// everything [`enumerate_inputs`] reads: the parameter type list and
/// the options. Signatures in a campaign number in the dozens, so the
/// table stays tiny for the lifetime of the process.
fn input_memo() -> &'static Mutex<InputMemo> {
    static MEMO: OnceLock<Mutex<InputMemo>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(FastHashMap::default()))
}

/// Memoized [`enumerate_inputs`]. The result depends only on the
/// function's parameter types and the options, and §6 campaigns
/// re-enumerate the same handful of signatures millions of times —
/// checkers on the hot path share one materialized tuple list per
/// signature instead of rebuilding it per check. Unenumerable
/// signatures (`None`) are memoized too.
pub fn enumerate_inputs_cached(func: &Function, opts: &InputOptions) -> Option<SharedInputs> {
    let key = (
        func.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
        *opts,
    );
    if let Some(hit) = input_memo().lock().expect("input memo lock").get(&key) {
        return hit.clone();
    }
    // Enumerate outside the lock; a racing duplicate insert stores an
    // identical value.
    let computed = enumerate_inputs(func, opts).map(Arc::new);
    input_memo()
        .lock()
        .expect("input memo lock")
        .insert(key, computed.clone());
    computed
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::FunctionBuilder;

    fn fn_with(params: &[(&str, Ty)]) -> Function {
        let mut b = FunctionBuilder::new("f", params, Ty::Void);
        b.ret_void();
        b.finish()
    }

    #[test]
    fn int_params_enumerate_all_values_plus_poison() {
        let f = fn_with(&[("x", Ty::Int(2))]);
        let (tuples, blocks) = enumerate_inputs(&f, &InputOptions::default()).unwrap();
        assert_eq!(tuples.len(), 5); // 4 values + poison
        assert!(blocks.is_empty());
        assert!(tuples.iter().any(|t| t[0] == Val::Poison));
    }

    #[test]
    fn undef_included_when_requested() {
        let f = fn_with(&[("x", Ty::Int(1))]);
        let opts = InputOptions::new().with_undef(true);
        let (tuples, _) = enumerate_inputs(&f, &opts).unwrap();
        assert_eq!(tuples.len(), 4); // false, true, poison, undef
    }

    #[test]
    fn pointers_get_disjoint_blocks() {
        let f = fn_with(&[("p", Ty::ptr_to(Ty::i8())), ("q", Ty::ptr_to(Ty::i8()))]);
        let opts = InputOptions::new().with_poison(false);
        let (tuples, blocks) = enumerate_inputs(&f, &opts).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(blocks, vec![4, 4]);
        assert_eq!(tuples[0][0], Val::Ptr(Ptr::Block { block: 0, off: 0 }));
        assert_eq!(tuples[0][1], Val::Ptr(Ptr::Block { block: 1, off: 0 }));
        assert_ne!(tuples[0][0], tuples[0][1]);
    }

    #[test]
    fn tuple_count_is_the_product() {
        let f = fn_with(&[("x", Ty::Int(2)), ("y", Ty::Int(1))]);
        let (tuples, _) = enumerate_inputs(&f, &InputOptions::default()).unwrap();
        assert_eq!(tuples.len(), 5 * 3);
    }

    #[test]
    fn overflow_of_cap_returns_none() {
        let f = fn_with(&[("x", Ty::i32())]);
        assert!(enumerate_inputs(&f, &InputOptions::default()).is_none());
        let opts = InputOptions::new().with_max_tuples(100);
        let h = fn_with(&[("x", Ty::Int(4)), ("y", Ty::Int(4))]);
        assert!(enumerate_inputs(&h, &opts).is_none());
    }

    #[test]
    fn cached_inputs_are_shared_per_signature() {
        // An options value no other test uses, so this test owns its
        // process-global memo entries.
        let opts = InputOptions::new().with_max_tuples((1 << 16) - 3);
        let f = fn_with(&[("x", Ty::Int(2))]);
        let g = fn_with(&[("other_name", Ty::Int(2))]);
        let a = enumerate_inputs_cached(&f, &opts).unwrap();
        let b = enumerate_inputs_cached(&g, &opts).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "same signature must share one materialized enumeration"
        );
        assert_eq!(*a, enumerate_inputs(&f, &opts).unwrap());
        // Unenumerable signatures memoize their failure.
        let wide = fn_with(&[("x", Ty::i32())]);
        assert!(enumerate_inputs_cached(&wide, &opts).is_none());
        assert!(enumerate_inputs_cached(&wide, &opts).is_none());
    }

    #[test]
    fn vector_params_enumerate_per_element() {
        let f = fn_with(&[("v", Ty::vector(2, Ty::Int(1)))]);
        let opts = InputOptions::new().with_poison(true);
        let (tuples, _) = enumerate_inputs(&f, &opts).unwrap();
        // 3 choices per element (0, 1, poison), 2 elements.
        assert_eq!(tuples.len(), 9);
    }

    #[test]
    fn memory_contents_enumerate_the_reduced_alphabet() {
        let opts = InputOptions::new()
            .with_bytes_per_pointer(1)
            .with_memory_values(true);
        let mems = enumerate_memories(&[1], &opts, Bit::Poison).unwrap();
        assert_eq!(mems.len(), 4); // 0x00, 0x01, 0xFF, poison
        let loaded: Vec<_> = mems
            .iter()
            .map(|m| m.load_ptr(Ptr::Block { block: 0, off: 0 }, 8).unwrap())
            .collect();
        // All four candidate bytes are distinct.
        for i in 0..loaded.len() {
            for j in i + 1..loaded.len() {
                assert_ne!(loaded[i], loaded[j]);
            }
        }
        // Without the knob there is exactly one, all-fill, memory.
        let plain = enumerate_memories(&[1], &InputOptions::new(), Bit::Poison).unwrap();
        assert_eq!(plain.len(), 1);
        assert_eq!(
            plain[0].load_ptr(Ptr::Block { block: 0, off: 0 }, 8),
            Some(vec![Bit::Poison; 8])
        );
    }

    #[test]
    fn memory_space_too_large_returns_none() {
        // 4 bytes/pointer × 2 pointers = 8 bytes → 4^8 = 65536 memories,
        // just within the default cap; 3 pointers overflow it.
        let opts = InputOptions::new().with_memory_values(true);
        assert!(enumerate_memories(&[4, 4], &opts, Bit::Poison).is_some());
        assert!(enumerate_memories(&[4, 4, 4], &opts, Bit::Poison).is_none());
    }
}
