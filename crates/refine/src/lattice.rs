//! The refinement order on values, bits, events, and outcomes.
//!
//! Refinement (written `t ⊑ s`, "t refines s") is the correctness
//! criterion for transformations: every behavior of the target must be
//! allowed by the source. Deferred UB values sit at the top:
//!
//! * anything refines `poison`;
//! * any *defined* value (or `undef`) refines `undef` — but `poison`
//!   does **not** (poison is strictly stronger than undef, §3.4's
//!   `select %c, %x, undef` bug is exactly a violation of this);
//! * a defined value refines only itself.

use frost_core::{Bit, Outcome, OutcomeSet, Val};

/// Returns `true` if value `tgt` refines value `src`.
pub fn val_refines(tgt: &Val, src: &Val) -> bool {
    match (tgt, src) {
        (_, Val::Poison) => true,
        (Val::Poison, _) => false,
        // undef admits any defined value *of the same type* and undef
        // itself.
        (Val::Undef(a), Val::Undef(b)) => a == b,
        (t, Val::Undef(ty)) => t.is_defined() && inhabits(t, ty),
        (Val::Undef(_), _) => false,
        (Val::Vec(t), Val::Vec(s)) => {
            t.len() == s.len() && t.iter().zip(s).all(|(a, b)| val_refines(a, b))
        }
        (a, b) => a == b,
    }
}

/// Returns `true` if a defined value belongs to `ty` (width check for
/// integers, kind check for pointers).
fn inhabits(v: &Val, ty: &frost_ir::Ty) -> bool {
    match (v, ty) {
        (Val::Int { bits, .. }, frost_ir::Ty::Int(b)) => bits == b,
        (Val::Ptr(_), frost_ir::Ty::Ptr(_)) => true,
        _ => false,
    }
}

/// Returns `true` if bit `tgt` refines bit `src`.
pub fn bit_refines(tgt: Bit, src: Bit) -> bool {
    match (tgt, src) {
        (_, Bit::Poison) => true,
        (Bit::Poison, _) => false,
        (_, Bit::Undef) => true, // Zero, One, Undef all refine Undef
        (a, b) => a == b,
    }
}

/// Returns `true` if memory snapshot `tgt` refines `src` bit-wise.
pub fn mem_refines(tgt: &[Bit], src: &[Bit]) -> bool {
    tgt.len() == src.len() && tgt.iter().zip(src).all(|(a, b)| bit_refines(*a, *b))
}

/// Returns `true` if outcome `tgt` refines outcome `src`.
///
/// `src = UB` is refined by anything. A returning target refines a
/// returning source when the returned value, the final memory, and the
/// observable call trace all refine point-wise; call events must agree
/// on callee and environment-chosen return value, and target arguments
/// must refine source arguments.
pub fn outcome_refines(tgt: &Outcome, src: &Outcome) -> bool {
    match (tgt, src) {
        (_, Outcome::Ub) => true,
        (Outcome::Ub, _) => false,
        (
            Outcome::Ret {
                val: tv,
                mem: tm,
                trace: tt,
            },
            Outcome::Ret {
                val: sv,
                mem: sm,
                trace: st,
            },
        ) => {
            let val_ok = match (tv, sv) {
                (None, None) => true,
                (Some(a), Some(b)) => val_refines(a, b),
                _ => false,
            };
            val_ok
                && mem_refines(tm, sm)
                && tt.len() == st.len()
                && tt.iter().zip(st).all(|(a, b)| {
                    a.callee == b.callee
                        && a.ret == b.ret
                        && a.args.len() == b.args.len()
                        && a.args.iter().zip(&b.args).all(|(x, y)| val_refines(x, y))
                })
        }
    }
}

/// Returns `true` if every target behavior is allowed by the source:
/// either the source may exhibit UB (total freedom), or each target
/// outcome refines some source outcome.
pub fn set_refines(tgt: &OutcomeSet, src: &OutcomeSet) -> bool {
    if src.may_ub() {
        return true;
    }
    tgt.iter()
        .all(|t| src.iter().any(|s| outcome_refines(t, s)))
}

/// The target outcomes not justified by any source outcome (empty iff
/// the set refines). Used for counterexample reporting.
pub fn unjustified<'a>(tgt: &'a OutcomeSet, src: &OutcomeSet) -> Vec<&'a Outcome> {
    if src.may_ub() {
        return Vec::new();
    }
    tgt.iter()
        .filter(|t| !src.iter().any(|s| outcome_refines(t, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::Ty;

    fn ret(v: Val) -> Outcome {
        Outcome::Ret {
            val: Some(v),
            mem: Vec::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn poison_is_top() {
        assert!(val_refines(&Val::int(8, 3), &Val::Poison));
        assert!(val_refines(&Val::Undef(Ty::i8()), &Val::Poison));
        assert!(val_refines(&Val::Poison, &Val::Poison));
        assert!(!val_refines(&Val::Poison, &Val::int(8, 3)));
    }

    #[test]
    fn undef_admits_defined_but_not_poison() {
        let u = Val::Undef(Ty::i8());
        assert!(val_refines(&Val::int(8, 9), &u));
        assert!(val_refines(&u, &u));
        assert!(
            !val_refines(&Val::Poison, &u),
            "poison is stronger than undef (§3.4)"
        );
        assert!(!val_refines(&u, &Val::int(8, 9)));
    }

    #[test]
    fn defined_values_refine_only_themselves() {
        assert!(val_refines(&Val::int(8, 3), &Val::int(8, 3)));
        assert!(!val_refines(&Val::int(8, 3), &Val::int(8, 4)));
        assert!(!val_refines(&Val::int(8, 3), &Val::int(16, 3)));
    }

    #[test]
    fn vector_refinement_is_element_wise() {
        let s = Val::Vec(vec![Val::Poison, Val::int(8, 2)]);
        let t = Val::Vec(vec![Val::int(8, 7), Val::int(8, 2)]);
        assert!(val_refines(&t, &s));
        assert!(!val_refines(&s, &t));
    }

    #[test]
    fn refinement_is_reflexive_and_transitive_on_samples() {
        let samples = [
            Val::Poison,
            Val::Undef(Ty::i8()),
            Val::int(8, 0),
            Val::int(8, 255),
            Val::Vec(vec![Val::Poison, Val::int(8, 1)]),
            Val::Vec(vec![Val::Undef(Ty::i8()), Val::int(8, 1)]),
            Val::Vec(vec![Val::int(8, 0), Val::int(8, 1)]),
        ];
        for a in &samples {
            assert!(val_refines(a, a), "reflexive: {a}");
            for b in &samples {
                for c in &samples {
                    if val_refines(a, b) && val_refines(b, c) {
                        assert!(val_refines(a, c), "transitive: {a} ⊑ {b} ⊑ {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn ub_source_allows_everything() {
        let mut src = OutcomeSet::new();
        src.insert(Outcome::Ub);
        let mut tgt = OutcomeSet::new();
        tgt.insert(ret(Val::int(8, 1)));
        tgt.insert(Outcome::Ub);
        assert!(set_refines(&tgt, &src));
    }

    #[test]
    fn target_ub_needs_source_ub() {
        let mut src = OutcomeSet::new();
        src.insert(ret(Val::int(8, 1)));
        let mut tgt = OutcomeSet::new();
        tgt.insert(Outcome::Ub);
        assert!(!set_refines(&tgt, &src));
        assert_eq!(unjustified(&tgt, &src).len(), 1);
    }

    #[test]
    fn narrowing_outcomes_is_refinement() {
        // Source can return 1 or 2; target always returns 1: fine.
        let mut src = OutcomeSet::new();
        src.insert(ret(Val::int(8, 1)));
        src.insert(ret(Val::int(8, 2)));
        let mut tgt = OutcomeSet::new();
        tgt.insert(ret(Val::int(8, 1)));
        assert!(set_refines(&tgt, &src));
        // Widening is not.
        assert!(!set_refines(&src, &tgt));
    }

    #[test]
    fn bit_refinement() {
        assert!(bit_refines(Bit::One, Bit::Poison));
        assert!(bit_refines(Bit::Zero, Bit::Undef));
        assert!(!bit_refines(Bit::Poison, Bit::Undef));
        assert!(!bit_refines(Bit::Zero, Bit::One));
        assert!(bit_refines(Bit::Undef, Bit::Undef));
    }

    #[test]
    fn trace_mismatch_blocks_refinement() {
        use frost_core::Event;
        let mk = |callee: &str, arg: Val| Outcome::Ret {
            val: None,
            mem: Vec::new(),
            trace: vec![Event {
                callee: callee.into(),
                args: vec![arg],
                ret: None,
            }],
        };
        let mut src = OutcomeSet::new();
        src.insert(mk("use", Val::int(8, 1)));
        let mut tgt = OutcomeSet::new();
        tgt.insert(mk("use", Val::int(8, 2)));
        assert!(!set_refines(&tgt, &src), "different observable argument");
        let mut tgt2 = OutcomeSet::new();
        tgt2.insert(mk("other", Val::int(8, 1)));
        assert!(!set_refines(&tgt2, &src), "different callee");
        // Target passing a defined arg where source passed undef is ok.
        let mut src3 = OutcomeSet::new();
        src3.insert(mk("use", Val::Undef(Ty::i8())));
        let mut tgt3 = OutcomeSet::new();
        tgt3.insert(mk("use", Val::int(8, 5)));
        assert!(set_refines(&tgt3, &src3));
    }
}
