//! # frost-refine
//!
//! Alive-style refinement checking for frost IR transformations, by
//! exhaustive enumeration.
//!
//! The paper validates its semantics by exhaustively generating small
//! functions (opt-fuzz) and checking each optimized result against the
//! original with Alive (§6, "Testing the prototype"), over 2-bit integer
//! arithmetic. This crate is the checking half: where Alive discharges
//! refinement queries with an SMT solver, `frost-refine` *enumerates* —
//! all inputs (including poison and, under legacy semantics, undef), all
//! non-deterministic behaviors of source and target — and compares
//! outcome sets under the refinement order. At the paper's bitwidths the
//! enumeration is complete, so a [`CheckResult::Refines`] verdict is a
//! proof over the enumerated domain, and every failure comes with a
//! concrete [`CounterExample`].
//!
//! ```
//! use frost_core::Semantics;
//! use frost_ir::parse_module;
//! use frost_refine::{check_refinement, CheckOptions};
//!
//! // §2.3 of the paper: with nsw, `a + b > a` may be folded to `b > 0`.
//! let src = parse_module(
//!     "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %s = add nsw i4 %a, %b\n  %c = icmp sgt i4 %s, %a\n  ret i1 %c\n}",
//! )?;
//! let tgt = parse_module(
//!     "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %c = icmp sgt i4 %b, 0\n  ret i1 %c\n}",
//! )?;
//! let verdict = check_refinement(&src, "f", &tgt, "f", &CheckOptions::new(Semantics::proposed()));
//! assert!(verdict.is_refinement());
//! # Ok::<(), frost_ir::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod inputs;
pub mod lattice;

pub use check::{
    check_refinement, check_refinement_cached, check_refinement_cached_policy, check_transform,
    CheckOptions, CheckPolicy, CheckResult, CounterExample,
};
pub use inputs::{
    enumerate_inputs, enumerate_inputs_cached, enumerate_memories, InputOptions, SharedInputs,
};
pub use lattice::{bit_refines, mem_refines, outcome_refines, set_refines, val_refines};
