//! End-to-end refinement checking of function pairs (translation
//! validation, à la Alive).
//!
//! Every check is metered through `frost-telemetry` (see
//! docs/OBSERVABILITY.md): the counters `frost.refine.checks`,
//! `.refines`, `.counterexamples`, and `.inconclusive` tally checks by
//! verdict, and — when tracing is enabled — each check runs inside a
//! `refine.check.run` span carrying whether it went through the cache
//! and how it concluded.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use frost_telemetry::Counter;

use frost_core::{
    enumerate_function, uninit_fill, Bit, Engine, ExecError, Limits, Memory, Outcome, OutcomeCache,
    OutcomeSet, Ptr, Semantics, Val,
};
use frost_ir::{Function, FunctionKey, Module, Ty};

use crate::inputs::{enumerate_inputs_cached, enumerate_memories, InputOptions};
use crate::lattice::{set_refines, unjustified};

/// Configuration of a refinement check.
///
/// Build with [`CheckOptions::new`] (one semantics for both sides) or
/// [`CheckOptions::between`] (migration questions), then chain the
/// `with_*` knobs:
///
/// ```
/// use frost_core::{Limits, Semantics};
/// use frost_refine::CheckOptions;
/// let opts = CheckOptions::new(Semantics::proposed())
///     .with_limits(Limits { max_states: 1 << 20, ..Limits::default() });
/// assert_eq!(opts.limits.max_states, 1 << 20);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Semantics the *source* function is evaluated under.
    pub src_sem: Semantics,
    /// Semantics the *target* function is evaluated under (usually the
    /// same; differing semantics express migration questions).
    pub tgt_sem: Semantics,
    /// Execution limits per enumeration.
    pub limits: Limits,
    /// Input enumeration options. `include_undef` defaults to following
    /// `src_sem.has_undef`; see [`CheckOptions::new`].
    pub inputs: InputOptions,
    /// Which execution backend enumerates outcomes. Defaults to
    /// [`Engine::Auto`]: bit-sliced for eligible all-small-int
    /// signatures, the plan machine otherwise.
    pub engine: Engine,
}

impl CheckOptions {
    /// Checks source and target under the same semantics, with undef
    /// inputs exactly when that semantics has undef.
    pub fn new(sem: Semantics) -> CheckOptions {
        CheckOptions::between(sem, sem)
    }

    /// Checks the source under `src_sem` and the target under
    /// `tgt_sem` — the migration question of §7: is code compiled under
    /// one model still correct under another? Undef inputs follow the
    /// *source* semantics (inputs are fed to both sides).
    pub fn between(src_sem: Semantics, tgt_sem: Semantics) -> CheckOptions {
        CheckOptions {
            src_sem,
            tgt_sem,
            limits: Limits::default(),
            inputs: InputOptions::new().with_undef(src_sem.has_undef),
            engine: Engine::Auto,
        }
    }

    /// Returns these options with the given per-enumeration execution
    /// limits.
    #[must_use]
    pub fn with_limits(self, limits: Limits) -> CheckOptions {
        CheckOptions { limits, ..self }
    }

    /// Returns these options with the given input-enumeration options.
    #[must_use]
    pub fn with_inputs(self, inputs: InputOptions) -> CheckOptions {
        CheckOptions { inputs, ..self }
    }

    /// Returns these options with the given execution [`Engine`].
    /// Downstream code selects a backend here instead of naming a
    /// concrete evaluator.
    #[must_use]
    pub fn engine(self, engine: Engine) -> CheckOptions {
        CheckOptions { engine, ..self }
    }
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions::new(Semantics::proposed())
    }
}

/// How a cached check treats the shapes it encounters — the knob that
/// keeps exhaustive campaigns from growing the outcome/plan caches
/// linearly with the enumerated space.
///
/// The default policy stores both sides (right for random corpora and
/// repeated queries, where any shape may recur). Exhaustive sweeps set
/// [`CheckPolicy::transient_src`]: the odometer visits each source
/// exactly once, so caching source enumerations only inflates the
/// working set; targets are still stored because transforms funnel
/// thousands of sources onto a few canonical forms.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckPolicy {
    /// The source function of each pair is seen once and never
    /// revisited: probe the cache for it, but do not store it.
    pub transient_src: bool,
}

/// A concrete witness that the target does not refine the source.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The argument values.
    pub args: Vec<Val>,
    /// The initial memory contents the violation was found under, when
    /// memory contents were enumerated
    /// ([`InputOptions::memory_values`]); `None` under the default
    /// single uninitialized memory.
    pub initial_mem: Option<String>,
    /// Everything the source may do on these arguments.
    pub src_outcomes: OutcomeSet,
    /// Everything the target may do.
    pub tgt_outcomes: OutcomeSet,
    /// A target behavior no source behavior justifies.
    pub witness: Outcome,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "args = (")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        writeln!(f, ")")?;
        if let Some(mem) = &self.initial_mem {
            writeln!(f, "  initial memory: {mem}")?;
        }
        writeln!(f, "  source can: {}", self.src_outcomes)?;
        writeln!(f, "  target can: {}", self.tgt_outcomes)?;
        write!(f, "  unjustified target behavior: {}", self.witness)
    }
}

/// Renders the initial blocks of `mem` byte by byte, e.g.
/// `b0 = [0x01 poison]`.
fn render_initial_mem(mem: &Memory, block_sizes: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (bi, &size) in block_sizes.iter().enumerate() {
        if bi > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "b{bi} = [");
        for off in 0..size {
            if off > 0 {
                s.push(' ');
            }
            let block = bi as u32;
            let bits = mem
                .load_ptr(Ptr::Block { block, off }, 8)
                .expect("initial-block byte is in bounds");
            s.push_str(&render_byte(&bits));
        }
        s.push(']');
    }
    s
}

fn render_byte(bits: &[Bit]) -> String {
    if bits.iter().any(|b| matches!(b, Bit::Poison)) {
        return "poison".to_string();
    }
    if bits.iter().any(|b| matches!(b, Bit::Undef)) {
        return "undef".to_string();
    }
    if bits.iter().any(|b| matches!(b, Bit::Ptr { .. })) {
        return "ptr".to_string();
    }
    let mut v = 0u8;
    for (i, b) in bits.iter().enumerate() {
        if matches!(b, Bit::One) {
            v |= 1 << i;
        }
    }
    format!("{v:#04x}")
}

/// The verdict of a refinement check.
#[derive(Clone, Debug)]
pub enum CheckResult {
    /// Every target behavior is allowed by the source, on every
    /// enumerated input.
    Refines,
    /// A concrete input where the target misbehaves.
    CounterExample(Box<CounterExample>),
    /// The check could not complete (resource limits, unenumerable
    /// domain).
    Inconclusive(String),
}

impl CheckResult {
    /// Returns `true` for [`CheckResult::Refines`].
    pub fn is_refinement(&self) -> bool {
        matches!(self, CheckResult::Refines)
    }

    /// Returns the counterexample if there is one.
    pub fn counterexample(&self) -> Option<&CounterExample> {
        match self {
            CheckResult::CounterExample(ce) => Some(ce),
            _ => None,
        }
    }

    /// Panics with a report unless the result is a refinement.
    ///
    /// # Panics
    ///
    /// Panics on counterexamples and inconclusive checks (useful in
    /// tests).
    pub fn assert_refines(&self) {
        match self {
            CheckResult::Refines => {}
            CheckResult::CounterExample(ce) => panic!("refinement violated:\n{ce}"),
            CheckResult::Inconclusive(why) => panic!("refinement check inconclusive: {why}"),
        }
    }
}

fn signatures_match(a: &Function, b: &Function) -> bool {
    a.ret_ty == b.ret_ty
        && a.params.len() == b.params.len()
        && a.params.iter().zip(&b.params).all(|(x, y)| x.ty == y.ty)
}

/// Process-wide per-verdict check tallies, resolved once.
struct RefineCounters {
    checks: &'static Counter,
    refines: &'static Counter,
    counterexamples: &'static Counter,
    inconclusive: &'static Counter,
}

fn refine_counters() -> &'static RefineCounters {
    static CTRS: OnceLock<RefineCounters> = OnceLock::new();
    CTRS.get_or_init(|| RefineCounters {
        checks: frost_telemetry::counter("frost.refine.checks"),
        refines: frost_telemetry::counter("frost.refine.refines"),
        counterexamples: frost_telemetry::counter("frost.refine.counterexamples"),
        inconclusive: frost_telemetry::counter("frost.refine.inconclusive"),
    })
}

/// Bumps the per-verdict counter and stamps the verdict on the span.
fn record_verdict(sp: &mut frost_telemetry::Span, result: &CheckResult) {
    let ctrs = refine_counters();
    let verdict = match result {
        CheckResult::Refines => {
            ctrs.refines.incr();
            "refines"
        }
        CheckResult::CounterExample(_) => {
            ctrs.counterexamples.incr();
            "counterexample"
        }
        CheckResult::Inconclusive(_) => {
            ctrs.inconclusive.incr();
            "inconclusive"
        }
    };
    sp.set("verdict", verdict);
}

/// Checks that `tgt_fn` (in `tgt_module`) refines `src_fn` (in
/// `src_module`) on every enumerable input.
pub fn check_refinement(
    src_module: &Module,
    src_fn: &str,
    tgt_module: &Module,
    tgt_fn: &str,
    opts: &CheckOptions,
) -> CheckResult {
    refine_counters().checks.incr();
    let mut sp = frost_telemetry::span("refine.check.run").field("cached", false);
    let result = check_refinement_impl(src_module, src_fn, tgt_module, tgt_fn, opts);
    record_verdict(&mut sp, &result);
    result
}

fn check_refinement_impl(
    src_module: &Module,
    src_fn: &str,
    tgt_module: &Module,
    tgt_fn: &str,
    opts: &CheckOptions,
) -> CheckResult {
    let (Some(sf), Some(tf)) = (src_module.function(src_fn), tgt_module.function(tgt_fn)) else {
        return CheckResult::Inconclusive("function not found".to_string());
    };
    if !signatures_match(sf, tf) {
        return CheckResult::Inconclusive("signature mismatch".to_string());
    }
    let Some(shared) = enumerate_inputs_cached(sf, &opts.inputs) else {
        return CheckResult::Inconclusive("input space too large to enumerate".to_string());
    };
    let (tuples, block_sizes) = (&shared.0, shared.1.as_slice());
    let Some(src_mems) = enumerate_memories(block_sizes, &opts.inputs, uninit_fill(&opts.src_sem))
    else {
        return CheckResult::Inconclusive(
            "initial-memory space too large to enumerate".to_string(),
        );
    };
    let tgt_mems = enumerate_memories(block_sizes, &opts.inputs, uninit_fill(&opts.tgt_sem))
        .expect("target memory shape matches the source's");

    // Each side enumerates its whole input list in one batch per
    // candidate initial memory through the selected engine (the batch
    // is what lets the bit-sliced backend evaluate every tuple at
    // once); the comparison loop below then reproduces the sequential
    // checker's verdict order exactly: memories outermost, tuples
    // inner.
    for (src_mem, tgt_mem) in src_mems.iter().zip(&tgt_mems) {
        let src_all = enumerate_function(
            src_module,
            src_fn,
            tuples,
            src_mem,
            opts.src_sem,
            opts.limits,
            opts.engine,
        );
        let tgt_all = enumerate_function(
            tgt_module,
            tgt_fn,
            tuples,
            tgt_mem,
            opts.tgt_sem,
            opts.limits,
            opts.engine,
        );

        let mem_desc = opts
            .inputs
            .memory_values
            .then(|| render_initial_mem(src_mem, block_sizes));
        for (i, args) in tuples.iter().enumerate() {
            let src = match &src_all[i] {
                Ok(s) => s,
                Err(e) => return inconclusive(e.clone(), args, "source"),
            };
            if src.may_ub() {
                continue; // source UB grants total freedom on this input
            }
            let tgt = match &tgt_all[i] {
                Ok(s) => s,
                Err(e) => return inconclusive(e.clone(), args, "target"),
            };
            if !set_refines(tgt, src) {
                return violation(args.clone(), mem_desc, src.clone(), tgt.clone());
            }
        }
    }
    CheckResult::Refines
}

/// [`check_refinement`], but with every outcome enumeration memoized in
/// `cache`. Campaign corpora are massively redundant (no-op transforms,
/// canonical forms shared by thousands of inputs), so a shared cache
/// eliminates most interpreter work; see
/// [`OutcomeCache`].
///
/// The verdict is *identical* to the uncached checker's on every pair —
/// including which input an inconclusive check blames — because the
/// cache stores per-input results. The only difference is cost: a
/// cached check enumerates the whole input list up front (cacheable)
/// instead of stopping at the first violation.
pub fn check_refinement_cached(
    src_module: &Module,
    src_fn: &str,
    tgt_module: &Module,
    tgt_fn: &str,
    opts: &CheckOptions,
    cache: &OutcomeCache,
) -> CheckResult {
    check_refinement_cached_policy(
        src_module,
        src_fn,
        tgt_module,
        tgt_fn,
        opts,
        cache,
        CheckPolicy::default(),
    )
}

/// [`check_refinement_cached`] with an explicit [`CheckPolicy`]. The
/// verdict is identical under every policy — the policy only decides
/// what the cache *retains*, never what the check concludes.
// The seventh parameter is the point of this entry; folding it into
// CheckOptions would make cache policy part of every cache key.
#[allow(clippy::too_many_arguments)]
pub fn check_refinement_cached_policy(
    src_module: &Module,
    src_fn: &str,
    tgt_module: &Module,
    tgt_fn: &str,
    opts: &CheckOptions,
    cache: &OutcomeCache,
    policy: CheckPolicy,
) -> CheckResult {
    refine_counters().checks.incr();
    let mut sp = frost_telemetry::span("refine.check.run").field("cached", true);
    let result =
        check_refinement_cached_impl(src_module, src_fn, tgt_module, tgt_fn, opts, cache, policy);
    record_verdict(&mut sp, &result);
    result
}

fn check_refinement_cached_impl(
    src_module: &Module,
    src_fn: &str,
    tgt_module: &Module,
    tgt_fn: &str,
    opts: &CheckOptions,
    cache: &OutcomeCache,
    policy: CheckPolicy,
) -> CheckResult {
    let (Some(sf), Some(tf)) = (src_module.function(src_fn), tgt_module.function(tgt_fn)) else {
        return CheckResult::Inconclusive("function not found".to_string());
    };
    if !signatures_match(sf, tf) {
        return CheckResult::Inconclusive("signature mismatch".to_string());
    }
    let Some(shared) = enumerate_inputs_cached(sf, &opts.inputs) else {
        return CheckResult::Inconclusive("input space too large to enumerate".to_string());
    };
    let (tuples, block_sizes) = (&shared.0, shared.1.as_slice());
    let Some(src_mems) = enumerate_memories(block_sizes, &opts.inputs, uninit_fill(&opts.src_sem))
    else {
        return CheckResult::Inconclusive(
            "initial-memory space too large to enumerate".to_string(),
        );
    };
    let tgt_mems = enumerate_memories(block_sizes, &opts.inputs, uninit_fill(&opts.tgt_sem))
        .expect("target memory shape matches the source's");
    let src_key = FunctionKey::of(sf);
    let tgt_key = FunctionKey::of(tf);

    // Identity fast path: α-equivalent bodies under one semantics — the
    // no-op-transform case, which dominates campaign corpora. Refinement
    // is reflexive on every outcome set the engine produces
    // (`set_refines(s, s)` holds: poison justifies poison, undef
    // justifies undef, defined values justify themselves), so the
    // per-input comparison can only say "refines" — all that remains is
    // the verdict the general loop would give a failed enumeration,
    // blaming the source side first. One enumeration serves both sides;
    // it is stored under the source's retention rule — an untouched
    // pair *is* its own source, and a sweep that stored every unchanged
    // function would grow the cache with the space after all.
    if opts.src_sem == opts.tgt_sem && src_key == tgt_key {
        for (mi, tgt_mem) in tgt_mems.iter().enumerate() {
            let salt = input_salt(&opts.inputs, block_sizes, mi);
            let all = cache.enumerate_keyed(
                &tgt_key,
                tgt_module,
                tgt_fn,
                tuples,
                tgt_mem,
                opts.tgt_sem,
                opts.limits,
                opts.engine,
                salt,
                !policy.transient_src,
            );
            for (i, args) in tuples.iter().enumerate() {
                if let Err(e) = &all[i] {
                    return inconclusive(e.clone(), args, "source");
                }
            }
        }
        return CheckResult::Refines;
    }

    for (mi, (src_mem, tgt_mem)) in src_mems.iter().zip(&tgt_mems).enumerate() {
        let salt = input_salt(&opts.inputs, block_sizes, mi);
        let src_all = cache.enumerate_keyed(
            &src_key,
            src_module,
            src_fn,
            tuples,
            src_mem,
            opts.src_sem,
            opts.limits,
            opts.engine,
            salt,
            !policy.transient_src,
        );
        let tgt_all = cache.enumerate_keyed(
            &tgt_key,
            tgt_module,
            tgt_fn,
            tuples,
            tgt_mem,
            opts.tgt_sem,
            opts.limits,
            opts.engine,
            salt,
            true,
        );

        let mem_desc = opts
            .inputs
            .memory_values
            .then(|| render_initial_mem(src_mem, block_sizes));
        for (i, args) in tuples.iter().enumerate() {
            let src = match &src_all[i] {
                Ok(s) => s,
                Err(e) => return inconclusive(e.clone(), args, "source"),
            };
            if src.may_ub() {
                continue; // source UB grants total freedom on this input
            }
            let tgt = match &tgt_all[i] {
                Ok(s) => s,
                Err(e) => return inconclusive(e.clone(), args, "target"),
            };
            if !set_refines(tgt, src) {
                return violation(args.clone(), mem_desc, src.clone(), tgt.clone());
            }
        }
    }
    CheckResult::Refines
}

/// Fingerprint of everything that shapes enumeration besides the
/// (function, semantics, limits) cache key: the input options, the
/// initial-block shape, and — when memory contents are enumerated —
/// which candidate memory this batch ran under.
fn input_salt(opts: &InputOptions, block_sizes: &[u32], mem_idx: usize) -> u64 {
    let mut h = DefaultHasher::new();
    opts.hash(&mut h);
    block_sizes.hash(&mut h);
    mem_idx.hash(&mut h);
    h.finish()
}

fn violation(
    args: Vec<Val>,
    initial_mem: Option<String>,
    src: OutcomeSet,
    tgt: OutcomeSet,
) -> CheckResult {
    let witness = unjustified(&tgt, &src)
        .first()
        .map(|o| (*o).clone())
        .expect("non-refining set has an unjustified outcome");
    CheckResult::CounterExample(Box::new(CounterExample {
        args,
        initial_mem,
        src_outcomes: src,
        tgt_outcomes: tgt,
        witness,
    }))
}

fn inconclusive(e: ExecError, args: &[Val], which: &str) -> CheckResult {
    let args: Vec<String> = args.iter().map(Val::to_string).collect();
    CheckResult::Inconclusive(format!(
        "{which} evaluation failed on ({}): {e}",
        args.join(", ")
    ))
}

/// Checks that applying `transform` to the single function named
/// `fname` of `module` produces a refinement under `sem`. Returns the
/// transformed module with the verdict.
pub fn check_transform(
    module: &Module,
    fname: &str,
    sem: Semantics,
    transform: impl FnOnce(&mut Module),
) -> (Module, CheckResult) {
    let mut after = module.clone();
    transform(&mut after);
    let result = check_refinement(module, fname, &after, fname, &CheckOptions::new(sem));
    (after, result)
}

/// Marker re-export so the public API names the [`Ty`] used in docs.
#[doc(hidden)]
pub fn _ty_witness(t: &Ty) -> &Ty {
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;

    fn check_src_tgt(src: &str, tgt: &str, sem: Semantics) -> CheckResult {
        let sm = parse_module(src).expect("source parses");
        let tm = parse_module(tgt).expect("target parses");
        check_refinement(&sm, "f", &tm, "f", &CheckOptions::new(sem))
    }

    #[test]
    fn identity_refines() {
        let src = "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}";
        check_src_tgt(src, src, Semantics::proposed()).assert_refines();
    }

    #[test]
    fn constant_folding_refines() {
        let src = "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 1, 1\n  ret i2 %a\n}";
        let tgt = "define i2 @f(i2 %x) {\nentry:\n  ret i2 2\n}";
        check_src_tgt(src, tgt, Semantics::proposed()).assert_refines();
    }

    #[test]
    fn the_paper_section2_3_example_needs_nsw() {
        // a + b > a  ==>  b > 0 requires nsw (§2.3).
        let src_nsw = "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %add = add nsw i4 %a, %b\n  %cmp = icmp sgt i4 %add, %a\n  ret i1 %cmp\n}";
        let src_wrap = "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %add = add i4 %a, %b\n  %cmp = icmp sgt i4 %add, %a\n  ret i1 %cmp\n}";
        let tgt =
            "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %cmp = icmp sgt i4 %b, 0\n  ret i1 %cmp\n}";
        check_src_tgt(src_nsw, tgt, Semantics::proposed()).assert_refines();
        let r = check_src_tgt(src_wrap, tgt, Semantics::proposed());
        assert!(
            r.counterexample().is_some(),
            "without nsw the transform is wrong"
        );
    }

    #[test]
    fn undef_makes_x_plus_x_not_equal_2x() {
        // §3.1: mul %x, 2 -> add %x, %x is invalid under legacy undef...
        let src = "define i2 @f() {\nentry:\n  %y = mul i2 undef, 2\n  ret i2 %y\n}";
        let tgt = "define i2 @f() {\nentry:\n  %y = add i2 undef, undef\n  ret i2 %y\n}";
        let r = check_src_tgt(src, tgt, Semantics::legacy_gvn());
        let ce = r.counterexample().expect("counterexample expected");
        // The target can produce an odd value; the source cannot.
        assert!(ce.witness.ret_val().is_some());
        // ...and the reverse direction (add -> mul) is a refinement.
        let r = check_src_tgt(tgt, src, Semantics::legacy_gvn());
        r.assert_refines();
    }

    #[test]
    fn freeze_can_be_added_but_not_removed() {
        let plain = "define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}";
        let frozen = "define i2 @f(i2 %x) {\nentry:\n  %y = freeze i2 %x\n  ret i2 %y\n}";
        check_src_tgt(plain, frozen, Semantics::proposed()).assert_refines();
        let r = check_src_tgt(frozen, plain, Semantics::proposed());
        assert!(
            r.counterexample().is_some(),
            "removing freeze reintroduces poison: not a refinement"
        );
    }

    #[test]
    fn source_ub_grants_freedom() {
        let src = "define i2 @f(i2 %x) {\nentry:\n  %a = udiv i2 1, 0\n  ret i2 %a\n}";
        let tgt = "define i2 @f(i2 %x) {\nentry:\n  ret i2 3\n}";
        check_src_tgt(src, tgt, Semantics::proposed()).assert_refines();
    }

    #[test]
    fn introducing_ub_is_caught() {
        let src = "define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}";
        let tgt = "define i2 @f(i2 %x) {\nentry:\n  %a = udiv i2 1, %x\n  ret i2 %x\n}";
        let r = check_src_tgt(src, tgt, Semantics::proposed());
        let ce = r
            .counterexample()
            .expect("x = 0 triggers UB only in target");
        assert!(ce.tgt_outcomes.may_ub());
    }

    #[test]
    fn check_transform_wrapper_works() {
        let m = parse_module("define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 0\n  ret i2 %a\n}")
            .unwrap();
        let (after, result) = check_transform(&m, "f", Semantics::proposed(), |m| {
            // Fold add x, 0 -> x by rewriting the return.
            let f = m.function_mut("f").unwrap();
            f.block_mut(frost_ir::BlockId::ENTRY).term =
                frost_ir::Terminator::Ret(Some(frost_ir::Value::Arg(0)));
            f.block_mut(frost_ir::BlockId::ENTRY).insts.clear();
        });
        result.assert_refines();
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 0);
    }

    #[test]
    fn cached_checker_matches_uncached_verdicts() {
        use frost_core::OutcomeCache;
        let pairs = [
            // refinement
            (
                "define i2 @f(i2 %x) {\nentry:\n  %a = add i2 %x, 0\n  ret i2 %a\n}",
                "define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}",
            ),
            // violation (freeze removal)
            (
                "define i2 @f(i2 %x) {\nentry:\n  %y = freeze i2 %x\n  ret i2 %y\n}",
                "define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}",
            ),
            // identity (exercises the fingerprint hit across pairs)
            (
                "define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}",
                "define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}",
            ),
        ];
        let cache = OutcomeCache::new();
        let opts = CheckOptions::new(Semantics::proposed());
        for (src, tgt) in pairs {
            let sm = parse_module(src).unwrap();
            let tm = parse_module(tgt).unwrap();
            let fresh = check_refinement(&sm, "f", &tm, "f", &opts);
            let cached = check_refinement_cached(&sm, "f", &tm, "f", &opts, &cache);
            assert_eq!(fresh.is_refinement(), cached.is_refinement());
            match (fresh.counterexample(), cached.counterexample()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.args, b.args);
                    assert_eq!(a.witness, b.witness);
                }
                _ => panic!("cached and uncached disagree"),
            }
        }
        // `ret i2 %x` appears as source and target: the cache must hit.
        assert!(cache.hits() > 0);
    }

    #[test]
    fn between_separates_source_and_target_semantics() {
        let opts = CheckOptions::between(Semantics::legacy_gvn(), Semantics::proposed());
        assert!(opts.src_sem.has_undef);
        assert!(!opts.tgt_sem.has_undef);
        assert!(opts.inputs.include_undef, "undef inputs follow the source");
    }

    #[test]
    fn signature_mismatch_is_inconclusive() {
        let a = parse_module("define i2 @f(i2 %x) {\nentry:\n  ret i2 %x\n}").unwrap();
        let b = parse_module("define i4 @f(i4 %x) {\nentry:\n  ret i4 %x\n}").unwrap();
        let r = check_refinement(&a, "f", &b, "f", &CheckOptions::default());
        assert!(matches!(r, CheckResult::Inconclusive(_)));
    }

    #[test]
    fn pointer_functions_check_memory_effects() {
        // Storing a different value is caught via the memory snapshot.
        let src = "define void @f(i8* %p) {\nentry:\n  store i8 1, i8* %p\n  ret void\n}";
        let tgt = "define void @f(i8* %p) {\nentry:\n  store i8 2, i8* %p\n  ret void\n}";
        let r = check_src_tgt(src, tgt, Semantics::proposed());
        assert!(r.counterexample().is_some());
        // Dead-store-then-overwrite is a refinement.
        let src2 = "define void @f(i8* %p) {\nentry:\n  store i8 9, i8* %p\n  store i8 1, i8* %p\n  ret void\n}";
        let tgt2 = "define void @f(i8* %p) {\nentry:\n  store i8 1, i8* %p\n  ret void\n}";
        check_src_tgt(src2, tgt2, Semantics::proposed()).assert_refines();
    }
}
