//! Dead code elimination: removes placed instructions whose results are
//! unused and that have no side effects, plus unreachable blocks.
//!
//! Removing an instruction is always a refinement (fewer executed
//! operations means no new behaviors), *including* dead `freeze` and
//! dead UB-capable instructions — a dead `udiv` could have been UB, and
//! removing potential UB only shrinks the behavior set.

use frost_ir::{Function, FunctionAnalysisManager, PreservedAnalyses, Terminator};

use crate::pass::Pass;
use crate::util::remove_phi_edge;

/// The DCE pass.
#[derive(Debug, Default)]
pub struct Dce;

impl Dce {
    /// Creates the pass.
    pub fn new() -> Dce {
        Dce
    }
}

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let pruned_blocks = remove_unreachable_blocks(func);
        let mut removed_insts = false;
        loop {
            // Recounted per round: removing a dead instruction can kill
            // the uses that kept its operands alive.
            let uses = func.use_counts();
            let mut removed_any = false;
            for bb in 0..func.blocks.len() {
                let block = &func.blocks[bb];
                let dead: Vec<_> = block
                    .insts
                    .iter()
                    .copied()
                    .filter(|&id| !func.inst(id).has_side_effects() && uses.is_unused(id))
                    .collect();
                if dead.is_empty() {
                    continue;
                }
                removed_any = true;
                func.blocks[bb].insts.retain(|id| !dead.contains(id));
            }
            removed_insts |= removed_any;
            if !removed_any {
                break;
            }
        }
        if pruned_blocks {
            PreservedAnalyses::none()
        } else if removed_insts {
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// Deletes blocks unreachable from the entry, fixing up phis of their
/// reachable successors. Block ids are *not* renumbered; dead blocks
/// become empty with `unreachable` terminators and no predecessors,
/// then are pruned by retargeting. Returns `true` on change.
pub fn remove_unreachable_blocks(func: &mut Function) -> bool {
    let reachable = frost_ir::cfg::reachable(func);
    if reachable.iter().all(|&r| r) {
        return false;
    }
    // Remove phi edges coming from unreachable predecessors.
    for bb in func.block_ids().collect::<Vec<_>>() {
        if !reachable[bb.index()] {
            continue;
        }
        let preds: Vec<_> = (0..func.blocks.len())
            .filter(|&p| !reachable[p])
            .map(|p| frost_ir::BlockId(p as u32))
            .collect();
        for p in preds {
            remove_phi_edge(func, bb, p);
        }
    }
    // Gut the unreachable blocks.
    for (i, r) in reachable.iter().enumerate() {
        if !r {
            func.blocks[i].insts.clear();
            func.blocks[i].term = Terminator::Unreachable;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::{BlockId, FunctionBuilder, Ty, Value};

    #[test]
    fn removes_dead_arithmetic_chains() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let dead1 = b.add(b.arg(0), b.const_int(8, 1));
        let _dead2 = b.mul(dead1, b.const_int(8, 3));
        let live = b.add(b.arg(0), b.const_int(8, 2));
        b.ret(live);
        let mut f = b.finish();
        assert!(Dce::new().apply(&mut f));
        assert_eq!(f.placed_inst_count(), 1, "the whole dead chain is gone");
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FunctionBuilder::new("f", &[("p", Ty::ptr_to(Ty::i8()))], Ty::Void);
        b.store(b.const_int(8, 1), b.arg(0));
        let _unused = b.call(Ty::i8(), "ext", vec![]);
        b.ret_void();
        let mut f = b.finish();
        assert!(!Dce::new().apply(&mut f));
        assert_eq!(f.placed_inst_count(), 2);
    }

    #[test]
    fn removes_dead_udiv_and_freeze() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let _dead_div = b.udiv(b.const_int(8, 1), b.arg(0));
        let _dead_freeze = b.freeze(b.arg(0));
        b.ret(b.arg(0));
        let mut f = b.finish();
        assert!(Dce::new().apply(&mut f));
        assert_eq!(f.placed_inst_count(), 0);
    }

    #[test]
    fn prunes_unreachable_blocks_and_their_phi_edges() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let dead = b.block("dead");
        let join = b.block("join");
        b.jmp(join);
        b.switch_to(dead);
        b.jmp(join);
        b.switch_to(join);
        let p = b.phi(
            Ty::i8(),
            vec![(b.arg(0), BlockId::ENTRY), (Value::int(8, 9), dead)],
        );
        b.ret(p.clone());
        let mut f = b.finish();
        assert!(Dce::new().apply(&mut f));
        let frost_ir::Inst::Phi { incoming, .. } = f.inst(p.as_inst().unwrap()) else {
            panic!()
        };
        assert_eq!(incoming.len(), 1);
        assert!(frost_ir::verify::verify_function(&f).is_ok());
    }
}
