//! CodeGenPrepare: late, target-oriented rewrites (§5.2, §6).
//!
//! Two freeze-related rewrites from the paper's prototype:
//!
//! * `freeze(icmp %x, C)` → `icmp (freeze %x), C` — lets the backend
//!   sink the comparison next to its branch. It is a *refinement* (the
//!   frozen comparison's outcomes are a subset), so it may only run
//!   late: early it would break analyses like scalar evolution (§6).
//! * select → branch + phi ("reverse predication", §5.2): requires
//!   freezing the condition, since branch-on-poison is UB where
//!   select-on-poison was only poison.

use frost_ir::{
    BlockId, Function, FunctionAnalysisManager, Inst, InstId, PreservedAnalyses, Terminator, Ty,
    Value,
};

use crate::pass::{Pass, PipelineMode};

/// The late lowering-preparation pass.
#[derive(Debug)]
pub struct CodeGenPrepare {
    mode: PipelineMode,
    /// Convert selects into control flow (profitable on targets that
    /// prefer branches to conditional moves, §5.2).
    pub reverse_predication: bool,
}

impl CodeGenPrepare {
    /// Creates the pass; reverse predication defaults to off.
    pub fn new(mode: PipelineMode) -> CodeGenPrepare {
        CodeGenPrepare {
            mode,
            reverse_predication: false,
        }
    }

    /// Enables the §5.2 select→branch conversion.
    pub fn with_reverse_predication(mut self) -> CodeGenPrepare {
        self.reverse_predication = true;
        self
    }
}

impl Pass for CodeGenPrepare {
    fn name(&self) -> &'static str {
        "codegenprepare"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let mut sank = false;
        if self.mode.freeze_aware() {
            sank = sink_freeze_through_icmp(func);
        }
        let mut predicated = false;
        if self.reverse_predication {
            predicated = reverse_predication(func, self.mode);
        }
        if predicated {
            // select -> branch+phi adds blocks.
            PreservedAnalyses::none()
        } else if sank {
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// `freeze(icmp cond %x, C)` → `icmp cond (freeze %x), C` when the
/// icmp's only user is the freeze.
fn sink_freeze_through_icmp(func: &mut Function) -> bool {
    let mut changed = false;
    let uses = func.use_counts();
    for bb in func.block_ids().collect::<Vec<_>>() {
        let ids: Vec<InstId> = func.block(bb).insts.clone();
        for id in ids {
            let Inst::Freeze {
                val: Value::Inst(cmp_id),
                ..
            } = func.inst(id)
            else {
                continue;
            };
            let cmp_id = *cmp_id;
            let Inst::Icmp { cond, ty, lhs, rhs } = func.inst(cmp_id).clone() else {
                continue;
            };
            if rhs.as_int_const().is_none() || uses.count(cmp_id) != 1 {
                continue;
            }
            // Rewrite: the freeze instruction becomes `freeze %x`, and
            // the icmp compares the frozen value. The icmp keeps its id
            // so its (single) user — the old freeze — must be updated:
            // swap roles instead. freeze(id) := icmp(freeze', C) and
            // cmp_id := freeze %x.
            *func.inst_mut(cmp_id) = Inst::Freeze {
                ty: ty.clone(),
                val: lhs,
            };
            *func.inst_mut(id) = Inst::Icmp {
                cond,
                ty,
                lhs: Value::Inst(cmp_id),
                rhs,
            };
            changed = true;
        }
    }
    changed
}

/// §5.2: `%x = select %c, %a, %b` →
///
/// ```text
///   %c2 = freeze %c
///   br %c2, %t, %f
/// t: br %m
/// f: br %m
/// m: %x = phi [%a, %t], [%b, %f]
/// ```
///
/// The legacy variant omits the freeze (unsound: a poison condition now
/// reaches a branch).
fn reverse_predication(func: &mut Function, mode: PipelineMode) -> bool {
    // Convert one select per invocation (the CFG surgery invalidates the
    // scan); loop until none remain.
    let mut changed = false;
    loop {
        let mut target = None;
        'scan: for bb in func.block_ids() {
            for (pos, &id) in func.block(bb).insts.iter().enumerate() {
                if let Inst::Select { .. } = func.inst(id) {
                    target = Some((bb, pos, id));
                    break 'scan;
                }
            }
        }
        let Some((bb, pos, id)) = target else {
            return changed;
        };
        let Inst::Select {
            cond,
            ty,
            tval,
            fval,
        } = func.inst(id).clone()
        else {
            unreachable!()
        };

        // Split the block after the select.
        let tail_insts: Vec<InstId> = func.block_mut(bb).insts.split_off(pos + 1);
        func.block_mut(bb).insts.pop(); // remove the select itself
        let tail_term = func.block(bb).term.clone();

        let t_bb = func.add_block(format!("{}.rp.t", func.block(bb).name));
        let f_bb = func.add_block(format!("{}.rp.f", func.block(bb).name));
        let m_bb = func.add_block(format!("{}.rp.m", func.block(bb).name));

        // The select becomes a phi in the merge block (keeping its id so
        // uses stay valid).
        *func.inst_mut(id) = Inst::Phi {
            ty,
            incoming: vec![(tval, t_bb), (fval, f_bb)],
        };
        func.block_mut(m_bb).insts.push(id);
        func.block_mut(m_bb).insts.extend(tail_insts);
        func.block_mut(m_bb).term = tail_term;
        // Successors' phis must now name m_bb as predecessor.
        for succ in func.block(m_bb).term.successors() {
            crate::util::retarget_phi_edge(func, succ, bb, m_bb);
        }

        let branch_cond = if mode.uses_freeze() {
            let fr = func.add_inst(Inst::Freeze {
                ty: Ty::i1(),
                val: cond,
            });
            func.block_mut(bb).insts.push(fr);
            Value::Inst(fr)
        } else {
            cond
        };
        func.block_mut(bb).term = Terminator::Br {
            cond: branch_cond,
            then_bb: t_bb,
            else_bb: f_bb,
        };
        func.block_mut(t_bb).term = Terminator::Jmp(m_bb);
        func.block_mut(f_bb).term = Terminator::Jmp(m_bb);
        changed = true;
        let _ = BlockId::ENTRY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, pass: &CodeGenPrepare) -> (Module, Module, bool) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        let mut changed = false;
        for f in &mut after.functions {
            changed |= pass.apply(f);
            f.compact();
        }
        (before, after, changed)
    }

    #[test]
    fn freeze_of_icmp_sinks_through() {
        // `ult %x, 0` is constant-false on defined inputs, which makes
        // the refinement strict: freeze(icmp poison, 0) is {t, f} while
        // icmp(freeze poison, 0) is {f}.
        let src = "define i1 @f(i4 %x) {\nentry:\n  %c = icmp ult i4 %x, 0\n  %fc = freeze i1 %c\n  ret i1 %fc\n}";
        let (before, after, changed) = run(src, &CodeGenPrepare::new(PipelineMode::Fixed));
        assert!(changed);
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("freeze i4 %x"), "{text}");
        assert!(text.contains("icmp ult i4"), "{text}");
        // The rewrite is a refinement (not an equivalence): check it.
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
        // And the reverse direction is NOT a refinement (it would be
        // wrong to undo): freeze(icmp poison, C) can be both true and
        // false, icmp(freeze poison, C) is constrained by C.
        let r = check_refinement(
            &after,
            "f",
            &before,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(
            r.counterexample().is_some(),
            "the transformation is a strict refinement"
        );
    }

    #[test]
    fn freeze_blind_mode_does_not_touch_it() {
        let src = "define i1 @f(i4 %x) {\nentry:\n  %c = icmp ult i4 %x, 5\n  %fc = freeze i1 %c\n  ret i1 %fc\n}";
        let (_, _, changed) = run(src, &CodeGenPrepare::new(PipelineMode::FixedFreezeBlind));
        assert!(!changed);
    }

    #[test]
    fn reverse_predication_freezes_the_condition() {
        let src = "define i4 @f(i1 %c, i4 %a, i4 %b) {\nentry:\n  %x = select i1 %c, i4 %a, i4 %b\n  ret i4 %x\n}";
        let (before, after, changed) = run(
            src,
            &CodeGenPrepare::new(PipelineMode::Fixed).with_reverse_predication(),
        );
        assert!(changed);
        let f = after.function("f").unwrap();
        let text = function_to_string(f);
        assert!(text.contains("freeze i1 %c"), "{text}");
        assert!(text.contains("phi i4"), "{text}");
        assert!(frost_ir::verify::verify_function(f).is_ok(), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn legacy_reverse_predication_is_unsound() {
        // §5.2 without the freeze: select on poison was poison, branch
        // on poison is UB.
        let src = "define i4 @f(i1 %c, i4 %a, i4 %b) {\nentry:\n  %x = select i1 %c, i4 %a, i4 %b\n  ret i4 %x\n}";
        let (before, after, changed) = run(
            src,
            &CodeGenPrepare::new(PipelineMode::Legacy).with_reverse_predication(),
        );
        assert!(changed);
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        let ce = r.counterexample().expect("unfrozen select->br is unsound");
        assert!(ce.tgt_outcomes.may_ub());
    }

    #[test]
    fn reverse_predication_preserves_instructions_after_the_select() {
        let src = r#"
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  %x = select i1 %c, i4 %a, i4 %b
  %y = add i4 %x, 1
  ret i4 %y
}
"#;
        let (before, after, _) = run(
            src,
            &CodeGenPrepare::new(PipelineMode::Fixed).with_reverse_predication(),
        );
        let f = after.function("f").unwrap();
        assert!(
            frost_ir::verify::verify_function(f).is_ok(),
            "{}",
            function_to_string(f)
        );
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }
}
