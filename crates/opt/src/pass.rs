//! The pass framework: a [`Pass`] trait, a [`PassManager`], and the
//! `-O2`-style pipelines in their *legacy* (pre-taming) and *fixed*
//! (freeze-aware) configurations.
//!
//! Every pass execution is metered through `frost-telemetry` (see
//! docs/OBSERVABILITY.md): the always-on counters
//! `frost.opt.pass.<name>.runs` / `.changed` tally executions and
//! rewrites, and — when tracing is enabled — each execution is wrapped
//! in an `opt.pass.run` span carrying the pass name, duration, and the
//! instruction counts before/after, with per-pass latency recorded in
//! the `frost.opt.pass.<name>.ns` histogram. With tracing off the
//! added cost per pass is one counter lookup-free atomic add and a
//! branch.

use frost_ir::{Function, Module};
use frost_telemetry::{counter, histogram, Counter, Histogram};

/// A code transformation.
///
/// Most passes work function-at-a-time and implement
/// [`Pass::run_on_function`]; module passes (e.g. inlining) override
/// [`Pass::run_on_module`].
///
/// Passes are required to be `Send + Sync` (they are stateless
/// configuration plus pure code), so a [`PassManager`] can be shared by
/// the workers of a parallel validation campaign.
pub trait Pass: Send + Sync {
    /// A short, stable name (used in reports and pipeline dumps).
    fn name(&self) -> &'static str;

    /// Transforms one function. Returns `true` if anything changed.
    fn run_on_function(&self, _func: &mut Function) -> bool {
        false
    }

    /// Transforms the module. The default applies
    /// [`Pass::run_on_function`] to every function.
    fn run_on_module(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in &mut module.functions {
            changed |= self.run_on_function(f);
        }
        changed
    }
}

/// Which variant of each pass a pipeline uses.
///
/// * [`PipelineMode::Legacy`] reproduces pre-taming LLVM: the unsound
///   rules of §3 are active and no freeze is emitted.
/// * [`PipelineMode::Fixed`] is the paper's prototype (§6): unsound
///   rules removed or repaired with `freeze`.
/// * [`PipelineMode::FixedFreezeBlind`] is the partially-migrated state
///   §7.2 describes: semantics fixed, but some passes do not yet
///   recognize `freeze` and conservatively give up (the source of the
///   "Shootout nestedloop" compile-time outlier and most run-time
///   deltas).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineMode {
    /// Pre-taming LLVM behavior.
    Legacy,
    /// The paper's fixed prototype.
    Fixed,
    /// Fixed semantics, freeze-oblivious passes.
    FixedFreezeBlind,
}

impl PipelineMode {
    /// Returns `true` for the modes that emit/expect `freeze`.
    pub fn uses_freeze(self) -> bool {
        !matches!(self, PipelineMode::Legacy)
    }

    /// Returns `true` if passes may look through / fold `freeze`.
    pub fn freeze_aware(self) -> bool {
        matches!(self, PipelineMode::Fixed)
    }
}

/// A pass bundled with its telemetry handles, resolved once at
/// registration so the per-run cost is plain atomic adds.
struct Instrumented {
    pass: Box<dyn Pass>,
    runs: &'static Counter,
    changed: &'static Counter,
    time_ns: &'static Histogram,
}

impl Instrumented {
    fn new(pass: Box<dyn Pass>) -> Instrumented {
        let name = pass.name();
        Instrumented {
            runs: counter(&format!("frost.opt.pass.{name}.runs")),
            changed: counter(&format!("frost.opt.pass.{name}.changed")),
            time_ns: histogram(&format!("frost.opt.pass.{name}.ns")),
            pass,
        }
    }

    fn run_on_module(&self, module: &mut Module) -> bool {
        self.runs.incr();
        if !frost_telemetry::enabled() {
            let changed = self.pass.run_on_module(module);
            if changed {
                self.changed.incr();
            }
            return changed;
        }
        let mut sp = frost_telemetry::span("opt.pass.run").field("pass", self.pass.name());
        let before = module.inst_count();
        let changed = self.pass.run_on_module(module);
        if changed {
            self.changed.incr();
        }
        self.time_ns.record(sp.elapsed_ns());
        sp.set("changed", changed);
        sp.set("insts_before", before);
        sp.set("insts_after", module.inst_count());
        changed
    }

    fn run_on_function(&self, func: &mut Function) -> bool {
        self.runs.incr();
        if !frost_telemetry::enabled() {
            let changed = self.pass.run_on_function(func);
            if changed {
                self.changed.incr();
            }
            return changed;
        }
        let mut sp = frost_telemetry::span("opt.pass.run").field("pass", self.pass.name());
        let before = func.placed_inst_count();
        let changed = self.pass.run_on_function(func);
        if changed {
            self.changed.incr();
        }
        self.time_ns.record(sp.elapsed_ns());
        sp.set("changed", changed);
        sp.set("insts_before", before);
        sp.set("insts_after", func.placed_inst_count());
        changed
    }
}

/// Runs a sequence of passes, optionally to a fixpoint.
pub struct PassManager {
    passes: Vec<Instrumented>,
    max_iterations: usize,
}

impl PassManager {
    /// An empty manager that runs each pass once, in order.
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            max_iterations: 1,
        }
    }

    /// Repeats the whole pipeline until no pass reports a change, up to
    /// `n` rounds.
    pub fn with_fixpoint(mut self, n: usize) -> PassManager {
        self.max_iterations = n.max(1);
        self
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Instrumented::new(Box::new(pass)));
        self
    }

    /// The pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.pass.name()).collect()
    }

    /// Runs the pipeline on a module. Returns `true` if anything
    /// changed.
    pub fn run(&self, module: &mut Module) -> bool {
        let mut changed_ever = false;
        for _ in 0..self.max_iterations {
            let mut changed = false;
            for pass in &self.passes {
                changed |= pass.run_on_module(module);
            }
            changed_ever |= changed;
            if !changed {
                break;
            }
        }
        for f in &mut module.functions {
            f.compact();
        }
        changed_ever
    }

    /// Runs the pipeline on a single function (wrapping it in a
    /// throwaway module-less run).
    pub fn run_on_function(&self, func: &mut Function) -> bool {
        let mut changed_ever = false;
        for _ in 0..self.max_iterations {
            let mut changed = false;
            for pass in &self.passes {
                changed |= pass.run_on_function(func);
            }
            changed_ever |= changed;
            if !changed {
                break;
            }
        }
        func.compact();
        changed_ever
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

/// Builds the standard mid-end pipeline in the given mode, mirroring
/// the pass mix the paper evaluates (-O2: InstCombine, SimplifyCFG,
/// GVN, SCCP, Reassociate, the loop passes, DCE).
pub fn o2_pipeline(mode: PipelineMode) -> PassManager {
    let mut pm = PassManager::new().with_fixpoint(4);
    pm.add(crate::instcombine::InstCombine::new(mode));
    pm.add(crate::simplifycfg::SimplifyCfg::new(mode));
    pm.add(crate::sccp::Sccp::new(mode));
    pm.add(crate::jump_threading::JumpThreading::new(mode));
    pm.add(crate::reassociate::Reassociate::new(mode));
    pm.add(crate::gvn::Gvn::new(mode));
    pm.add(crate::licm::Licm::new(mode));
    pm.add(crate::loop_unswitch::LoopUnswitch::new(mode));
    pm.add(crate::indvar::IndVarWiden::new(mode));
    pm.add(crate::dce::Dce::new());
    pm
}

/// A light pipeline for quick cleanups (used after inlining and inside
/// tests).
pub fn cleanup_pipeline(mode: PipelineMode) -> PassManager {
    let mut pm = PassManager::new().with_fixpoint(2);
    pm.add(crate::instcombine::InstCombine::new(mode));
    pm.add(crate::simplifycfg::SimplifyCfg::new(mode));
    pm.add(crate::dce::Dce::new());
    pm
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Renamer;
    impl Pass for Renamer {
        fn name(&self) -> &'static str {
            "renamer"
        }
        fn run_on_function(&self, func: &mut Function) -> bool {
            if func.name.ends_with('!') {
                false
            } else {
                func.name.push('!');
                true
            }
        }
    }

    #[test]
    fn manager_runs_to_fixpoint() {
        let mut pm = PassManager::new().with_fixpoint(10);
        pm.add(Renamer);
        let mut m = Module::new();
        m.functions
            .push(Function::new("f", vec![], frost_ir::Ty::Void));
        assert!(pm.run(&mut m));
        assert_eq!(m.functions[0].name, "f!");
        assert!(!pm.run(&mut m));
    }

    #[test]
    fn mode_flags() {
        assert!(!PipelineMode::Legacy.uses_freeze());
        assert!(PipelineMode::Fixed.uses_freeze());
        assert!(PipelineMode::Fixed.freeze_aware());
        assert!(PipelineMode::FixedFreezeBlind.uses_freeze());
        assert!(!PipelineMode::FixedFreezeBlind.freeze_aware());
    }
}
