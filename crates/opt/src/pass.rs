//! The pass framework: a [`Pass`] trait, a [`PassManager`], and the
//! `-O2`-style pipelines in their *legacy* (pre-taming) and *fixed*
//! (freeze-aware) configurations.
//!
//! ## Analyses and invalidation
//!
//! The framework mirrors LLVM's new pass manager: passes receive a
//! [`FunctionAnalysisManager`] and request cached analyses
//! (`fam.get::<DomTreeAnalysis>(func)`) instead of recomputing them,
//! and they return a [`PreservedAnalyses`] set describing what their
//! rewrites kept intact. The driver invalidates precisely between
//! passes: only analyses a pass did *not* preserve are dropped, so a
//! dominator tree computed by GVN survives into LICM and loop
//! unswitching. By convention `PreservedAnalyses::all()` means "no
//! change" — it doubles as the fixpoint signal.
//!
//! ## Telemetry
//!
//! Every pass execution is metered through `frost-telemetry` (see
//! docs/OBSERVABILITY.md): the always-on counters
//! `frost.opt.pass.<name>.runs` / `.changed` tally executions and
//! rewrites, and — when tracing is enabled — each execution is wrapped
//! in an `opt.pass.run` span carrying the pass name, duration, and the
//! instruction counts before/after, with per-pass latency recorded in
//! the `frost.opt.pass.<name>.ns` histogram. The analysis cache adds
//! `frost.ir.analysis.<name>.{hits,misses,invalidations}`.

use frost_ir::{
    Function, FunctionAnalysisManager, Module, ModuleAnalysisManager, PreservedAnalyses,
};
use frost_telemetry::{counter, histogram, Counter, Histogram};

/// A code transformation.
///
/// Most passes work function-at-a-time and implement
/// [`Pass::run_on_function`]; module passes (e.g. inlining) override
/// [`Pass::run_on_module`].
///
/// A pass must return an *honest* [`PreservedAnalyses`] set:
/// [`PreservedAnalyses::all`] iff it changed nothing,
/// [`PreservedAnalyses::cfg`] for instruction-level rewrites that leave
/// the block graph intact, [`PreservedAnalyses::none`] for CFG surgery.
/// Debug builds verify the CFG claim against a fingerprint and panic on
/// lies (see `frost_ir::analysis::manager`).
///
/// Whoever invokes `run_on_function` owns invalidation: the caller
/// passes the returned set to [`FunctionAnalysisManager::invalidate`].
/// Implementations of `run_on_module` invalidate the module manager
/// themselves (the provided default does so function by function).
///
/// Passes are required to be `Send + Sync` (they are stateless
/// configuration plus pure code), so a [`PassManager`] can be shared by
/// the workers of a parallel validation campaign; the analysis managers
/// are per-worker and passed in by the caller.
pub trait Pass: Send + Sync {
    /// A short, stable name (used in reports and pipeline dumps).
    fn name(&self) -> &'static str;

    /// Transforms one function, consuming cached analyses from `fam`.
    /// Returns what the transformation preserved
    /// ([`PreservedAnalyses::all`] iff nothing changed).
    fn run_on_function(
        &self,
        _func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        PreservedAnalyses::all()
    }

    /// Transforms the module. The default applies
    /// [`Pass::run_on_function`] to every function and invalidates each
    /// function's analyses with the set that function's run reported.
    fn run_on_module(
        &self,
        module: &mut Module,
        mam: &mut ModuleAnalysisManager,
    ) -> PreservedAnalyses {
        let mut pa = PreservedAnalyses::all();
        for (i, f) in module.functions.iter_mut().enumerate() {
            let fam = mam.function(i);
            let fpa = self.run_on_function(f, fam);
            fam.invalidate(f, &fpa);
            pa.intersect(&fpa);
        }
        pa
    }

    /// Convenience: runs this pass once on `func` with a throwaway
    /// analysis manager. Returns `true` if anything changed.
    fn apply(&self, func: &mut Function) -> bool {
        let mut fam = FunctionAnalysisManager::new();
        let pa = self.run_on_function(func, &mut fam);
        fam.invalidate(func, &pa);
        !pa.preserves_all()
    }

    /// Convenience: runs this pass once on `module` with a throwaway
    /// analysis manager. Returns `true` if anything changed.
    fn apply_to_module(&self, module: &mut Module) -> bool {
        let mut mam = ModuleAnalysisManager::new();
        !self.run_on_module(module, &mut mam).preserves_all()
    }
}

/// Which variant of each pass a pipeline uses.
///
/// * [`PipelineMode::Legacy`] reproduces pre-taming LLVM: the unsound
///   rules of §3 are active and no freeze is emitted.
/// * [`PipelineMode::Fixed`] is the paper's prototype (§6): unsound
///   rules removed or repaired with `freeze`.
/// * [`PipelineMode::FixedFreezeBlind`] is the partially-migrated state
///   §7.2 describes: semantics fixed, but some passes do not yet
///   recognize `freeze` and conservatively give up (the source of the
///   "Shootout nestedloop" compile-time outlier and most run-time
///   deltas).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineMode {
    /// Pre-taming LLVM behavior.
    Legacy,
    /// The paper's fixed prototype.
    Fixed,
    /// Fixed semantics, freeze-oblivious passes.
    FixedFreezeBlind,
}

impl PipelineMode {
    /// Returns `true` for the modes that emit/expect `freeze`.
    pub fn uses_freeze(self) -> bool {
        !matches!(self, PipelineMode::Legacy)
    }

    /// Returns `true` if passes may look through / fold `freeze`.
    pub fn freeze_aware(self) -> bool {
        matches!(self, PipelineMode::Fixed)
    }
}

/// A pass bundled with its telemetry handles, resolved once at
/// registration so the per-run cost is plain atomic adds.
struct Instrumented {
    pass: Box<dyn Pass>,
    runs: &'static Counter,
    changed: &'static Counter,
    time_ns: &'static Histogram,
}

impl Instrumented {
    fn new(pass: Box<dyn Pass>) -> Instrumented {
        let name = pass.name();
        Instrumented {
            runs: counter(&format!("frost.opt.pass.{name}.runs")),
            changed: counter(&format!("frost.opt.pass.{name}.changed")),
            time_ns: histogram(&format!("frost.opt.pass.{name}.ns")),
            pass,
        }
    }

    fn run_on_module(&self, module: &mut Module, mam: &mut ModuleAnalysisManager) -> bool {
        self.runs.incr();
        if !frost_telemetry::enabled() {
            let changed = !self.pass.run_on_module(module, mam).preserves_all();
            if changed {
                self.changed.incr();
            }
            return changed;
        }
        let mut sp = frost_telemetry::span("opt.pass.run").field("pass", self.pass.name());
        let before = module.inst_count();
        let changed = !self.pass.run_on_module(module, mam).preserves_all();
        if changed {
            self.changed.incr();
        }
        self.time_ns.record(sp.elapsed_ns());
        sp.set("changed", changed);
        sp.set("insts_before", before);
        sp.set("insts_after", module.inst_count());
        changed
    }

    fn run_on_function(&self, func: &mut Function, fam: &mut FunctionAnalysisManager) -> bool {
        self.runs.incr();
        if !frost_telemetry::enabled() {
            let pa = self.pass.run_on_function(func, fam);
            fam.invalidate(func, &pa);
            let changed = !pa.preserves_all();
            if changed {
                self.changed.incr();
            }
            return changed;
        }
        let mut sp = frost_telemetry::span("opt.pass.run").field("pass", self.pass.name());
        let before = func.placed_inst_count();
        let pa = self.pass.run_on_function(func, fam);
        fam.invalidate(func, &pa);
        let changed = !pa.preserves_all();
        if changed {
            self.changed.incr();
        }
        self.time_ns.record(sp.elapsed_ns());
        sp.set("changed", changed);
        sp.set("insts_before", before);
        sp.set("insts_after", func.placed_inst_count());
        changed
    }
}

/// Runs a sequence of passes, optionally to a fixpoint, threading an
/// analysis manager through so analyses are computed once and
/// invalidated precisely between passes.
pub struct PassManager {
    passes: Vec<Instrumented>,
    max_iterations: usize,
}

impl PassManager {
    /// An empty manager that runs each pass once, in order.
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            max_iterations: 1,
        }
    }

    /// Repeats the whole pipeline until no pass reports a change, up to
    /// `n` rounds.
    pub fn with_fixpoint(mut self, n: usize) -> PassManager {
        self.max_iterations = n.max(1);
        self
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Instrumented::new(Box::new(pass)));
        self
    }

    /// The pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.pass.name()).collect()
    }

    /// The one fixpoint driver behind both the module and the function
    /// entry points: sweeps the pipeline over `unit` until a full sweep
    /// reports no change or the iteration budget runs out.
    fn fixpoint<U>(
        &self,
        unit: &mut U,
        mut run_pass: impl FnMut(&Instrumented, &mut U) -> bool,
    ) -> bool {
        let mut changed_ever = false;
        for _ in 0..self.max_iterations {
            let mut changed = false;
            for pass in &self.passes {
                changed |= run_pass(pass, unit);
            }
            changed_ever |= changed;
            if !changed {
                break;
            }
        }
        changed_ever
    }

    /// Runs the pipeline on a module with a fresh analysis manager.
    /// Returns `true` if anything changed.
    pub fn run(&self, module: &mut Module) -> bool {
        let mut mam = ModuleAnalysisManager::new();
        self.run_with(module, &mut mam)
    }

    /// Runs the pipeline on a module, threading the caller's analysis
    /// manager through every pass. The final `Function::compact` sweep
    /// renumbers instruction ids, so all analyses are dropped on exit;
    /// the manager is still valuable to callers that interleave their
    /// own analysis queries with pipeline runs.
    pub fn run_with(&self, module: &mut Module, mam: &mut ModuleAnalysisManager) -> bool {
        let changed = self.fixpoint(module, |pass, m| pass.run_on_module(m, mam));
        for f in &mut module.functions {
            f.compact();
        }
        mam.invalidate_all();
        changed
    }

    /// Runs the pipeline on a single function with a fresh analysis
    /// manager. Returns `true` if anything changed.
    pub fn run_on_function(&self, func: &mut Function) -> bool {
        let mut fam = FunctionAnalysisManager::new();
        self.run_on_function_with(func, &mut fam)
    }

    /// Runs the pipeline on a single function, threading the caller's
    /// analysis manager through every pass (cleared on exit, after the
    /// final `Function::compact`).
    pub fn run_on_function_with(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> bool {
        let changed = self.fixpoint(func, |pass, f| pass.run_on_function(f, fam));
        func.compact();
        fam.clear();
        changed
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

/// Builds the standard mid-end pipeline in the given mode, mirroring
/// the pass mix the paper evaluates (-O2: InstCombine, SimplifyCFG,
/// GVN, SCCP, Reassociate, the loop passes, DCE).
pub fn o2_pipeline(mode: PipelineMode) -> PassManager {
    let mut pm = PassManager::new().with_fixpoint(4);
    pm.add(crate::instcombine::InstCombine::new(mode));
    pm.add(crate::simplifycfg::SimplifyCfg::new(mode));
    pm.add(crate::sccp::Sccp::new(mode));
    pm.add(crate::jump_threading::JumpThreading::new(mode));
    pm.add(crate::reassociate::Reassociate::new(mode));
    pm.add(crate::gvn::Gvn::new(mode));
    pm.add(crate::licm::Licm::new(mode));
    pm.add(crate::loop_unswitch::LoopUnswitch::new(mode));
    pm.add(crate::indvar::IndVarWiden::new(mode));
    pm.add(crate::dce::Dce::new());
    pm
}

/// A light pipeline for quick cleanups (used after inlining, after
/// C-source irgen, and inside tests).
pub fn cleanup_pipeline(mode: PipelineMode) -> PassManager {
    let mut pm = PassManager::new().with_fixpoint(2);
    pm.add(crate::instcombine::InstCombine::new(mode));
    pm.add(crate::simplifycfg::SimplifyCfg::new(mode));
    pm.add(crate::dce::Dce::new());
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::DomTreeAnalysis;

    struct Renamer;
    impl Pass for Renamer {
        fn name(&self) -> &'static str {
            "renamer"
        }
        fn run_on_function(
            &self,
            func: &mut Function,
            _fam: &mut FunctionAnalysisManager,
        ) -> PreservedAnalyses {
            if func.name.ends_with('!') {
                PreservedAnalyses::all()
            } else {
                func.name.push('!');
                PreservedAnalyses::cfg()
            }
        }
    }

    #[test]
    fn manager_runs_to_fixpoint() {
        let mut pm = PassManager::new().with_fixpoint(10);
        pm.add(Renamer);
        let mut m = Module::new();
        m.functions
            .push(Function::new("f", vec![], frost_ir::Ty::Void));
        assert!(pm.run(&mut m));
        assert_eq!(m.functions[0].name, "f!");
        assert!(!pm.run(&mut m));
    }

    /// A pass whose only effect is requesting the dominator tree, so
    /// tests can observe cache traffic across passes.
    struct DomUser;
    impl Pass for DomUser {
        fn name(&self) -> &'static str {
            "domuser"
        }
        fn run_on_function(
            &self,
            func: &mut Function,
            fam: &mut FunctionAnalysisManager,
        ) -> PreservedAnalyses {
            let _ = fam.get::<DomTreeAnalysis>(func);
            PreservedAnalyses::all()
        }
    }

    #[test]
    fn analyses_survive_preserving_passes() {
        let hits = frost_telemetry::counter("frost.ir.analysis.domtree.hits");
        let before = hits.get();
        let mut pm = PassManager::new();
        pm.add(DomUser);
        pm.add(DomUser);
        let mut m = Module::new();
        m.functions
            .push(Function::new("f", vec![], frost_ir::Ty::Void));
        pm.run(&mut m);
        // The second DomUser run must be served from cache.
        assert!(hits.get() > before);
    }

    #[test]
    fn mode_flags() {
        assert!(!PipelineMode::Legacy.uses_freeze());
        assert!(PipelineMode::Fixed.uses_freeze());
        assert!(PipelineMode::Fixed.freeze_aware());
        assert!(PipelineMode::FixedFreezeBlind.uses_freeze());
        assert!(!PipelineMode::FixedFreezeBlind.freeze_aware());
    }
}
