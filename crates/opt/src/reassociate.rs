//! Reassociation of commutative-associative expression chains.
//!
//! §10.2 of the paper: reassociation changes *where* overflow happens,
//! so it must drop `nsw`/`nuw` from the rebuilt expressions — "at least
//! LLVM and MSVC have suffered from bugs because of reassociation not
//! dropping overflow assumptions". The *fixed* variant drops the flags;
//! the *legacy* variant keeps them, reproducing the bug for the
//! refinement checker to find.

use frost_ir::{
    BinOp, Flags, Function, FunctionAnalysisManager, Inst, InstId, PreservedAnalyses, UseCounts,
    UseCountsAnalysis, Value,
};

use crate::pass::{Pass, PipelineMode};

/// The reassociation pass.
#[derive(Debug)]
pub struct Reassociate {
    mode: PipelineMode,
}

impl Reassociate {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> Reassociate {
        Reassociate { mode }
    }
}

impl Pass for Reassociate {
    fn name(&self) -> &'static str {
        "reassociate"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let mut changed = false;
        let uses = fam.get::<UseCountsAnalysis>(func);
        for bb in func.block_ids().collect::<Vec<_>>() {
            let ids: Vec<InstId> = func.block(bb).insts.clone();
            for id in ids {
                changed |= reassociate_chain(func, id, &uses, self.mode);
            }
        }
        if changed {
            // In-place operand rewrites; the block graph is untouched.
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// Rewrites `(x op C1) op C2` into `x op (C1 op C2)` for associative
/// ops, when the inner result has no other use.
fn reassociate_chain(
    func: &mut Function,
    id: InstId,
    uses: &UseCounts,
    mode: PipelineMode,
) -> bool {
    let Inst::Bin {
        op,
        flags,
        ty,
        lhs,
        rhs,
    } = func.inst(id).clone()
    else {
        return false;
    };
    if !is_associative(op) {
        return false;
    }
    let Some(c2) = rhs.as_int_const() else {
        return false;
    };
    let Value::Inst(inner_id) = &lhs else {
        return false;
    };
    if uses.count(*inner_id) != 1 {
        return false;
    }
    let Inst::Bin {
        op: op2,
        flags: inner_flags,
        lhs: x,
        rhs: inner_rhs,
        ..
    } = func.inst(*inner_id).clone()
    else {
        return false;
    };
    if op2 != op {
        return false;
    }
    let Some(c1) = inner_rhs.as_int_const() else {
        return false;
    };
    let bits = match ty.int_bits() {
        Some(b) => b,
        None => return false,
    };
    // Fold the constants with wrapping semantics (the fold itself never
    // introduces poison).
    let folded = match op {
        BinOp::Add => frost_ir::value::truncate(c1.wrapping_add(c2), bits),
        BinOp::Mul => frost_ir::value::truncate(c1.wrapping_mul(c2), bits),
        BinOp::And => c1 & c2,
        BinOp::Or => c1 | c2,
        BinOp::Xor => c1 ^ c2,
        _ => return false,
    };
    // §10.2: the rebuilt add must drop nsw/nuw (fixed) — the combined
    // operation can overflow even when neither original did, and vice
    // versa. Legacy keeps the flags (the reproduced bug).
    let new_flags = match mode {
        PipelineMode::Fixed | PipelineMode::FixedFreezeBlind => Flags::NONE,
        PipelineMode::Legacy => flags.intersect(inner_flags),
    };
    *func.inst_mut(id) = Inst::Bin {
        op,
        flags: new_flags,
        ty,
        lhs: x,
        rhs: Value::int(bits, folded),
    };
    // The inner instruction becomes dead; DCE collects it.
    true
}

fn is_associative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        for f in &mut after.functions {
            Reassociate::new(mode).apply(f);
            crate::dce::Dce::new().apply(f);
            f.compact();
        }
        (before, after)
    }

    #[test]
    fn folds_constant_chains() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add i4 %x, 1
  %b = add i4 %a, 2
  ret i4 %b
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("add i4 %x, 3"), "{text}");
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 1);
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn fixed_mode_drops_nsw() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add nsw i4 %x, 1
  %b = add nsw i4 %a, -1
  ret i4 %b
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("add i4 %x, 0"), "flags dropped: {text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn legacy_mode_keeps_nsw_and_is_unsound() {
        // x +nsw 1 +nsw -1: fine for x = 7 (i4 SMAX overflows on the
        // way up... wait: 7+1 = -8 overflow -> poison in the source).
        // The interesting direction: x = -8: source computes -8+1 = -7,
        // -7-1 = -8: no overflow, defined. Legacy target: add nsw x, 0
        // = x: also defined. Take instead C1=7, C2=7: source
        // x +nsw 7 +nsw 7; target x +nsw 14 (= -2). For x = 1: source
        // 1+7 = -8: overflow -> poison. Target 1 + (-2) = -1: defined.
        // That's target-more-defined: allowed! The unsound direction is
        // source-defined/target-poison: x = -8: source -8+7 = -1,
        // -1+7 = 6: defined. Target: -8 + (-2) = -10: overflows ->
        // poison. Poison does not refine 6: caught.
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add nsw i4 %x, 7
  %b = add nsw i4 %a, 7
  ret i4 %b
}
"#,
            PipelineMode::Legacy,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("add nsw i4 %x, 14"), "{text}");
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(
            r.counterexample().is_some(),
            "§10.2 reassociation bug reproduced"
        );

        // And the fixed variant of the same chain is sound.
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add nsw i4 %x, 7
  %b = add nsw i4 %a, 7
  ret i4 %b
}
"#,
            PipelineMode::Fixed,
        );
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn multi_use_inner_values_are_left_alone() {
        let (_, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add i4 %x, 1
  %b = add i4 %a, 2
  %c = xor i4 %a, %b
  ret i4 %c
}
"#,
            PipelineMode::Fixed,
        );
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 3);
    }

    #[test]
    fn mul_and_bitwise_chains() {
        let (before, after) = run(
            r#"
define i8 @f(i8 %x) {
entry:
  %a = mul i8 %x, 3
  %b = mul i8 %a, 5
  %c = and i8 %b, 12
  %d = and i8 %c, 10
  ret i8 %d
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("mul i8 %x, 15"), "{text}");
        assert!(text.contains("and i8 %t0, 8"), "{text}");
        // i8 inputs are too many to enumerate exhaustively with poison,
        // so spot-check at i8 is skipped; rerun the same shape at i4.
        let _ = before;
        let (b4, a4) = run(
            "define i4 @f(i4 %x) {\nentry:\n  %a = mul i4 %x, 3\n  %b = mul i4 %a, 5\n  ret i4 %b\n}",
            PipelineMode::Fixed,
        );
        check_refinement(
            &b4,
            "f",
            &a4,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }
}
