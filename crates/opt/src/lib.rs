//! # frost-opt
//!
//! The mid-end optimizer of the frost compiler — the passes *"Taming
//! Undefined Behavior in LLVM"* (PLDI 2017) analyzes, each available in
//! the pre-taming (**legacy**) and repaired (**fixed**) variants so the
//! paper's miscompilations can be reproduced and its fixes validated:
//!
//! | Pass | Paper | Legacy defect | Fix |
//! |---|---|---|---|
//! | [`instcombine`] | §3.4, §6 | `select→or/and` leaks poison; `select x, undef` strengthens undef to poison | freeze the arm; rule removal |
//! | [`simplifycfg`] | §3.4 | phi→select unsound under LangRef select | sound under §4 semantics |
//! | [`gvn`] | §3.3 | equality propagation needs branch-on-poison = UB | provided by §4 semantics |
//! | [`loop_unswitch`] | §3.3, §5.1 | hoisted branch executes on poison | freeze the condition |
//! | [`licm`] | §3.2, §5.6 | division hoisted past `k != 0` guard with undef `k`; load hoisted past escape-blind aliasing | require non-poison proof; alias-aware pinning |
//! | [`alias`] | §5 | alloca assumed private even after `ptrtoint` published its address | unknown pointers may alias escaped blocks |
//! | [`loop_sink`] | §5.5 | sinking duplicates freeze | refuse to sink freeze |
//! | [`guard`] | §2.2, §4 | `assume` facts applied dominance-blind; freeze forwarded into guard facts | dominated region only; freeze kept load-bearing |
//! | [`sccp`] | — | — | branch-on-poison folds to `unreachable` |
//! | [`reassociate`] | §10.2 | keeps `nsw` while reassociating | drop the flags |
//! | [`jump_threading`] | §7.2 | — | look through `freeze(phi const)` |
//! | [`codegenprepare`] | §5.2, §6 | select→branch without freeze | freeze; sink freeze through icmp |
//! | [`indvar`] | §2.4, Fig. 3 | unjustified if overflow = undef | justified by nsw = poison |
//! | [`inline`] | §6 | — | freeze costs zero |
//!
//! Every fixed-mode transformation is validated in this crate's tests
//! with the exhaustive refinement checker (`frost-refine`), and every
//! legacy defect is reproduced as a concrete counterexample.

#![warn(missing_docs)]

pub mod alias;
pub mod codegenprepare;
pub mod dce;
pub mod guard;
pub mod gvn;
pub mod indvar;
pub mod inline;
pub mod instcombine;
pub mod jump_threading;
pub mod licm;
pub mod loop_sink;
pub mod loop_unswitch;
pub mod pass;
pub mod reassociate;
pub mod sccp;
pub mod simplifycfg;
pub mod util;

pub use codegenprepare::CodeGenPrepare;
pub use dce::Dce;
pub use guard::{AssumeSimplify, GuardDce};
pub use gvn::Gvn;
pub use indvar::IndVarWiden;
pub use inline::Inliner;
pub use instcombine::InstCombine;
pub use jump_threading::JumpThreading;
pub use licm::Licm;
pub use loop_sink::LoopSink;
pub use loop_unswitch::LoopUnswitch;
pub use pass::{cleanup_pipeline, o2_pipeline, Pass, PassManager, PipelineMode};
pub use reassociate::Reassociate;
pub use sccp::Sccp;
pub use simplifycfg::SimplifyCfg;
