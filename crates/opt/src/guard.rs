//! Guard-driven passes: assume-driven simplification and a freeze-aware
//! DCE over `unreachable`-doomed code.
//!
//! Two ingredients, each in legacy and fixed variants:
//!
//! 1. **[`AssumeSimplify`]**: an executed `assume i1 %c` proves that
//!    `%c` is `true` *and non-poison* on every execution that gets past
//!    it (the guard promotes deferred UB to immediate UB, so a poison
//!    fact never survives the assume). The pass cashes that in: uses of
//!    `%c` dominated by the guard become `true`; an asserted
//!    `icmp eq %v, C` rewrites dominated uses of `%v` to `C`; an
//!    asserted `icmp ult %v, C` (`C` a power of two) proves the high
//!    bits of `%v` are zero, so a dominated `and %v, m` with
//!    `m ⊇ C-1` is just `%v`. The *legacy* variant is dominance-blind —
//!    it applies the fact everywhere in the function, including on
//!    paths that never execute the guard, which the refinement checker
//!    pins with a concrete miscompilation.
//!
//! 2. **[`GuardDce`]**: deleting guarded-dead code. Code in an
//!    `unreachable`-terminated block only runs on executions that are
//!    already doomed to immediate UB, so the whole block body — even
//!    side-effecting stores — may go; `assume true` is a no-op and
//!    `assume false`/`assume poison` dooms the rest of its block, which
//!    collapses to `unreachable`. All of that is sound in *both*
//!    variants: removing or weakening a guard only removes UB, and
//!    target behaviors on source-UB executions are unconstrained. The
//!    *legacy* defect is freeze-blindness: it treats a `freeze` that
//!    only feeds optimizer facts as a redundant copy and forwards its
//!    operand — un-laundering deferred UB straight into the guard,
//!    which turns a defined source execution into target UB.
//!
//! Neither pass ever *moves* a computation, so nothing is sunk past (or
//! hoisted over) a guard; the only edits are value rewrites and
//! deletions of provably-doomed code.

use std::collections::HashMap;

use frost_ir::builder::bool_const;
use frost_ir::{
    BinOp, BlockId, Cond, DomTreeAnalysis, Function, FunctionAnalysisManager, Inst, InstId,
    PreservedAnalyses, Terminator, Value,
};

use crate::dce::remove_unreachable_blocks;
use crate::pass::{Pass, PipelineMode};
use crate::util::erase_inst;

/// The assume-driven simplification pass.
#[derive(Debug)]
pub struct AssumeSimplify {
    mode: PipelineMode,
}

impl AssumeSimplify {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> AssumeSimplify {
        AssumeSimplify { mode }
    }
}

/// One thing an executed `assume` proves.
enum Fact {
    /// Every use of the first value in the guarded region is the second.
    Replace(Value, Value),
    /// The value is known `< c` (`c` a power of two), so an
    /// `and value, m` with `m & (c-1) == c-1` in the region *is* the
    /// value.
    LowBits(Value, u128),
}

impl Pass for AssumeSimplify {
    fn name(&self) -> &'static str {
        "assume-simplify"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let dt = fam.get::<DomTreeAnalysis>(func);
        let mut changed = false;

        // Collect the guard sites up front; the rewrites below only
        // edit operands (never move, add, or remove instructions), so
        // the recorded positions stay valid throughout.
        let mut sites: Vec<(BlockId, usize, Value)> = Vec::new();
        for bb in func.block_ids() {
            for (pos, &id) in func.block(bb).insts.iter().enumerate() {
                if let Inst::Assume { cond } = func.inst(id) {
                    sites.push((bb, pos, cond.clone()));
                }
            }
        }

        for (site_bb, pos, cond) in sites {
            let mut facts: Vec<Fact> = Vec::new();
            // The asserted fact itself: past the guard, `%c` is `true`
            // (and non-poison — poison would have been immediate UB at
            // the guard, so the rewrite never weakens a use).
            if matches!(cond, Value::Inst(_) | Value::Arg(_)) {
                facts.push(Fact::Replace(cond.clone(), bool_const(true)));
            }
            // Look through an asserted comparison for richer facts.
            if let Value::Inst(cid) = &cond {
                if let Inst::Icmp {
                    cond: cc, lhs, rhs, ..
                } = func.inst(*cid)
                {
                    match cc {
                        Cond::Eq => {
                            // Prefer replacing a computed value by a
                            // constant or argument representative.
                            let pick = match (lhs, rhs) {
                                (v @ (Value::Inst(_) | Value::Arg(_)), c @ Value::Const(_))
                                | (c @ Value::Const(_), v @ (Value::Inst(_) | Value::Arg(_))) => {
                                    Some((v.clone(), c.clone()))
                                }
                                (v @ Value::Inst(_), o) | (o, v @ Value::Inst(_)) => {
                                    Some((v.clone(), o.clone()))
                                }
                                _ => None,
                            };
                            if let Some((from, to)) = pick {
                                facts.push(Fact::Replace(from, to));
                            }
                        }
                        Cond::Ult => {
                            if let Some(c) = rhs.as_int_const() {
                                if c.is_power_of_two() {
                                    facts.push(Fact::LowBits(lhs.clone(), c));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }

            // The guarded region: program points that only execute
            // after the fact has been checked. `None` = outside; the
            // payload is the first eligible instruction position (the
            // terminator is always past every position).
            let region = |user_bb: BlockId| -> Option<usize> {
                match self.mode {
                    // The legacy defect: dominance-blind. The fact is
                    // applied everywhere, including on paths that never
                    // reach the guard.
                    PipelineMode::Legacy => Some(0),
                    _ => {
                        if user_bb == site_bb {
                            Some(pos + 1)
                        } else if dt.strictly_dominates(site_bb, user_bb) {
                            Some(0)
                        } else {
                            None
                        }
                    }
                }
            };

            for fact in facts {
                match fact {
                    Fact::Replace(from, to) => {
                        let from_id = from.as_inst();
                        for user_bb in func.block_ids().collect::<Vec<_>>() {
                            let Some(start) = region(user_bb) else {
                                continue;
                            };
                            let ids: Vec<InstId> = func.block(user_bb).insts[start..].to_vec();
                            for uid in ids {
                                if Some(uid) == from_id {
                                    continue;
                                }
                                // Phi operands are evaluated on the
                                // incoming edge, not at this point.
                                if matches!(func.inst(uid), Inst::Phi { .. }) {
                                    continue;
                                }
                                let (from2, to2) = (from.clone(), to.clone());
                                func.inst_mut(uid).for_each_operand_mut(|v| {
                                    if *v == from2 {
                                        *v = to2.clone();
                                        changed = true;
                                    }
                                });
                            }
                            let (from2, to2) = (from.clone(), to.clone());
                            func.block_mut(user_bb).term.for_each_operand_mut(|v| {
                                if *v == from2 {
                                    *v = to2.clone();
                                    changed = true;
                                }
                            });
                        }
                    }
                    Fact::LowBits(val, c) => {
                        // A masked copy whose *definition* sits in the
                        // guarded region equals `val` on every
                        // execution that evaluates it, so all its uses
                        // (necessarily dominated by the definition) may
                        // be rewritten; the dead `and` is left for DCE.
                        let low = c - 1;
                        let mut masked: Vec<InstId> = Vec::new();
                        for user_bb in func.block_ids().collect::<Vec<_>>() {
                            let Some(start) = region(user_bb) else {
                                continue;
                            };
                            for &uid in &func.block(user_bb).insts[start..] {
                                if let Inst::Bin {
                                    op: BinOp::And,
                                    flags,
                                    lhs,
                                    rhs,
                                    ..
                                } = func.inst(uid)
                                {
                                    let mask = match (lhs, rhs) {
                                        (v, m) if *v == val => m.as_int_const(),
                                        (m, v) if *v == val => m.as_int_const(),
                                        _ => None,
                                    };
                                    if flags.is_none() && mask.is_some_and(|m| m & low == low) {
                                        masked.push(uid);
                                    }
                                }
                            }
                        }
                        for uid in masked {
                            func.replace_all_uses(uid, &val);
                            changed = true;
                        }
                    }
                }
            }
        }

        if changed {
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// The guard-aware dead code elimination pass.
#[derive(Debug)]
pub struct GuardDce {
    mode: PipelineMode,
}

impl GuardDce {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> GuardDce {
        GuardDce { mode }
    }
}

impl Pass for GuardDce {
    fn name(&self) -> &'static str {
        "guard-dce"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let mut changed = false;
        let mut changed_cfg = false;

        // The legacy defect: a freeze whose only consumers are
        // optimizer facts looks redundant — "the fact is advisory, why
        // spend an instruction on it" — so legacy forwards the operand
        // and drops the freeze. Under the proposed semantics the freeze
        // was load-bearing: the guard promotes a poison fact to
        // *immediate* UB, and forwarding re-exposes the unlaundered
        // value to it.
        if self.mode == PipelineMode::Legacy {
            changed |= forward_fact_freezes(func);
        }

        // Fold constant facts: `assume true` is a no-op; `assume false`
        // and `assume poison` are immediate UB, dooming the rest of the
        // block. (`assume undef` is left alone — undef may choose
        // `true`, so the source is not necessarily UB.)
        for bb in 0..func.blocks.len() {
            let mut doomed_at: Option<usize> = None;
            let mut noop: Vec<InstId> = Vec::new();
            for (i, &id) in func.blocks[bb].insts.iter().enumerate() {
                if let Inst::Assume { cond } = func.inst(id) {
                    let Some(c) = cond.as_const() else { continue };
                    if c.contains_poison() || c.as_int() == Some(0) {
                        doomed_at = Some(i);
                        break;
                    }
                    if c.as_int() == Some(1) {
                        noop.push(id);
                    }
                }
            }
            if let Some(i) = doomed_at {
                func.blocks[bb].insts.truncate(i);
                func.blocks[bb].term = Terminator::Unreachable;
                changed_cfg = true;
            }
            if !noop.is_empty() {
                func.blocks[bb].insts.retain(|id| !noop.contains(id));
                changed = true;
            }
        }

        // Delete guarded-dead code. Blocks that became CFG-unreachable
        // are gutted first (fixing up phis); then every reachable
        // `unreachable`-terminated block loses its body — each of its
        // instructions only runs on executions the terminator dooms to
        // immediate UB, so even stores may go. No successor exists, so
        // no live value or phi can depend on the deleted code.
        changed_cfg |= remove_unreachable_blocks(func);
        for bb in 0..func.blocks.len() {
            if matches!(func.blocks[bb].term, Terminator::Unreachable)
                && !func.blocks[bb].insts.is_empty()
            {
                func.blocks[bb].insts.clear();
                changed = true;
            }
        }

        if changed_cfg {
            PreservedAnalyses::none()
        } else if changed {
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// Forwards every placed `freeze` whose result is consumed only by
/// guard facts — directly by `assume`, or through a pure instruction
/// whose own uses are all `assume`s. Returns `true` on change.
///
/// This is the legacy miscompilation, kept verbatim so the refinement
/// checker can pin it: `%f = freeze i1 %c; %t = or i1 %f, 1;
/// assume i1 %t` is UB-free for every input (`or` of a *concrete* bit
/// with `1` is `1`), but after forwarding, `%t = or i1 %c, 1` is poison
/// when `%c` is, and the guard turns that into immediate UB.
fn forward_fact_freezes(func: &mut Function) -> bool {
    // Users of each placed instruction, and whether a terminator uses
    // it (terminator uses are never fact-only).
    let mut users: HashMap<InstId, Vec<InstId>> = HashMap::new();
    let mut term_used: Vec<InstId> = Vec::new();
    for bb in func.block_ids() {
        for &id in &func.block(bb).insts {
            for v in func.inst(id).operands() {
                if let Value::Inst(op) = v {
                    users.entry(op).or_default().push(id);
                }
            }
        }
        func.block(bb).term.for_each_operand(|v| {
            if let Value::Inst(op) = v {
                term_used.push(*op);
            }
        });
    }

    let only_feeds_facts = |id: InstId| -> bool {
        if term_used.contains(&id) {
            return false;
        }
        let Some(us) = users.get(&id) else {
            return false; // dead; plain DCE's job
        };
        us.iter().all(|&u| match func.inst(u) {
            Inst::Assume { .. } => true,
            inst => {
                !inst.has_side_effects()
                    && !term_used.contains(&u)
                    && users.get(&u).is_some_and(|uu| {
                        uu.iter()
                            .all(|&g| matches!(func.inst(g), Inst::Assume { .. }))
                    })
            }
        })
    };

    let mut forward: Vec<(InstId, Value)> = Vec::new();
    for bb in func.block_ids() {
        for &id in &func.block(bb).insts {
            if let Inst::Freeze { val, .. } = func.inst(id) {
                if only_feeds_facts(id) {
                    forward.push((id, val.clone()));
                }
            }
        }
    }
    let changed = !forward.is_empty();
    for (id, val) in forward {
        func.replace_all_uses(id, &val);
        erase_inst(func, id);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, pass: &dyn Pass) -> (Module, Module) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        for f in &mut after.functions {
            pass.apply(f);
            f.compact();
        }
        (before, after)
    }

    fn refines(before: &Module, after: &Module) {
        check_refinement(
            before,
            "f",
            after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn fixed_assume_propagates_dominated_equalities() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %c = icmp eq i4 %x, 1
  assume i1 %c
  %r = add i4 %x, 3
  ret i4 %r
}
"#,
            &AssumeSimplify::new(PipelineMode::Fixed),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("add i4 1, 3"), "{text}");
        refines(&before, &after);
    }

    #[test]
    fn fixed_assume_strengthens_known_bits() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %c = icmp ult i4 %x, 2
  assume i1 %c
  %m = and i4 %x, 1
  ret i4 %m
}
"#,
            &AssumeSimplify::new(PipelineMode::Fixed),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("ret i4 %x"), "{text}");
        refines(&before, &after);
    }

    /// The §3.3-style region discipline, for guards: the fact from
    /// `assume (icmp eq %x, 1)` holds only *past the guard*. The exit
    /// block is reachable without executing the guard, so its uses of
    /// `%x` must not be rewritten.
    const BRANCHY_GUARD: &str = r#"
define i4 @f(i1 %p, i4 %x) {
entry:
  br i1 %p, label %guarded, label %exit
guarded:
  %c = icmp eq i4 %x, 1
  assume i1 %c
  br label %exit
exit:
  %r = add i4 %x, 3
  ret i4 %r
}
"#;

    #[test]
    fn legacy_assume_is_dominance_blind_and_miscompiles() {
        let (before, after) = run(BRANCHY_GUARD, &AssumeSimplify::new(PipelineMode::Legacy));
        let text = function_to_string(after.function("f").unwrap());
        assert!(
            text.contains("add i4 1, 3"),
            "legacy applies the fact outside the guarded region: {text}"
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(
            r.counterexample().is_some(),
            "p=false, x=0: source returns 3, target returns 4"
        );
    }

    #[test]
    fn fixed_assume_respects_the_guarded_region() {
        let (before, after) = run(BRANCHY_GUARD, &AssumeSimplify::new(PipelineMode::Fixed));
        let text = function_to_string(after.function("f").unwrap());
        assert!(
            text.contains("add i4 %x, 3"),
            "the exit block is not dominated by the guard: {text}"
        );
        refines(&before, &after);
    }

    #[test]
    fn guard_dce_folds_assume_false_to_unreachable() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %r = add i4 %x, 1
  assume i1 0
  %s = add i4 %r, 1
  ret i4 %s
}
"#,
            &GuardDce::new(PipelineMode::Fixed),
        );
        let f = after.function("f").unwrap();
        assert_eq!(f.placed_inst_count(), 0, "{}", function_to_string(f));
        assert!(matches!(
            f.block(frost_ir::BlockId::ENTRY).term,
            Terminator::Unreachable
        ));
        refines(&before, &after);
    }

    #[test]
    fn guard_dce_deletes_assume_true() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  assume i1 1
  %r = add i4 %x, 1
  ret i4 %r
}
"#,
            &GuardDce::new(PipelineMode::Fixed),
        );
        let f = after.function("f").unwrap();
        assert_eq!(f.placed_inst_count(), 1, "{}", function_to_string(f));
        refines(&before, &after);
    }

    #[test]
    fn guard_dce_leaves_assume_undef_alone() {
        // undef may choose true, so the source is not necessarily UB —
        // folding to unreachable would manufacture UB on a defined
        // execution.
        let (_, after) = run(
            "define i4 @f() {\nentry:\n  assume i1 undef\n  ret i4 3\n}",
            &GuardDce::new(PipelineMode::Fixed),
        );
        let f = after.function("f").unwrap();
        assert_eq!(f.placed_inst_count(), 1, "{}", function_to_string(f));
    }

    #[test]
    fn guard_dce_deletes_unreachable_guarded_stores() {
        let (before, after) = run(
            r#"
define i4 @f(i1 %c, i4* %p) {
entry:
  br i1 %c, label %doomed, label %ok
doomed:
  store i4 7, i4* %p
  unreachable
ok:
  ret i4 3
}
"#,
            &GuardDce::new(PipelineMode::Fixed),
        );
        let f = after.function("f").unwrap();
        assert_eq!(
            f.placed_inst_count(),
            0,
            "even the store goes — every execution reaching it is doomed: {}",
            function_to_string(f)
        );
        refines(&before, &after);
    }

    /// The freeze here is load-bearing: `or` of a *concrete* bit with
    /// `1` is `1`, so the source passes the guard on every input,
    /// poison included. Forwarding the freeze rebuilds the fact from
    /// the raw value — `or poison, 1` is poison — and the guard turns
    /// that into immediate UB on an execution the source defined.
    const LAUNDERED_FACT: &str = r#"
define i4 @f(i1 %c) {
entry:
  %f = freeze i1 %c
  %t = or i1 %f, 1
  assume i1 %t
  ret i4 1
}
"#;

    #[test]
    fn legacy_guard_dce_unlaunders_facts_and_miscompiles() {
        let (before, after) = run(LAUNDERED_FACT, &GuardDce::new(PipelineMode::Legacy));
        let text = function_to_string(after.function("f").unwrap());
        assert!(
            text.contains("or i1 %c, 1"),
            "legacy forwards the fact-only freeze: {text}"
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(
            r.counterexample().is_some(),
            "c=poison: source returns 1, target is UB"
        );
    }

    #[test]
    fn fixed_guard_dce_keeps_laundering_freezes() {
        let (before, after) = run(LAUNDERED_FACT, &GuardDce::new(PipelineMode::Fixed));
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 3);
        refines(&before, &after);
    }
}
