//! Loop unswitching (§3.3, §5.1): hoisting a loop-invariant conditional
//! branch out of a loop by duplicating the loop body.
//!
//! ```text
//! while (c) { if (c2) foo else bar }
//!   ──▶
//! if (c2') { while (c) foo } else { while (c) bar }
//! ```
//!
//! The hoisted branch executes even when the loop body never would —
//! so if `c2` may be poison, the transformed program branches on poison
//! where the original did not. Under the paper's semantics
//! (branch-on-poison = UB) the *legacy* form (`c2' = c2`) is unsound;
//! the *fixed* form freezes the condition (`c2' = freeze c2`, §5.1),
//! turning the new branch into a non-deterministic but defined choice.

use frost_ir::loops::{Loop, LoopInfo};
use frost_ir::{
    Function, FunctionAnalysisManager, Inst, InstId, LoopInfoAnalysis, PreservedAnalyses,
    Terminator, Ty, Value,
};

use crate::pass::{Pass, PipelineMode};
use crate::util::clone_region;

/// The loop-unswitching pass.
#[derive(Debug)]
pub struct LoopUnswitch {
    mode: PipelineMode,
}

impl LoopUnswitch {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> LoopUnswitch {
        LoopUnswitch { mode }
    }
}

impl Pass for LoopUnswitch {
    fn name(&self) -> &'static str {
        "loop-unswitch"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        // One unswitch per invocation (the pipeline loops to fixpoint);
        // the CFG surgery invalidates everything anyway.
        let li = fam.get::<LoopInfoAnalysis>(func);
        if unswitch_one(func, &li, self.mode) {
            PreservedAnalyses::none()
        } else {
            PreservedAnalyses::all()
        }
    }
}

fn unswitch_one(func: &mut Function, li: &LoopInfo, mode: PipelineMode) -> bool {
    for lp in &li.loops {
        let Some(preheader) = lp.preheader(func) else {
            continue;
        };
        // Find an invariant conditional branch strictly inside the loop
        // whose successors stay in the loop (a guard like `if (c2)`
        // inside the body, not the loop's exit test).
        let mut candidate = None;
        for &bb in &lp.blocks {
            let Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } = &func.block(bb).term
            else {
                continue;
            };
            if !lp.contains(*then_bb) || !lp.contains(*else_bb) || then_bb == else_bb {
                continue;
            }
            if cond.as_const().is_some() {
                continue; // constant conditions are SimplifyCFG's job
            }
            if !frost_ir::analysis::scev::is_loop_invariant(func, lp, cond) {
                continue;
            }
            candidate = Some((bb, cond.clone(), *then_bb, *else_bb));
            break;
        }
        let Some((branch_bb, cond, then_bb, else_bb)) = candidate else {
            continue;
        };

        // Every loop-defined value used outside must flow through exit
        // block phis (LCSSA-like); otherwise cloning breaks dominance.
        if !loop_values_escape_only_via_exit_phis(func, lp) {
            continue;
        }

        // Clone the loop.
        let region = clone_region(func, &lp.blocks, ".us");
        // Original copy: take the branch always-true; clone: always-false.
        func.block_mut(branch_bb).term = Terminator::Jmp(then_bb);
        let branch_clone = region.block_map[&branch_bb];
        let else_clone = region.block_map[&else_bb];
        func.block_mut(branch_clone).term = Terminator::Jmp(else_clone);

        // The preheader now dispatches on the (possibly frozen) condition.
        let dispatch_cond = if mode.uses_freeze() {
            let freeze = func.add_inst(Inst::Freeze {
                ty: Ty::i1(),
                val: cond,
            });
            func.block_mut(preheader).insts.push(freeze);
            Value::Inst(freeze)
        } else {
            cond
        };
        let header_clone = region.block_map[&lp.header];
        func.block_mut(preheader).term = Terminator::Br {
            cond: dispatch_cond,
            then_bb: lp.header,
            else_bb: header_clone,
        };

        // Exit-block phis: duplicate incoming entries for the cloned
        // exiting edges.
        for exit in lp.exit_blocks(func) {
            let ids: Vec<InstId> = func.block(exit).insts.clone();
            for id in ids {
                if let Inst::Phi { incoming, .. } = func.inst(id).clone() {
                    let mut additions = Vec::new();
                    for (v, from) in &incoming {
                        if let Some(clone_bb) = region.block_map.get(from) {
                            let new_v = match v {
                                Value::Inst(vid) => match region.inst_map.get(vid) {
                                    Some(nv) => Value::Inst(*nv),
                                    None => v.clone(),
                                },
                                other => other.clone(),
                            };
                            additions.push((new_v, *clone_bb));
                        }
                    }
                    if let Inst::Phi { incoming, .. } = func.inst_mut(id) {
                        incoming.extend(additions);
                    }
                }
            }
        }
        return true;
    }
    false
}

/// Returns `true` if every use of a loop-defined value outside the loop
/// is a phi in an exit block.
fn loop_values_escape_only_via_exit_phis(func: &Function, lp: &Loop) -> bool {
    let exits = lp.exit_blocks(func);
    for bb in func.block_ids() {
        if lp.contains(bb) {
            continue;
        }
        for &id in &func.block(bb).insts {
            let inst = func.inst(id);
            let is_exit_phi = exits.contains(&bb) && matches!(inst, Inst::Phi { .. });
            let mut uses_loop_def = false;
            inst.for_each_operand(|v| {
                if let Value::Inst(def) = v {
                    if func.block_of(*def).is_some_and(|b| lp.contains(b)) {
                        uses_loop_def = true;
                    }
                }
            });
            if uses_loop_def && !is_exit_phi {
                return false;
            }
        }
        let mut term_uses = false;
        func.block(bb).term.for_each_operand(|v| {
            if let Value::Inst(def) = v {
                if func.block_of(*def).is_some_and(|b| lp.contains(b)) {
                    term_uses = true;
                }
            }
        });
        if term_uses {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    /// §3.3's loop: while (c) { if (c2) foo() else bar() }.
    const UNSWITCHABLE: &str = r#"
declare void @foo()
declare void @bar()
define void @f(i1 %c, i1 %c2) {
entry:
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cont, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @foo()
  br label %latch
e:
  call void @bar()
  br label %latch
latch:
  br label %head
exit:
  ret void
}
"#;

    fn run(src: &str, mode: PipelineMode) -> (Module, Module, bool) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        let mut changed = false;
        for f in &mut after.functions {
            changed |= LoopUnswitch::new(mode).apply(f);
            f.compact();
        }
        (before, after, changed)
    }

    #[test]
    fn unswitches_and_verifies() {
        let (_, after, changed) = run(UNSWITCHABLE, PipelineMode::Fixed);
        assert!(changed);
        let f = after.function("f").unwrap();
        assert!(
            frost_ir::verify::verify_function(f).is_ok(),
            "post-unswitch IR verifies:\n{}",
            function_to_string(f)
        );
        let text = function_to_string(f);
        assert!(text.contains("freeze i1 %c2"), "fixed mode freezes: {text}");
        assert!(text.contains(".us"), "loop is duplicated: {text}");
    }

    #[test]
    fn fixed_unswitching_refines_under_proposed() {
        let (before, after, _) = run(UNSWITCHABLE, PipelineMode::Fixed);
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn legacy_unswitching_is_unsound_under_proposed() {
        // Without freeze, a poison c2 now reaches a branch even when the
        // loop would never run: UB introduced (§3.3 / PR27506).
        let (before, after, changed) = run(UNSWITCHABLE, PipelineMode::Legacy);
        assert!(changed);
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        let ce = r
            .counterexample()
            .expect("legacy unswitching branches on poison");
        assert!(ce.tgt_outcomes.may_ub());
        assert!(!ce.src_outcomes.may_ub());
    }

    #[test]
    fn legacy_unswitching_is_fine_under_unswitch_semantics() {
        // The same transform under branch-on-poison = nondet is sound:
        // precisely the interpretation loop unswitching assumed.
        let (before, after, _) = run(UNSWITCHABLE, PipelineMode::Legacy);
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_unswitch()),
        )
        .assert_refines();
    }

    #[test]
    fn loop_carried_values_survive_unswitching() {
        // A loop computing a value used after the loop, through an exit
        // phi.
        let src = r#"
define i4 @f(i1 %c2, i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i2, %latch ]
  %cc = icmp ult i4 %i, %n
  br i1 %cc, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  br label %latch
e:
  br label %latch
latch:
  %step = phi i4 [ 1, %t ], [ 2, %e ]
  %i2 = add nuw i4 %i, %step
  br label %head
exit:
  %r = phi i4 [ %i, %head ]
  ret i4 %r
}
"#;
        let (before, after, changed) = run(src, PipelineMode::Fixed);
        assert!(changed);
        let f = after.function("f").unwrap();
        assert!(
            frost_ir::verify::verify_function(f).is_ok(),
            "{}",
            function_to_string(f)
        );
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn does_not_unswitch_variant_conditions() {
        let src = r#"
declare void @foo()
define void @f(i1 %c, i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i2, %latch ]
  %cc = icmp ult i4 %i, %n
  br i1 %cc, label %body, label %exit
body:
  %odd = trunc i4 %i to i1
  br i1 %odd, label %t, label %latch
t:
  call void @foo()
  br label %latch
latch:
  %i2 = add i4 %i, 1
  br label %head
exit:
  ret void
}
"#;
        let (_, _, changed) = run(src, PipelineMode::Fixed);
        assert!(!changed, "branch condition depends on the IV");
    }
}
