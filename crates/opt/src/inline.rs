//! Function inlining, with the paper's §6 cost-model tweak: `freeze`
//! instructions count as zero cost, so introducing freezes does not
//! perturb inlining decisions.

use std::collections::HashMap;

use frost_ir::{
    BlockId, Function, Inst, InstId, Module, ModuleAnalysisManager, PreservedAnalyses, Terminator,
    Value,
};

use crate::pass::{Pass, PipelineMode};

/// The inliner.
#[derive(Debug)]
pub struct Inliner {
    mode: PipelineMode,
    /// Inline callees whose cost is at most this.
    pub threshold: usize,
}

impl Inliner {
    /// Creates the inliner with the default threshold.
    pub fn new(mode: PipelineMode) -> Inliner {
        Inliner {
            mode,
            threshold: 25,
        }
    }

    /// Overrides the inlining threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Inliner {
        self.threshold = threshold;
        self
    }

    /// The §6 cost model: every instruction costs 1, except `freeze`,
    /// which the fixed pipeline counts as free ("we changed the inliner
    /// to recognize freeze instructions as zero cost").
    pub fn cost(&self, func: &Function) -> usize {
        func.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|&&id| !(self.mode.freeze_aware() && func.inst(id).is_freeze()))
            .count()
    }
}

impl Pass for Inliner {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run_on_module(
        &self,
        module: &mut Module,
        mam: &mut ModuleAnalysisManager,
    ) -> PreservedAnalyses {
        let mut changed = false;
        // Snapshot callee bodies up front; self-recursion is skipped.
        let callees: HashMap<String, Function> = module
            .functions
            .iter()
            .filter(|f| self.cost(f) <= self.threshold && f.blocks.len() <= 8)
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        for f in &mut module.functions {
            while let Some((bb, pos, callee)) = find_inlinable_call(f, &callees) {
                inline_call(f, bb, pos, &callees[&callee]);
                changed = true;
            }
            f.compact();
        }
        if changed {
            // Inlining splices blocks and `compact` renumbers ids in
            // every function it touched: drop all cached analyses.
            mam.invalidate_all();
            PreservedAnalyses::none()
        } else {
            PreservedAnalyses::all()
        }
    }
}

fn find_inlinable_call(
    func: &Function,
    callees: &HashMap<String, Function>,
) -> Option<(BlockId, usize, String)> {
    for bb in func.block_ids() {
        for (pos, &id) in func.block(bb).insts.iter().enumerate() {
            if let Inst::Call { callee, .. } = func.inst(id) {
                if callee != &func.name && callees.contains_key(callee) {
                    return Some((bb, pos, callee.clone()));
                }
            }
        }
    }
    None
}

/// Splices `callee`'s body in place of the call at `(bb, pos)`.
fn inline_call(func: &mut Function, bb: BlockId, pos: usize, callee: &Function) {
    let call_id = func.block(bb).insts[pos];
    let Inst::Call { args, ret_ty, .. } = func.inst(call_id).clone() else {
        unreachable!("find_inlinable_call returned a call")
    };

    // Split the caller block: everything after the call moves to a
    // continuation block.
    let tail: Vec<InstId> = func.block_mut(bb).insts.split_off(pos + 1);
    func.block_mut(bb).insts.pop(); // drop the call from the block
    let cont = func.add_block(format!("{}.inl.cont", func.block(bb).name));
    func.block_mut(cont).insts = tail;
    let old_term = std::mem::replace(&mut func.block_mut(bb).term, Terminator::Unreachable);
    for succ in old_term.successors() {
        crate::util::retarget_phi_edge(func, succ, bb, cont);
    }
    func.block_mut(cont).term = old_term;

    // Clone the callee's blocks into the caller.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for cb in callee.block_ids() {
        let nb = func.add_block(format!("{}.inl.{}", callee.name, callee.block(cb).name));
        block_map.insert(cb, nb);
    }
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    // Returns become jumps to the continuation; returned values feed a
    // phi there.
    let mut ret_phis: Vec<(Value, BlockId)> = Vec::new();

    for cb in callee.block_ids() {
        let nb = block_map[&cb];
        for &cid in &callee.block(cb).insts {
            let inst = callee.inst(cid).clone();
            let nid = func.add_inst(inst);
            inst_map.insert(cid, nid);
            func.block_mut(nb).insts.push(nid);
        }
    }
    // Remap operands: callee args -> call args; callee insts -> clones.
    let remap = |v: &mut Value, inst_map: &HashMap<InstId, InstId>, args: &[Value]| match v {
        Value::Inst(id) => {
            *id = inst_map[id];
        }
        Value::Arg(i) => {
            *v = args[*i as usize].clone();
        }
        Value::Const(_) => {}
    };
    for cb in callee.block_ids() {
        let nb = block_map[&cb];
        let ids: Vec<InstId> = func.block(nb).insts.clone();
        for id in ids {
            let inst = func.inst_mut(id);
            inst.for_each_operand_mut(|v| remap(v, &inst_map, &args));
            if let Inst::Phi { incoming, .. } = inst {
                for (_, from) in incoming.iter_mut() {
                    *from = block_map[from];
                }
            }
        }
        let mut term = callee.block(cb).term.clone();
        term.for_each_operand_mut(|v| remap(v, &inst_map, &args));
        term.map_successors(|s| block_map[&s]);
        match term {
            Terminator::Ret(v) => {
                if let Some(v) = v {
                    ret_phis.push((v, nb));
                }
                func.block_mut(nb).term = Terminator::Jmp(cont);
            }
            other => func.block_mut(nb).term = other,
        }
    }

    // Jump into the inlined entry.
    func.block_mut(bb).term = Terminator::Jmp(block_map[&BlockId::ENTRY]);

    // The call's value becomes a phi over the returned values.
    if ret_ty.is_void() || ret_phis.is_empty() {
        // No value: the call id must disappear from use sites (void
        // calls have none).
    } else if ret_phis.len() == 1 && !returns_need_phi(func, cont) {
        let v = ret_phis[0].0.clone();
        func.replace_all_uses(call_id, &v);
    } else {
        *func.inst_mut(call_id) = Inst::Phi {
            ty: ret_ty,
            incoming: ret_phis,
        };
        func.block_mut(cont).insts.insert(0, call_id);
        return;
    }
    let _ = call_id;
}

fn returns_need_phi(_func: &Function, _cont: BlockId) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module};
    use frost_refine::{check_refinement, CheckOptions};

    #[test]
    fn inlines_straight_line_callee() {
        let src = r#"
define i4 @double(i4 %x) {
entry:
  %r = add i4 %x, %x
  ret i4 %r
}
define i4 @f(i4 %x) {
entry:
  %r = call i4 @double(i4 %x)
  %s = add i4 %r, 1
  ret i4 %s
}
"#;
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        assert!(Inliner::new(PipelineMode::Fixed).apply_to_module(&mut after));
        let f = after.function("f").unwrap();
        let text = function_to_string(f);
        assert!(!text.contains("call"), "{text}");
        assert!(frost_ir::verify::verify_function(f).is_ok(), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn inlines_branching_callee_with_return_phi() {
        let src = r#"
define i4 @clamp(i4 %x) {
entry:
  %c = icmp sgt i4 %x, 3
  br i1 %c, label %hi, label %lo
hi:
  ret i4 3
lo:
  ret i4 %x
}
define i4 @f(i4 %x) {
entry:
  %r = call i4 @clamp(i4 %x)
  ret i4 %r
}
"#;
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        assert!(Inliner::new(PipelineMode::Fixed).apply_to_module(&mut after));
        let f = after.function("f").unwrap();
        let text = function_to_string(f);
        assert!(text.contains("phi i4"), "{text}");
        assert!(frost_ir::verify::verify_function(f).is_ok(), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn threshold_blocks_large_callees() {
        let src = r#"
define i4 @big(i4 %x) {
entry:
  %a = add i4 %x, 1
  %b = add i4 %a, 1
  %c = add i4 %b, 1
  ret i4 %c
}
define i4 @f(i4 %x) {
entry:
  %r = call i4 @big(i4 %x)
  ret i4 %r
}
"#;
        let mut m = parse_module(src).unwrap();
        let inliner = Inliner::new(PipelineMode::Fixed).with_threshold(2);
        assert!(!inliner.apply_to_module(&mut m));
    }

    #[test]
    fn freeze_is_free_in_fixed_mode_cost() {
        let src = r#"
define i4 @cheap(i4 %x) {
entry:
  %a = freeze i4 %x
  %b = freeze i4 %a
  %c = add i4 %b, 1
  ret i4 %c
}
"#;
        let m = parse_module(src).unwrap();
        let fixed = Inliner::new(PipelineMode::Fixed);
        let blind = Inliner::new(PipelineMode::FixedFreezeBlind);
        assert_eq!(
            fixed.cost(m.function("cheap").unwrap()),
            1,
            "freezes are free (§6)"
        );
        assert_eq!(blind.cost(m.function("cheap").unwrap()), 3);
    }

    #[test]
    fn recursion_is_not_inlined() {
        let src = r#"
define i4 @r(i4 %x) {
entry:
  %v = call i4 @r(i4 %x)
  ret i4 %v
}
"#;
        let mut m = parse_module(src).unwrap();
        assert!(!Inliner::new(PipelineMode::Fixed).apply_to_module(&mut m));
    }

    #[test]
    fn inlining_into_a_loop_stays_valid() {
        let src = r#"
define i4 @inc(i4 %x) {
entry:
  %r = add nsw i4 %x, 1
  ret i4 %r
}
define i4 @f(i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i2, %head ]
  %i2 = call i4 @inc(i4 %i)
  %c = icmp slt i4 %i2, %n
  br i1 %c, label %head, label %exit
exit:
  ret i4 %i2
}
"#;
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        assert!(Inliner::new(PipelineMode::Fixed).apply_to_module(&mut after));
        let f = after.function("f").unwrap();
        assert!(
            frost_ir::verify::verify_function(f).is_ok(),
            "{}",
            function_to_string(f)
        );
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }
}
