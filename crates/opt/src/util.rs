//! Shared utilities for passes: poison-freedom proofs, instruction
//! erasure, CFG edits that keep phis consistent, and region cloning.

use std::collections::HashMap;

use frost_ir::{BinOp, BlockId, Constant, Function, Inst, InstId, Terminator, Value};

/// Returns `true` if `v` is guaranteed not to be poison (nor undef),
/// whatever the function's inputs — the side condition for folding
/// `freeze %v` to `%v` (§6's InstCombine freeze optimizations) and for
/// speculating UB-capable instructions (§5.6).
///
/// Conservative: arguments and loads may always be poison.
pub fn guaranteed_not_poison(func: &Function, v: &Value, depth: u32) -> bool {
    match v {
        Value::Const(c) => !c.contains_poison() && !c.contains_undef(),
        Value::Arg(_) => false,
        Value::Inst(id) => {
            if depth == 0 {
                return false;
            }
            match func.inst(*id) {
                Inst::Freeze { .. } => true,
                Inst::Bin {
                    op,
                    flags,
                    lhs,
                    rhs,
                    ..
                } => {
                    // Without poison-producing attributes, a binop is
                    // poison only if an operand is. Shifts can produce
                    // poison from defined operands (shift past width);
                    // require a constant in-range amount.
                    let shift_ok = match op {
                        BinOp::Shl | BinOp::LShr | BinOp::AShr => match rhs.as_int_const() {
                            Some(amt) => {
                                let bits = func.value_ty(lhs).scalar_ty().int_bits().unwrap_or(0);
                                amt < u128::from(bits)
                            }
                            None => false,
                        },
                        _ => true,
                    };
                    flags.is_none()
                        && shift_ok
                        && guaranteed_not_poison(func, lhs, depth - 1)
                        && guaranteed_not_poison(func, rhs, depth - 1)
                }
                Inst::Icmp { lhs, rhs, .. } => {
                    guaranteed_not_poison(func, lhs, depth - 1)
                        && guaranteed_not_poison(func, rhs, depth - 1)
                }
                Inst::Cast { val, .. } | Inst::Bitcast { val, .. } => {
                    guaranteed_not_poison(func, val, depth - 1)
                }
                Inst::Select {
                    cond, tval, fval, ..
                } => {
                    guaranteed_not_poison(func, cond, depth - 1)
                        && guaranteed_not_poison(func, tval, depth - 1)
                        && guaranteed_not_poison(func, fval, depth - 1)
                }
                _ => false,
            }
        }
    }
}

/// Removes `id` from whatever block holds it (the arena slot lingers
/// until [`Function::compact`]). Returns `true` if it was placed.
pub fn erase_inst(func: &mut Function, id: InstId) -> bool {
    for bb in 0..func.blocks.len() {
        let block = &mut func.blocks[bb];
        if let Some(pos) = block.insts.iter().position(|&i| i == id) {
            block.insts.remove(pos);
            return true;
        }
    }
    false
}

/// Replaces every use of `id` with `v` and erases `id`.
pub fn replace_and_erase(func: &mut Function, id: InstId, v: &Value) {
    func.replace_all_uses(id, v);
    erase_inst(func, id);
}

/// Removes the incoming entries for predecessor `pred` from every phi
/// of `bb` (call after deleting the edge `pred -> bb`).
pub fn remove_phi_edge(func: &mut Function, bb: BlockId, pred: BlockId) {
    let ids: Vec<InstId> = func.block(bb).insts.clone();
    for id in ids {
        if let Inst::Phi { incoming, .. } = func.inst_mut(id) {
            incoming.retain(|(_, from)| *from != pred);
        }
    }
}

/// Rewrites phi incoming-block references `old_pred -> new_pred` in
/// `bb` (call after redirecting an edge).
pub fn retarget_phi_edge(func: &mut Function, bb: BlockId, old_pred: BlockId, new_pred: BlockId) {
    let ids: Vec<InstId> = func.block(bb).insts.clone();
    for id in ids {
        if let Inst::Phi { incoming, .. } = func.inst_mut(id) {
            for (_, from) in incoming.iter_mut() {
                if *from == old_pred {
                    *from = new_pred;
                }
            }
        }
    }
}

/// Replaces single-entry phis by their value and erases them. Returns
/// `true` on change. (Runs after CFG simplifications.)
pub fn simplify_single_entry_phis(func: &mut Function) -> bool {
    let mut changed = false;
    for bb in 0..func.blocks.len() {
        let ids: Vec<InstId> = func.blocks[bb].insts.clone();
        for id in ids {
            if let Inst::Phi { incoming, .. } = func.inst(id) {
                if incoming.len() == 1 {
                    let v = incoming[0].0.clone();
                    replace_and_erase(func, id, &v);
                    changed = true;
                }
            }
        }
    }
    changed
}

/// Clones a set of blocks (a loop body, an inlinee) into fresh blocks
/// of `func`, remapping internal value and block references. Values
/// defined outside `blocks` are left untouched.
///
/// Returns the block map and the instruction map.
pub struct ClonedRegion {
    /// Original block -> cloned block.
    pub block_map: HashMap<BlockId, BlockId>,
    /// Original instruction -> cloned instruction.
    pub inst_map: HashMap<InstId, InstId>,
}

/// Performs the cloning described on [`ClonedRegion`]. `suffix` is
/// appended to cloned block names.
pub fn clone_region(func: &mut Function, blocks: &[BlockId], suffix: &str) -> ClonedRegion {
    let mut block_map = HashMap::new();
    for &bb in blocks {
        let name = format!("{}{}", func.block(bb).name, suffix);
        let new_bb = func.add_block(name);
        block_map.insert(bb, new_bb);
    }
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    // First pass: allocate clones (operands fixed afterwards, since
    // loops make forward references possible).
    for &bb in blocks {
        let ids: Vec<InstId> = func.block(bb).insts.clone();
        for id in ids {
            let inst = func.inst(id).clone();
            let new_id = func.add_inst(inst);
            inst_map.insert(id, new_id);
            let new_bb = block_map[&bb];
            func.block_mut(new_bb).insts.push(new_id);
        }
    }
    // Second pass: remap operands, phi edges, and terminators.
    let remap_val = |v: &mut Value, inst_map: &HashMap<InstId, InstId>| {
        if let Value::Inst(id) = v {
            if let Some(new_id) = inst_map.get(id) {
                *id = *new_id;
            }
        }
    };
    for &bb in blocks {
        let new_bb = block_map[&bb];
        let ids: Vec<InstId> = func.block(new_bb).insts.clone();
        for id in ids {
            let inst = func.inst_mut(id);
            inst.for_each_operand_mut(|v| remap_val(v, &inst_map));
            if let Inst::Phi { incoming, .. } = inst {
                for (_, from) in incoming.iter_mut() {
                    if let Some(nb) = block_map.get(from) {
                        *from = *nb;
                    }
                }
            }
        }
        let mut term = func.block(bb).term.clone();
        term.for_each_operand_mut(|v| remap_val(v, &inst_map));
        term.map_successors(|s| block_map.get(&s).copied().unwrap_or(s));
        func.block_mut(new_bb).term = term;
    }
    ClonedRegion {
        block_map,
        inst_map,
    }
}

/// Folds `br` on a constant condition into an unconditional branch,
/// fixing up the dropped edge's phis. Returns `true` on change.
pub fn fold_constant_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        let Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } = &func.block(bb).term
        else {
            continue;
        };
        let (then_bb, else_bb) = (*then_bb, *else_bb);
        if then_bb == else_bb {
            func.block_mut(bb).term = Terminator::Jmp(then_bb);
            changed = true;
            continue;
        }
        let Some(c) = cond.as_const().and_then(Constant::as_int) else {
            continue;
        };
        let (taken, dropped) = if c == 1 {
            (then_bb, else_bb)
        } else {
            (else_bb, then_bb)
        };
        func.block_mut(bb).term = Terminator::Jmp(taken);
        remove_phi_edge(func, dropped, bb);
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::{Cond, Flags, FunctionBuilder, Ty};

    #[test]
    fn guaranteed_not_poison_basics() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let fr = b.freeze(b.arg(0));
        let plain = b.add(fr.clone(), b.const_int(8, 1));
        let flagged = b.add_flags(Flags::NSW, fr.clone(), b.const_int(8, 1));
        let shifted = b.shl(fr.clone(), b.const_int(8, 3));
        let shifted_bad = b.shl(fr.clone(), b.arg(0));
        b.ret(plain.clone());
        let f = b.finish();
        assert!(guaranteed_not_poison(&f, &fr, 8));
        assert!(guaranteed_not_poison(&f, &plain, 8));
        assert!(
            !guaranteed_not_poison(&f, &flagged, 8),
            "nsw can produce poison"
        );
        assert!(guaranteed_not_poison(&f, &shifted, 8));
        assert!(
            !guaranteed_not_poison(&f, &shifted_bad, 8),
            "variable shift amount"
        );
        assert!(!guaranteed_not_poison(&f, &Value::Arg(0), 8));
        assert!(guaranteed_not_poison(&f, &Value::int(8, 3), 8));
        assert!(!guaranteed_not_poison(&f, &Value::poison(Ty::i8()), 8));
    }

    #[test]
    fn erase_and_replace() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let a = b.add(b.arg(0), b.const_int(8, 0));
        b.ret(a.clone());
        let mut f = b.finish();
        let id = a.as_inst().unwrap();
        replace_and_erase(&mut f, id, &Value::Arg(0));
        assert_eq!(f.placed_inst_count(), 0);
        match &f.block(BlockId::ENTRY).term {
            Terminator::Ret(Some(Value::Arg(0))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fold_constant_branch_updates_phis() {
        let mut b = FunctionBuilder::new("f", &[], Ty::i8());
        let t = b.block("t");
        let e = b.block("e");
        let j = b.block("j");
        b.br(frost_ir::builder::bool_const(true), t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let p = b.phi(Ty::i8(), vec![(Value::int(8, 1), t), (Value::int(8, 2), e)]);
        b.ret(p);
        let mut f = b.finish();
        assert!(fold_constant_branches(&mut f));
        // Entry now jumps to t; j's phi still has both entries (edge
        // t->j and e->j unchanged; e is just unreachable).
        assert!(matches!(f.block(BlockId::ENTRY).term, Terminator::Jmp(bb) if bb == t));
    }

    #[test]
    fn clone_region_remaps_internals() {
        let mut b = FunctionBuilder::new("f", &[("n", Ty::i8())], Ty::i8());
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jmp(head);
        b.switch_to(head);
        let i = b.phi(Ty::i8(), vec![(b.const_int(8, 0), BlockId::ENTRY)]);
        let c = b.icmp(Cond::Ult, i.clone(), b.arg(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i.clone(), b.const_int(8, 1));
        b.phi_add_incoming(&i, i1.clone(), body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret(i.clone());
        let mut f = b.finish();

        let region = clone_region(&mut f, &[head, body], ".clone");
        let new_head = region.block_map[&head];
        let new_body = region.block_map[&body];
        // The cloned header's branch goes to the cloned body.
        match &f.block(new_head).term {
            Terminator::Br {
                then_bb, else_bb, ..
            } => {
                assert_eq!(*then_bb, new_body);
                assert_eq!(*else_bb, exit, "exits outside the region are untouched");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The cloned phi's back edge comes from the cloned body and uses
        // the cloned increment.
        let phi_id = f.block(new_head).insts[0];
        let Inst::Phi { incoming, .. } = f.inst(phi_id) else {
            panic!()
        };
        assert!(incoming.iter().any(|(v, from)| {
            *from == new_body && *v == Value::Inst(region.inst_map[&i1.as_inst().unwrap()])
        }));
    }

    #[test]
    fn single_entry_phi_simplification() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::i8())], Ty::i8());
        let next = b.block("next");
        b.jmp(next);
        b.switch_to(next);
        let p = b.phi(Ty::i8(), vec![(b.arg(0), BlockId::ENTRY)]);
        b.ret(p);
        let mut f = b.finish();
        assert!(simplify_single_entry_phis(&mut f));
        assert_eq!(f.placed_inst_count(), 0);
    }
}
