//! Jump threading: forwarding predecessors over a branch whose
//! condition is a phi of constants.
//!
//! §7.2's compile-time outlier ("Shootout nestedloop", +19%) happened
//! because jump threading did not know about `freeze` and stopped
//! firing, causing a different set of downstream optimizations to run.
//! That mechanism is reproduced here: the *fixed* variant looks through
//! `freeze` of a constant phi incoming (sound: `freeze(const) = const`);
//! the *freeze-blind* variant bails out when it sees `freeze`, exactly
//! like the paper's unmodified passes.

use frost_ir::{
    BlockId, Function, FunctionAnalysisManager, Inst, InstId, PreservedAnalyses, Terminator, Value,
};

use crate::pass::{Pass, PipelineMode};
use crate::util::{remove_phi_edge, retarget_phi_edge};

/// The jump-threading pass.
#[derive(Debug)]
pub struct JumpThreading {
    mode: PipelineMode,
}

impl JumpThreading {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> JumpThreading {
        JumpThreading { mode }
    }
}

impl Pass for JumpThreading {
    fn name(&self) -> &'static str {
        "jump-threading"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let mut changed = false;
        // A bounded number of threading rounds.
        for _ in 0..4 {
            if thread_one(func, self.mode) {
                changed = true;
            } else {
                break;
            }
        }
        if changed {
            // Threading redirects edges: CFG surgery.
            PreservedAnalyses::none()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// Finds one threadable edge and redirects it. Pattern:
///
/// ```text
/// B: %p = phi i1 [ true, %P ], ...   ; possibly behind a freeze
///    br i1 %p, %T, %F
/// ```
///
/// The edge `P -> B` is redirected to `T` (`F` for `false`), provided
/// `B` contains only the phi (so skipping it skips no work).
fn thread_one(func: &mut Function, mode: PipelineMode) -> bool {
    for b in func.block_ids().collect::<Vec<_>>() {
        let Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } = func.block(b).term.clone()
        else {
            continue;
        };
        if b == BlockId::ENTRY {
            continue;
        }
        // The condition must be a phi in B (possibly frozen).
        let Some(phi_id) = look_through_freeze(func, &cond, b, mode) else {
            continue;
        };
        // B must contain only the phi (plus, in fixed mode, the freeze).
        let extra_ok = func.block(b).insts.iter().all(|&i| {
            i == phi_id
                || (mode.freeze_aware()
                    && matches!(func.inst(i), Inst::Freeze { val: Value::Inst(v), .. } if *v == phi_id))
        });
        if !extra_ok {
            continue;
        }
        let Inst::Phi { incoming, .. } = func.inst(phi_id).clone() else {
            continue;
        };
        // Find a predecessor contributing a constant.
        for (v, pred) in &incoming {
            let Some(c) = v.as_int_const() else { continue };
            let dest = if c == 1 { then_bb } else { else_bb };
            if dest == b {
                continue;
            }
            // The destination must not have phis referencing B in a way
            // we cannot split; we handle it by *adding* an edge
            // P -> dest: dest's phis need an incoming for P. Their value
            // for the edge from B works only if it is not defined in B —
            // the only def in B is the phi (and freeze); refuse if used.
            let dest_uses_b_defs = func.block(dest).insts.iter().any(|&i| {
                let Inst::Phi { incoming, .. } = func.inst(i) else {
                    return false;
                };
                incoming.iter().any(|(val, from)| {
                    *from == b && matches!(val, Value::Inst(id) if func.block_of(*id) == Some(b))
                })
            });
            if dest_uses_b_defs {
                continue;
            }
            // Redirect P's terminator edge from B to dest.
            let pred = *pred;
            func.block_mut(pred)
                .term
                .map_successors(|s| if s == b { dest } else { s });
            // dest phis: duplicate the value they had for the B edge.
            let dest_phis: Vec<InstId> = func.block(dest).insts.clone();
            for id in dest_phis {
                if let Inst::Phi { incoming, .. } = func.inst_mut(id) {
                    if let Some((val, _)) = incoming.iter().find(|(_, from)| *from == b) {
                        let val = val.clone();
                        incoming.push((val, pred));
                    } else {
                        // dest had no phi entry for B (B wasn't a pred?);
                        // nothing to do.
                    }
                }
            }
            // B loses the P edge.
            remove_phi_edge(func, b, pred);
            // If B's phi became single-entry it is cleaned later by
            // SimplifyCFG; keep the IR valid either way.
            let _ = retarget_phi_edge; // (kept for symmetric API use elsewhere)
            return true;
        }
    }
    false
}

/// Resolves the branch condition to a phi instruction in `bb`, looking
/// through one `freeze` in freeze-aware mode.
fn look_through_freeze(
    func: &Function,
    cond: &Value,
    bb: BlockId,
    mode: PipelineMode,
) -> Option<InstId> {
    let id = cond.as_inst()?;
    if func.block_of(id) != Some(bb) {
        return None;
    }
    match func.inst(id) {
        Inst::Phi { .. } => Some(id),
        Inst::Freeze {
            val: Value::Inst(inner),
            ..
        } if mode.freeze_aware() => {
            // freeze(phi [...const...]) threads only for constant
            // incomings: freeze(true) = true, so skipping the freeze on
            // that edge is sound.
            let inner = *inner;
            if func.block_of(inner) == Some(bb) && matches!(func.inst(inner), Inst::Phi { .. }) {
                Some(inner)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module, bool) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        let mut changed = false;
        for f in &mut after.functions {
            changed |= JumpThreading::new(mode).apply(f);
            crate::util::simplify_single_entry_phis(f);
            f.compact();
        }
        (before, after, changed)
    }

    const PLAIN: &str = r#"
define i4 @f(i1 %c, i4 %x) {
entry:
  br i1 %c, label %pre, label %mid
pre:
  br label %mid
mid:
  %p = phi i1 [ true, %pre ], [ %c, %entry ]
  br i1 %p, label %t, label %e
t:
  ret i4 1
e:
  ret i4 %x
}
"#;

    #[test]
    fn threads_constant_phi_edges() {
        let (before, after, changed) = run(PLAIN, PipelineMode::Fixed);
        assert!(changed);
        // pre now branches straight to t.
        let f = after.function("f").unwrap();
        let pre = f.blocks.iter().position(|b| b.name == "pre").unwrap();
        let t = f.blocks.iter().position(|b| b.name == "t").unwrap() as u32;
        assert!(matches!(f.blocks[pre].term, Terminator::Jmp(BlockId(b)) if b == t));
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
        assert!(frost_ir::verify::verify_function(f).is_ok());
    }

    const FROZEN: &str = r#"
define i4 @f(i1 %c, i4 %x) {
entry:
  br i1 %c, label %pre, label %mid
pre:
  br label %mid
mid:
  %p = phi i1 [ true, %pre ], [ %c, %entry ]
  %fp = freeze i1 %p
  br i1 %fp, label %t, label %e
t:
  ret i4 1
e:
  ret i4 %x
}
"#;

    #[test]
    fn fixed_mode_threads_through_freeze() {
        let (before, after, changed) = run(FROZEN, PipelineMode::Fixed);
        assert!(changed, "freeze-aware threading fires");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn freeze_blind_mode_gives_up() {
        // §7.2's mechanism: the same input, but the pass does not know
        // freeze and does nothing.
        let (_, _, changed) = run(FROZEN, PipelineMode::FixedFreezeBlind);
        assert!(!changed, "freeze-blind threading must not fire");
    }

    #[test]
    fn does_not_thread_when_block_has_real_work() {
        let src = r#"
declare void @eff()
define i4 @f(i1 %c, i4 %x) {
entry:
  br i1 %c, label %pre, label %mid
pre:
  br label %mid
mid:
  %p = phi i1 [ true, %pre ], [ %c, %entry ]
  call void @eff()
  br i1 %p, label %t, label %e
t:
  ret i4 1
e:
  ret i4 %x
}
"#;
        let (_, _, changed) = run(src, PipelineMode::Fixed);
        assert!(
            !changed,
            "side effects in the threaded block must block threading"
        );
    }
}
