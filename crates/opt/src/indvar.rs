//! Induction-variable widening (§2.4, Figure 3).
//!
//! Removes the per-iteration `sext` of a narrow induction variable by
//! rewriting the loop to iterate in the wide type:
//!
//! ```text
//! %i    = phi i32 [0, %ph], [%i1, %body]      %iw  = phi i64 [0, %ph], [%iw1, %body]
//! %c    = icmp sle i32 %i, %n            ─▶   %nw  = sext i32 %n to i64   ; preheader
//! %iext = sext i32 %i to i64                  %c   = icmp sle i64 %iw, %nw
//! %i1   = add nsw i32 %i, 1                   %iw1 = add nsw i64 %iw, 1
//! ```
//!
//! The transformation is justified **only because `nsw` overflow is
//! poison**: on overflow the narrow comparison becomes poison, the
//! branch on it UB, so the compiler may assume it never happens. If
//! overflow instead produced `undef` (§2.4's strawman), `sext(undef)`
//! is bounded by `INT_MAX` and the narrow loop's exit test can differ
//! from the wide one — the refinement checker exhibits exactly the
//! paper's `%n = INT_MAX` counterexample.

use frost_ir::analysis::scev::{find_affine_ivs, header_exit_test, is_loop_invariant};
use frost_ir::{
    CastKind, Function, FunctionAnalysisManager, Inst, InstId, LoopInfoAnalysis, PreservedAnalyses,
    Ty, Value,
};

use crate::pass::{Pass, PipelineMode};

/// The widening pass.
#[derive(Debug)]
pub struct IndVarWiden {
    #[allow(dead_code)]
    mode: PipelineMode,
}

impl IndVarWiden {
    /// Creates the pass. The rewrite is identical in all modes — its
    /// *justification* is semantic (nsw = poison), which the evaluation
    /// probes by checking refinement under different semantics.
    pub fn new(mode: PipelineMode) -> IndVarWiden {
        IndVarWiden { mode }
    }
}

impl Pass for IndVarWiden {
    fn name(&self) -> &'static str {
        "indvar-widen"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let li = fam.get::<LoopInfoAnalysis>(func);
        let mut changed = false;
        for lp in &li.loops {
            changed |= widen_loop(func, lp);
        }
        if changed {
            // Wide IVs replace narrow ones inside existing blocks; no
            // edges move.
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

fn widen_loop(func: &mut Function, lp: &frost_ir::loops::Loop) -> bool {
    let Some(preheader) = lp.preheader(func) else {
        return false;
    };
    let ivs = find_affine_ivs(func, lp);
    let mut changed = false;
    for iv in ivs {
        // Only nsw increments justify widening.
        if !iv.overflow_is_poison() {
            continue;
        }
        let narrow_ty = func.inst(iv.phi).result_ty();
        let Some(narrow_bits) = narrow_ty.int_bits() else {
            continue;
        };
        // Find sexts of this IV inside the loop; their common target
        // type becomes the wide type.
        let mut sexts: Vec<(InstId, Ty)> = Vec::new();
        for &bb in &lp.blocks {
            for &id in &func.block(bb).insts {
                if let Inst::Cast {
                    kind: CastKind::Sext,
                    to_ty,
                    val,
                    ..
                } = func.inst(id)
                {
                    if *val == Value::Inst(iv.phi) {
                        sexts.push((id, to_ty.clone()));
                    }
                }
            }
        }
        let Some((_, wide_ty)) = sexts.first().cloned() else {
            continue;
        };
        if sexts.iter().any(|(_, t)| *t != wide_ty) {
            continue;
        }
        let Some(wide_bits) = wide_ty.int_bits() else {
            continue;
        };
        if wide_bits <= narrow_bits {
            continue;
        }
        // The step must be a constant to widen by constant sext.
        let Some(step_c) = iv.step.as_int_const() else {
            continue;
        };
        let step_signed = frost_ir::value::to_signed(step_c, narrow_bits);
        let wide_step = Value::int(
            wide_bits,
            frost_ir::value::from_signed(step_signed, wide_bits),
        );
        // The exit test must compare the IV against an invariant bound
        // with a *signed* predicate (unsigned tests are not preserved by
        // sext).
        let Some((cmp_id, bound)) = header_exit_test(func, lp) else {
            continue;
        };
        let Inst::Icmp { cond, lhs, rhs, .. } = func.inst(cmp_id).clone() else {
            continue;
        };
        if !matches!(
            cond,
            frost_ir::Cond::Slt | frost_ir::Cond::Sle | frost_ir::Cond::Sgt | frost_ir::Cond::Sge
        ) {
            continue;
        }
        // The comparison must be on this IV.
        let iv_on_lhs = lhs == Value::Inst(iv.phi);
        let iv_on_rhs = rhs == Value::Inst(iv.phi);
        if !iv_on_lhs && !iv_on_rhs {
            continue;
        }
        if !is_loop_invariant(func, lp, &bound) {
            continue;
        }

        // Preheader: widen the start and the bound.
        let wide_start = widen_value(func, preheader, &iv.start, &narrow_ty, &wide_ty);
        let wide_bound = widen_value(func, preheader, &bound, &narrow_ty, &wide_ty);

        // Find the back-edge block of the narrow increment.
        let Some(inc_bb) = func.block_of(iv.step_inst) else {
            continue;
        };
        // Build the wide IV.
        let wide_inc = func.add_inst(Inst::Bin {
            op: frost_ir::BinOp::Add,
            flags: frost_ir::Flags::NSW,
            ty: wide_ty.clone(),
            lhs: Value::Inst(InstId(u32::MAX)), // patched below
            rhs: wide_step,
        });
        let narrow_phi = func.inst(iv.phi).clone();
        let Inst::Phi { incoming, .. } = narrow_phi else {
            continue;
        };
        let wide_incoming: Vec<(Value, frost_ir::BlockId)> = incoming
            .iter()
            .map(|(v, from)| {
                if *v == Value::Inst(iv.step_inst) {
                    (Value::Inst(wide_inc), *from)
                } else {
                    (wide_start.clone(), *from)
                }
            })
            .collect();
        let wide_phi = func.add_inst(Inst::Phi {
            ty: wide_ty.clone(),
            incoming: wide_incoming,
        });
        // Patch the increment's operand.
        if let Inst::Bin { lhs, .. } = func.inst_mut(wide_inc) {
            *lhs = Value::Inst(wide_phi);
        }
        // Place: phi at the head of the header, increment right after
        // the narrow increment.
        func.block_mut(lp.header).insts.insert(0, wide_phi);
        let pos = func
            .block(inc_bb)
            .insts
            .iter()
            .position(|&i| i == iv.step_inst)
            .expect("step placed");
        func.block_mut(inc_bb).insts.insert(pos + 1, wide_inc);

        // Rewrite the exit test to the wide type.
        let (new_lhs, new_rhs) = if iv_on_lhs {
            (Value::Inst(wide_phi), wide_bound)
        } else {
            (wide_bound, Value::Inst(wide_phi))
        };
        *func.inst_mut(cmp_id) = Inst::Icmp {
            cond,
            ty: wide_ty.clone(),
            lhs: new_lhs,
            rhs: new_rhs,
        };

        // Replace the sexts of the IV with the wide IV.
        for (sid, _) in sexts {
            func.replace_all_uses(sid, &Value::Inst(wide_phi));
            crate::util::erase_inst(func, sid);
        }
        // The narrow IV is now often a dead phi/increment cycle that
        // plain DCE cannot remove (they use each other); erase it when
        // nothing else uses either.
        let uses = func.use_counts();
        if uses.count(iv.phi) == 1 && uses.count(iv.step_inst) == 1 {
            crate::util::erase_inst(func, iv.phi);
            crate::util::erase_inst(func, iv.step_inst);
        }
        changed = true;
    }
    changed
}

/// Emits (in `preheader`) a sext of `v` to the wide type, folding
/// constants.
fn widen_value(
    func: &mut Function,
    preheader: frost_ir::BlockId,
    v: &Value,
    narrow_ty: &Ty,
    wide_ty: &Ty,
) -> Value {
    let narrow_bits = narrow_ty.int_bits().expect("int");
    let wide_bits = wide_ty.int_bits().expect("int");
    if let Some(c) = v.as_int_const() {
        let s = frost_ir::value::to_signed(c, narrow_bits);
        return Value::int(wide_bits, frost_ir::value::from_signed(s, wide_bits));
    }
    let id = func.add_inst(Inst::Cast {
        kind: CastKind::Sext,
        from_ty: narrow_ty.clone(),
        to_ty: wide_ty.clone(),
        val: v.clone(),
    });
    func.block_mut(preheader).insts.push(id);
    Value::Inst(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions, CheckResult};

    /// Figure 3 at checkable widths: i3 induction variable, i5
    /// pointers-free variant accumulating into a sum via @use.
    const FIG3: &str = r#"
declare void @use(i5)
define void @f(i3 %n) {
entry:
  br label %head
head:
  %i = phi i3 [ 0, %entry ], [ %i1, %body ]
  %c = icmp sle i3 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i3 %i to i5
  call void @use(i5 %iext)
  %i1 = add nsw i3 %i, 1
  br label %head
exit:
  ret void
}
"#;

    fn run(src: &str) -> (Module, Module, bool) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        let mut changed = false;
        for f in &mut after.functions {
            changed |= IndVarWiden::new(PipelineMode::Fixed).apply(f);
            crate::dce::Dce::new().apply(f);
            f.compact();
        }
        (before, after, changed)
    }

    #[test]
    fn widens_figure3_and_removes_the_sext() {
        let (before, after, changed) = run(FIG3);
        assert!(changed);
        let f = after.function("f").unwrap();
        let text = function_to_string(f);
        assert!(
            !text.contains("sext i3 %i to i5"),
            "loop body sext gone: {text}"
        );
        assert!(text.contains("phi i5"), "wide IV introduced: {text}");
        assert!(text.contains("icmp sle i5"), "exit test widened: {text}");
        assert!(frost_ir::verify::verify_function(f).is_ok(), "{text}");
        // Justified under the proposed semantics (nsw overflow =
        // poison; branch on it = UB).
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn widening_step_is_unjustified_when_overflow_yields_undef() {
        // §2.4's argument, straight-line version: the narrow test
        // `sext(i +nsw 1) <= sext(n)` is always true at n = INT_MAX if
        // overflow yields undef (sext(undef) <= INT_MAX), while the
        // wide test is false — exactly the paper's counterexample.
        let src = r#"
define i1 @f(i3 %i, i3 %n) {
entry:
  %i1 = add nsw i3 %i, 1
  %iext = sext i3 %i1 to i5
  %next = sext i3 %n to i5
  %c = icmp sle i5 %iext, %next
  ret i1 %c
}
"#;
        let tgt = r#"
define i1 @f(i3 %i, i3 %n) {
entry:
  %iw = sext i3 %i to i5
  %i1w = add nsw i5 %iw, 1
  %next = sext i3 %n to i5
  %c = icmp sle i5 %i1w, %next
  ret i1 %c
}
"#;
        let before = parse_module(src).unwrap();
        let after = parse_module(tgt).unwrap();
        // Sound under poison...
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
        // ...but not when overflow yields undef.
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_undef_overflow()),
        );
        match r {
            CheckResult::CounterExample(ce) => {
                // The witness pins i = SMAX (overflow) with the wide
                // result false where the narrow source is always true.
                assert!(ce.args[0] == frost_core::Val::int(3, 0b011));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn non_nsw_ivs_are_left_alone() {
        let src = FIG3.replace("add nsw i3", "add i3");
        let (_, _, changed) = run(&src);
        assert!(!changed, "wrapping IV must not be widened");
    }

    #[test]
    fn unsigned_exit_tests_are_left_alone() {
        let src = FIG3.replace("icmp sle", "icmp ule");
        let (_, _, changed) = run(&src);
        assert!(!changed, "sext does not preserve unsigned comparisons");
    }

    #[test]
    fn variant_bounds_are_left_alone() {
        // Bound computed inside the loop -> not invariant.
        let src = r#"
declare void @use(i5)
define void @f(i3 %n) {
entry:
  br label %head
head:
  %i = phi i3 [ 0, %entry ], [ %i1, %body ]
  %nn = add i3 %n, %i
  %c = icmp sle i3 %i, %nn
  br i1 %c, label %body, label %exit
body:
  %iext = sext i3 %i to i5
  call void @use(i5 %iext)
  %i1 = add nsw i3 %i, 1
  br label %head
exit:
  ret void
}
"#;
        let (_, _, changed) = run(src);
        assert!(!changed);
    }
}
