//! Sparse conditional constant propagation.
//!
//! The lattice is `⊥ < Const < ⊤`, where `Const` includes the `poison`
//! constant (poison propagates through non-trapping arithmetic at
//! compile time). Branches on known conditions make only one successor
//! executable; unreachable code is then folded by SimplifyCFG/DCE.
//!
//! Mode differences: the *fixed* variant turns a branch on a known-
//! poison condition into `unreachable` (branch-on-poison is immediate
//! UB under the proposed semantics); the *legacy* variant folds it to
//! an arbitrary successor (sound under both legacy interpretations,
//! where such a branch is at worst a non-deterministic choice).

use std::collections::VecDeque;

use frost_core::ops::{eval_binop, eval_cast, ScalarResult};
use frost_ir::{
    BlockId, Constant, Function, FunctionAnalysisManager, Inst, InstId, PreservedAnalyses,
    Terminator, Value,
};

use crate::pass::{Pass, PipelineMode};
use crate::util::{erase_inst, remove_phi_edge};

/// The SCCP pass.
#[derive(Debug)]
pub struct Sccp {
    mode: PipelineMode,
}

impl Sccp {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> Sccp {
        Sccp { mode }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Lat {
    Bottom,
    Const(Constant),
    Top,
}

impl Lat {
    fn join(&self, other: &Lat) -> Lat {
        match (self, other) {
            (Lat::Bottom, x) | (x, Lat::Bottom) => x.clone(),
            (Lat::Const(a), Lat::Const(b)) if a == b => Lat::Const(a.clone()),
            _ => Lat::Top,
        }
    }
}

impl Pass for Sccp {
    fn name(&self) -> &'static str {
        "sccp"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let n = func.insts.len();
        let mut values: Vec<Lat> = vec![Lat::Bottom; n];
        let mut executable = vec![false; func.blocks.len()];
        executable[BlockId::ENTRY.index()] = true;

        // Simple round-robin fixpoint (function sizes here do not merit
        // the full sparse worklist).
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        queue.push_back(BlockId::ENTRY);
        let mut iterations = 0usize;
        let max_iterations = 4 * (func.blocks.len() + 1) * (n + 1);
        loop {
            iterations += 1;
            if iterations > max_iterations {
                break;
            }
            let mut changed = false;
            for bb in func.block_ids().collect::<Vec<_>>() {
                if !executable[bb.index()] {
                    continue;
                }
                for &id in &func.block(bb).insts.clone() {
                    let new = eval(func, id, &values, &executable);
                    if new != values[id.index()] {
                        values[id.index()] = new;
                        changed = true;
                    }
                }
                // Propagate executability.
                match &func.block(bb).term {
                    Terminator::Br {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let lat = value_lat(cond, &values);
                        let (t, e) = (*then_bb, *else_bb);
                        let mark = |b: BlockId, ex: &mut Vec<bool>, ch: &mut bool| {
                            if !ex[b.index()] {
                                ex[b.index()] = true;
                                *ch = true;
                            }
                        };
                        match lat {
                            Lat::Const(Constant::Int { value, .. }) => {
                                if value == 1 {
                                    mark(t, &mut executable, &mut changed);
                                } else {
                                    mark(e, &mut executable, &mut changed);
                                }
                            }
                            Lat::Const(c) if c.contains_poison() || c.contains_undef() => {
                                // Branch on deferred UB: no successor is
                                // *required* to run; handled at rewrite.
                            }
                            Lat::Bottom => {}
                            _ => {
                                mark(t, &mut executable, &mut changed);
                                mark(e, &mut executable, &mut changed);
                            }
                        }
                    }
                    Terminator::Jmp(d) if !executable[d.index()] => {
                        executable[d.index()] = true;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        let _ = queue;

        // Rewrite: replace instructions with their constants.
        let mut changed = false;
        let mut cfg_changed = false;
        for bb in func.block_ids().collect::<Vec<_>>() {
            if !executable[bb.index()] {
                continue;
            }
            for id in func.block(bb).insts.clone() {
                if let Lat::Const(c) = &values[id.index()] {
                    if func.inst(id).has_side_effects() {
                        continue;
                    }
                    func.replace_all_uses(id, &Value::Const(c.clone()));
                    erase_inst(func, id);
                    changed = true;
                }
            }
            // Fold branches on known conditions.
            let term = func.block(bb).term.clone();
            if let Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } = term
            {
                match value_lat(&cond, &values) {
                    Lat::Const(Constant::Int { value, .. }) => {
                        let (taken, dropped) = if value == 1 {
                            (then_bb, else_bb)
                        } else {
                            (else_bb, then_bb)
                        };
                        func.block_mut(bb).term = Terminator::Jmp(taken);
                        if taken != dropped {
                            remove_phi_edge(func, dropped, bb);
                        }
                        changed = true;
                        cfg_changed = true;
                    }
                    Lat::Const(c) if c.contains_poison() || c.contains_undef() => {
                        match self.mode {
                            PipelineMode::Fixed | PipelineMode::FixedFreezeBlind => {
                                // Proposed semantics: this is UB.
                                func.block_mut(bb).term = Terminator::Unreachable;
                                remove_phi_edge(func, then_bb, bb);
                                if then_bb != else_bb {
                                    remove_phi_edge(func, else_bb, bb);
                                }
                            }
                            PipelineMode::Legacy => {
                                // At worst a nondeterministic choice:
                                // pick the then edge.
                                func.block_mut(bb).term = Terminator::Jmp(then_bb);
                                if then_bb != else_bb {
                                    remove_phi_edge(func, else_bb, bb);
                                }
                            }
                        }
                        changed = true;
                        cfg_changed = true;
                    }
                    _ => {}
                }
            }
        }
        if cfg_changed {
            PreservedAnalyses::none()
        } else if changed {
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

fn value_lat(v: &Value, values: &[Lat]) -> Lat {
    match v {
        Value::Const(c) => Lat::Const(c.clone()),
        Value::Arg(_) => Lat::Top,
        Value::Inst(id) => values[id.index()].clone(),
    }
}

fn eval(func: &Function, id: InstId, values: &[Lat], executable: &[bool]) -> Lat {
    let inst = func.inst(id);
    match inst {
        Inst::Phi { incoming, .. } => {
            let mut acc = Lat::Bottom;
            for (v, from) in incoming {
                if !executable[from.index()] {
                    continue;
                }
                acc = acc.join(&value_lat(v, values));
            }
            acc
        }
        Inst::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        } => {
            let (l, r) = (value_lat(lhs, values), value_lat(rhs, values));
            let bits = match ty.int_bits() {
                Some(b) => b,
                None => return Lat::Top,
            };
            // Compile-time poison propagation (not for trapping ops).
            if !op.may_have_immediate_ub() {
                for side in [&l, &r] {
                    if let Lat::Const(c) = side {
                        if c.contains_poison() {
                            return Lat::Const(Constant::Poison(ty.clone()));
                        }
                    }
                }
            }
            match (l, r) {
                (
                    Lat::Const(Constant::Int { value: a, .. }),
                    Lat::Const(Constant::Int { value: b, .. }),
                ) => {
                    match eval_binop(*op, *flags, bits, a, b) {
                        ScalarResult::Val(v) => Lat::Const(Constant::int(bits, v)),
                        ScalarResult::Poison => Lat::Const(Constant::Poison(ty.clone())),
                        ScalarResult::Ub => Lat::Top, // keep the trap
                    }
                }
                (Lat::Bottom, _) | (_, Lat::Bottom) => Lat::Bottom,
                _ => Lat::Top,
            }
        }
        Inst::Icmp { cond, ty, lhs, rhs } => {
            let bits = match ty.int_bits() {
                Some(b) => b,
                None => return Lat::Top,
            };
            match (value_lat(lhs, values), value_lat(rhs, values)) {
                (Lat::Const(a), Lat::Const(b)) if a.contains_poison() || b.contains_poison() => {
                    Lat::Const(Constant::Poison(frost_ir::Ty::i1()))
                }
                (
                    Lat::Const(Constant::Int { value: a, .. }),
                    Lat::Const(Constant::Int { value: b, .. }),
                ) => Lat::Const(Constant::bool(cond.eval(bits, a, b))),
                (Lat::Bottom, _) | (_, Lat::Bottom) => Lat::Bottom,
                _ => Lat::Top,
            }
        }
        Inst::Select {
            cond, tval, fval, ..
        } => match value_lat(cond, values) {
            Lat::Const(Constant::Int { value, .. }) => {
                if value == 1 {
                    value_lat(tval, values)
                } else {
                    value_lat(fval, values)
                }
            }
            Lat::Bottom => Lat::Bottom,
            _ => Lat::Top,
        },
        Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        } => {
            let (Some(fb), Some(tb)) = (from_ty.int_bits(), to_ty.int_bits()) else {
                return Lat::Top;
            };
            match value_lat(val, values) {
                Lat::Const(Constant::Int { value, .. }) => {
                    Lat::Const(Constant::int(tb, eval_cast(*kind, fb, tb, value)))
                }
                Lat::Const(c) if c.contains_poison() => Lat::Const(Constant::Poison(to_ty.clone())),
                Lat::Bottom => Lat::Bottom,
                _ => Lat::Top,
            }
        }
        Inst::Freeze { val, .. } => match value_lat(val, values) {
            // freeze of a fully defined constant is that constant.
            Lat::Const(c) if !c.contains_poison() && !c.contains_undef() => Lat::Const(c),
            Lat::Bottom => Lat::Bottom,
            _ => Lat::Top,
        },
        _ => Lat::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        for f in &mut after.functions {
            Sccp::new(mode).apply(f);
            f.compact();
        }
        (before, after)
    }

    #[test]
    fn propagates_constants_through_phis() {
        let (before, after) = run(
            r#"
define i4 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i4 [ 3, %a ], [ 3, %b ]
  %r = add i4 %p, 1
  ret i4 %r
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("ret i4 4"), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn folds_known_branches_and_kills_dead_paths() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %c = icmp eq i4 1, 1
  br i1 %c, label %a, label %b
a:
  ret i4 7
b:
  ret i4 %x
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("br label %a"), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn branch_on_poison_becomes_unreachable_in_fixed_mode() {
        let (before, after) = run(
            r#"
define i4 @f() {
entry:
  %p = add nsw i4 7, 7
  br i1 undef, label %a, label %b
a:
  ret i4 1
b:
  ret i4 2
}
"#,
            PipelineMode::Legacy,
        );
        // Legacy folds to a jump (sound under legacy-unswitch).
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("br label %a"), "{text}");
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_unswitch()),
        );
        r.assert_refines();

        // Fixed mode: poison branch is UB -> unreachable.
        let (before, after) = run(
            r#"
define i4 @f() {
entry:
  %p = add nsw i4 7, 7
  %c = icmp eq i4 %p, 0
  br i1 %c, label %a, label %b
a:
  ret i4 1
b:
  ret i4 2
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("unreachable"), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn poison_propagates_at_compile_time() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %p = add nsw i4 7, 7
  %q = xor i4 %p, %x
  ret i4 %q
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("ret i4 poison"), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn division_traps_are_preserved() {
        let (_, after) = run(
            "define i4 @f() {\nentry:\n  %r = sdiv i4 8, 15\n  ret i4 %r\n}",
            PipelineMode::Fixed,
        );
        // 8 = -8 (i4 INT_MIN), 15 = -1: INT_MIN / -1 is UB, not folded.
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("sdiv"), "{text}");
    }

    #[test]
    fn select_on_known_condition_folds() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %c = icmp ult i4 2, 4
  %r = select i1 %c, i4 %x, i4 0
  ret i4 %r
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("select i1 1, i4 %x, i4 0"), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }
}
