//! Loop-invariant code motion (hoisting).
//!
//! Pure, non-trapping invariant instructions hoist freely. Trapping
//! ones (division) may only be hoisted past control flow with a safety
//! proof, and §3.2/§5.6 is exactly about what that proof must include:
//!
//! * the *legacy* variant hoists `x / k` out of a loop guarded by
//!   `k != 0` — unsound, because with `k = undef` the guard's use of
//!   `k` and the division's use may resolve differently (the PR21412
//!   miscompilation);
//! * the *fixed* variant additionally demands `k` be provably
//!   non-poison/non-undef (e.g. frozen), the "upto" discipline of §5.6.

use frost_ir::dom::DomTree;
use frost_ir::loops::Loop;
use frost_ir::{
    BinOp, BlockId, Cond, DomTreeAnalysis, Function, FunctionAnalysisManager, Inst, InstId,
    LoopInfoAnalysis, PreservedAnalyses, Terminator, Value,
};

use crate::alias::may_alias;
use crate::pass::{Pass, PipelineMode};
use crate::util::guaranteed_not_poison;

/// The hoisting pass.
#[derive(Debug)]
pub struct Licm {
    mode: PipelineMode,
}

impl Licm {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> Licm {
        Licm { mode }
    }
}

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let dt = fam.get::<DomTreeAnalysis>(func);
        let li = fam.get::<LoopInfoAnalysis>(func);
        let mut changed = false;
        for lp in &li.loops {
            changed |= hoist_loop(func, lp, &dt, self.mode);
        }
        if changed {
            // Instructions move between blocks; the block graph is
            // untouched, so CFG-shaped analyses survive.
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

fn is_invariant(func: &Function, lp: &Loop, v: &Value) -> bool {
    frost_ir::analysis::scev::is_loop_invariant(func, lp, v)
}

fn hoist_loop(func: &mut Function, lp: &Loop, dt: &DomTree, mode: PipelineMode) -> bool {
    let Some(preheader) = lp.preheader(func) else {
        return false;
    };
    let mut changed = false;
    // Iterate: hoisting can make more instructions invariant.
    loop {
        let mut hoisted = None;
        'search: for &bb in &lp.blocks {
            for &id in &func.block(bb).insts {
                let inst = func.inst(id);
                if inst.has_side_effects()
                    || matches!(inst, Inst::Phi { .. })
                    || inst.is_freeze() && !mode.freeze_aware()
                {
                    continue;
                }
                // Freeze must not be *duplicated*, but moving it is fine;
                // still, hoisting a freeze out of a loop changes nothing
                // (one execution either way on entry paths) — allow it
                // only when it is invariant like anything else.
                let mut invariant = true;
                inst.for_each_operand(|v| invariant &= is_invariant(func, lp, v));
                if !invariant {
                    continue;
                }
                if inst.may_have_immediate_ub() {
                    let safe = match inst {
                        Inst::Load { .. } => load_hoist_is_safe(func, lp, id, mode),
                        _ => division_hoist_is_safe(func, lp, dt, preheader, id, mode),
                    };
                    if !safe {
                        continue;
                    }
                } else if inst.is_freeze() {
                    // Hoisting freeze is sound (not a duplication), but
                    // skip: it lengthens entry paths for no gain and the
                    // sink pass is its dual.
                    continue;
                }
                hoisted = Some((bb, id));
                break 'search;
            }
        }
        let Some((bb, id)) = hoisted else {
            return changed;
        };
        // Move the instruction to the preheader (before its terminator).
        let pos = func
            .block(bb)
            .insts
            .iter()
            .position(|&i| i == id)
            .expect("placed");
        func.block_mut(bb).insts.remove(pos);
        func.block_mut(preheader).insts.push(id);
        changed = true;
    }
}

/// Is hoisting this loop-invariant load to the preheader safe?
///
/// Two obligations (§5's block-based model makes both checkable):
///
/// 1. **Dereferenceability** — the preheader executes even when the
///    body does not, so the speculated load must be unable to fault.
///    We require the pointer to be the direct result of an `alloca`
///    whose block is at least as large as the loaded type: such a load
///    is in bounds by construction (a load of uninitialized bytes
///    merely yields poison, which is harmless if unused).
/// 2. **Content invariance** — no store inside the loop may alias the
///    block, and no call occurs (a callee can write any reachable
///    block). The alias queries go through [`crate::alias`], so the
///    *legacy* variant is escape-blind: a store through an
///    `inttoptr`'d pointer does not pin the load, reproducing the
///    stale-load miscompilation the refinement checker exhibits.
fn load_hoist_is_safe(func: &Function, lp: &Loop, id: InstId, mode: PipelineMode) -> bool {
    let Inst::Load { ty, ptr } = func.inst(id) else {
        return false;
    };
    let Value::Inst(obj) = ptr else {
        return false;
    };
    let Inst::Alloca { ty: alloc_ty } = func.inst(*obj) else {
        return false;
    };
    if alloc_ty.byte_size() < ty.byte_size() {
        return false;
    }
    for &bb in &lp.blocks {
        for &iid in &func.block(bb).insts {
            match func.inst(iid) {
                Inst::Store { ptr: store_ptr, .. } if may_alias(func, ptr, store_ptr, mode) => {
                    return false;
                }
                Inst::Call { .. } => return false,
                _ => {}
            }
        }
    }
    true
}

/// Is hoisting this division to the preheader safe?
///
/// Requires a dominating guard proving the divisor non-zero. The fixed
/// variant additionally requires the divisor to be provably non-poison
/// (§5.6): a guard `k != 0` says nothing if `k` may be poison/undef,
/// because the guard's and the division's uses of `k` need not agree.
fn division_hoist_is_safe(
    func: &Function,
    lp: &Loop,
    dt: &DomTree,
    preheader: BlockId,
    id: InstId,
    mode: PipelineMode,
) -> bool {
    let Inst::Bin { op, rhs, .. } = func.inst(id) else {
        return false;
    };
    if !matches!(op, BinOp::UDiv | BinOp::URem) {
        // Signed division additionally traps on INT_MIN / -1; keep the
        // demo focused on the unsigned case.
        return false;
    }
    let divisor = rhs.clone();
    if !is_invariant(func, lp, &divisor) {
        return false;
    }
    if mode.freeze_aware() && !guaranteed_not_poison(func, &divisor, 8) {
        return false;
    }
    // Find a dominating branch guaranteeing divisor != 0.
    let mut bb = dt.idom(preheader);
    while let Some(d) = bb {
        bb = dt.idom(d);
        let Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } = &func.block(d).term
        else {
            continue;
        };
        let Value::Inst(cmp) = cond else {
            continue;
        };
        let Inst::Icmp {
            cond: cc, lhs, rhs, ..
        } = func.inst(*cmp)
        else {
            continue;
        };
        let zero_cmp = |a: &Value, b: &Value| {
            *a == divisor && b.is_int_const(0) || *b == divisor && a.is_int_const(0)
        };
        if !zero_cmp(lhs, rhs) {
            continue;
        }
        let nonzero_edge = match cc {
            Cond::Ne => Some(*then_bb),
            Cond::Eq => Some(*else_bb),
            _ => None,
        };
        // The guard protects the preheader only if the non-zero edge
        // dominates it.
        if nonzero_edge.is_some_and(|edge| dt.dominates(edge, preheader)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        for f in &mut after.functions {
            Licm::new(mode).apply(f);
            f.compact();
        }
        (before, after)
    }

    const INVARIANT_ADD: &str = r#"
declare void @use(i4)
define void @f(i1 %c, i4 %x) {
entry:
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  %v = add nsw i4 %x, 1
  call void @use(i4 %v)
  br label %head
exit:
  ret void
}
"#;

    #[test]
    fn hoists_invariant_arithmetic() {
        // Figure 1's transformation: the nsw add hoists because deferred
        // UB makes speculation safe.
        let (before, after) = run(INVARIANT_ADD, PipelineMode::Fixed);
        let f = after.function("f").unwrap();
        let text = function_to_string(f);
        let entry_has_add = f
            .block(BlockId::ENTRY)
            .insts
            .iter()
            .any(|&id| matches!(f.inst(id), Inst::Bin { op: BinOp::Add, .. }));
        assert!(entry_has_add, "add hoisted to preheader: {text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    const GUARDED_DIV: &str = r#"
declare void @use(i4)
define void @f(i1 %c, i4 %k) {
entry:
  %nz = icmp ne i4 %k, 0
  br i1 %nz, label %ph, label %done
ph:
  br label %head
head:
  %cont = phi i1 [ %c, %ph ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  %d = udiv i4 1, %k
  call void @use(i4 %d)
  br label %head
exit:
  br label %done
done:
  ret void
}
"#;

    #[test]
    fn legacy_hoists_guarded_division_and_miscompiles_under_undef() {
        // §3.2 / PR21412: the guard k != 0 does not protect the hoisted
        // division when k is undef (each use may differ).
        let (before, after) = run(GUARDED_DIV, PipelineMode::Legacy);
        let f = after.function("f").unwrap();
        let ph = f.blocks.iter().position(|b| b.name == "ph").unwrap();
        assert!(
            f.blocks[ph].insts.iter().any(|&id| matches!(
                f.inst(id),
                Inst::Bin {
                    op: BinOp::UDiv,
                    ..
                }
            )),
            "legacy LICM hoists the division: {}",
            function_to_string(f)
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_gvn()),
        );
        assert!(
            r.counterexample().is_some(),
            "hoist past control flow unsound with undef"
        );
    }

    #[test]
    fn fixed_mode_refuses_unfrozen_divisor() {
        let (before, after) = run(GUARDED_DIV, PipelineMode::Fixed);
        assert_eq!(
            before.function("f").unwrap().placed_inst_count(),
            after.function("f").unwrap().placed_inst_count(),
            "no hoist without a non-poison proof"
        );
    }

    const FROZEN_GUARDED_DIV: &str = r#"
declare void @use(i4)
define void @f(i1 %c, i4 %k) {
entry:
  %kf = freeze i4 %k
  %nz = icmp ne i4 %kf, 0
  br i1 %nz, label %ph, label %done
ph:
  br label %head
head:
  %cont = phi i1 [ %c, %ph ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  %d = udiv i4 1, %kf
  call void @use(i4 %d)
  br label %head
exit:
  br label %done
done:
  ret void
}
"#;

    #[test]
    fn fixed_mode_hoists_frozen_guarded_division_soundly() {
        // With the divisor frozen, the §5.6 side condition discharges
        // and the hoist is sound under the proposed semantics.
        let (before, after) = run(FROZEN_GUARDED_DIV, PipelineMode::Fixed);
        let f = after.function("f").unwrap();
        let ph = f.blocks.iter().position(|b| b.name == "ph").unwrap();
        assert!(
            f.blocks[ph].insts.iter().any(|&id| matches!(
                f.inst(id),
                Inst::Bin {
                    op: BinOp::UDiv,
                    ..
                }
            )),
            "fixed LICM hoists the frozen-divisor division: {}",
            function_to_string(f)
        );
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    const PRIVATE_ALLOCA_LOAD: &str = r#"
define i8 @f(i1 %c) {
entry:
  %a = alloca i8
  store i8 7, i8* %a
  br label %head
head:
  %acc = phi i8 [ 0, %entry ], [ %v, %body ]
  %cont = phi i1 [ %c, %entry ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  %v = load i8, i8* %a
  br label %head
exit:
  ret i8 %acc
}
"#;

    #[test]
    fn fixed_mode_hoists_load_of_private_alloca() {
        // The alloca never escapes and the loop contains no store, so
        // the load is invariant and dereferenceable by construction.
        let (before, after) = run(PRIVATE_ALLOCA_LOAD, PipelineMode::Fixed);
        let f = after.function("f").unwrap();
        let entry_has_load = f
            .block(BlockId::ENTRY)
            .insts
            .iter()
            .any(|&id| matches!(f.inst(id), Inst::Load { .. }));
        assert!(entry_has_load, "load hoisted: {}", function_to_string(f));
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    /// The loop rewrites the block through a laundered
    /// `ptrtoint`/`inttoptr` pointer, so the load is *not* invariant.
    const LAUNDERED_LOOP_STORE: &str = r#"
define i8 @f(i1 %c) {
entry:
  %a = alloca i8
  store i8 1, i8* %a
  %i = ptrtoint i8* %a to i32
  %q = inttoptr i32 %i to i8*
  br label %head
head:
  %acc = phi i8 [ 0, %entry ], [ %v, %body ]
  %cont = phi i1 [ %c, %entry ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  store i8 2, i8* %q
  %v = load i8, i8* %a
  br label %head
exit:
  ret i8 %acc
}
"#;

    #[test]
    fn legacy_load_hoist_is_escape_blind_and_miscompiles() {
        let (before, after) = run(LAUNDERED_LOOP_STORE, PipelineMode::Legacy);
        let f = after.function("f").unwrap();
        let entry_has_load = f
            .block(BlockId::ENTRY)
            .insts
            .iter()
            .any(|&id| matches!(f.inst(id), Inst::Load { .. }));
        assert!(
            entry_has_load,
            "legacy LICM hoists past the laundered store: {}",
            function_to_string(f)
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(
            r.counterexample().is_some(),
            "source observes the stored 2, target the stale 1"
        );
    }

    #[test]
    fn fixed_mode_pins_load_under_may_aliasing_store() {
        let (before, after) = run(LAUNDERED_LOOP_STORE, PipelineMode::Fixed);
        assert_eq!(
            before.function("f").unwrap().placed_inst_count(),
            after.function("f").unwrap().placed_inst_count(),
            "escaped alloca: the store may alias, no hoist"
        );
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn unguarded_division_stays_put() {
        let src = r#"
declare void @use(i4)
define void @f(i1 %c, i4 %k) {
entry:
  %kf = freeze i4 %k
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %body ]
  br i1 %cont, label %body, label %exit
body:
  %d = udiv i4 1, %kf
  call void @use(i4 %d)
  br label %head
exit:
  ret void
}
"#;
        let (before, after) = run(src, PipelineMode::Fixed);
        assert_eq!(
            before.function("f").unwrap(),
            after.function("f").unwrap(),
            "no guard, no hoist"
        );
    }
}
