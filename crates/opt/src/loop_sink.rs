//! Loop sinking — the dual of LICM — and the §5.5 pitfall.
//!
//! Sinking moves an instruction from the preheader into the loop body
//! (profitable when the loop rarely runs). For pure instructions this
//! re-executes the same computation per iteration: harmless. For
//! `freeze` it is **not**: each executed freeze may pick a *different*
//! value for a poison input, so sinking (= duplicating per iteration) a
//! freeze whose result is used each iteration changes behavior. The
//! *fixed* variant refuses to sink freeze; the *legacy-style* variant
//! sinks it, and the refinement checker produces the §5.5
//! counterexample.

use frost_ir::{
    Function, FunctionAnalysisManager, Inst, InstId, LoopInfoAnalysis, PreservedAnalyses, Value,
};

use crate::pass::{Pass, PipelineMode};

/// The loop-sinking pass.
#[derive(Debug)]
pub struct LoopSink {
    mode: PipelineMode,
}

impl LoopSink {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> LoopSink {
        LoopSink { mode }
    }
}

impl Pass for LoopSink {
    fn name(&self) -> &'static str {
        "loop-sink"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let li = fam.get::<LoopInfoAnalysis>(func);
        let mut changed = false;
        for lp in &li.loops {
            let Some(preheader) = lp.preheader(func) else {
                continue;
            };
            // Candidates: preheader instructions whose every use is
            // inside the loop.
            loop {
                let uses = func.use_counts();
                let mut moved = false;
                let ph_insts: Vec<InstId> = func.block(preheader).insts.clone();
                for id in ph_insts {
                    let inst = func.inst(id);
                    if inst.has_side_effects()
                        || inst.may_have_immediate_ub()
                        || matches!(inst, Inst::Phi { .. })
                    {
                        continue;
                    }
                    // §5.5: duplicating (re-executing) freeze is wrong.
                    if inst.is_freeze() && self.mode.freeze_aware() {
                        continue;
                    }
                    if uses.is_unused(id) {
                        continue;
                    }
                    let mut all_uses_in_header = true;
                    for bb in func.block_ids() {
                        let in_header = bb == lp.header;
                        for &u in &func.block(bb).insts {
                            if u != id && func.inst(u).uses_inst(id) && !in_header {
                                all_uses_in_header = false;
                            }
                        }
                        let mut term_use = false;
                        func.block(bb).term.for_each_operand(|v| {
                            if *v == Value::Inst(id) {
                                term_use = true;
                            }
                        });
                        if term_use && !in_header {
                            all_uses_in_header = false;
                        }
                    }
                    // Sink into the loop header (which dominates all
                    // uses in the loop).
                    if !all_uses_in_header {
                        continue;
                    }
                    // Insert after the header's phis.
                    let pos = func
                        .block(preheader)
                        .insts
                        .iter()
                        .position(|&i| i == id)
                        .expect("placed");
                    func.block_mut(preheader).insts.remove(pos);
                    let phi_end = func
                        .block(lp.header)
                        .insts
                        .iter()
                        .position(|&i| !matches!(func.inst(i), Inst::Phi { .. }))
                        .unwrap_or(func.block(lp.header).insts.len());
                    func.block_mut(lp.header).insts.insert(phi_end, id);
                    moved = true;
                    changed = true;
                    break;
                }
                if !moved {
                    break;
                }
            }
        }
        if changed {
            // Sinking moves instructions between existing blocks.
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module, bool) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        let mut changed = false;
        for f in &mut after.functions {
            changed |= LoopSink::new(mode).apply(f);
            f.compact();
        }
        (before, after, changed)
    }

    const PURE_SINK: &str = r#"
declare void @use(i4)
define void @f(i1 %c, i4 %a, i4 %b) {
entry:
  %x = add i4 %a, %b
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %head ]
  call void @use(i4 %x)
  br i1 %cont, label %head, label %exit
exit:
  ret void
}
"#;

    #[test]
    fn sinks_pure_arithmetic() {
        let (before, after, changed) = run(PURE_SINK, PipelineMode::Fixed);
        assert!(changed);
        let f = after.function("f").unwrap();
        let head = f.blocks.iter().position(|b| b.name == "head").unwrap();
        assert!(
            f.blocks[head].insts.len() >= 2,
            "add sunk into the loop: {}",
            function_to_string(f)
        );
        assert!(frost_ir::verify::verify_function(f).is_ok());
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    const FREEZE_SINK: &str = r#"
declare void @use(i4)
define void @f(i1 %c, i4 %a) {
entry:
  %y = freeze i4 %a
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %head ]
  call void @use(i4 %y)
  br i1 %cont, label %head, label %exit
exit:
  ret void
}
"#;

    #[test]
    fn fixed_mode_refuses_to_sink_freeze() {
        let (_, after, changed) = run(FREEZE_SINK, PipelineMode::Fixed);
        assert!(!changed, "§5.5: freeze may not be duplicated into a loop");
        let f = after.function("f").unwrap();
        assert!(f.block(frost_ir::BlockId::ENTRY).insts.len() == 1);
    }

    #[test]
    fn legacy_style_freeze_sink_is_unsound() {
        // The freeze-blind/legacy variant sinks the freeze; with a
        // poison %a and two iterations, the two per-iteration freezes
        // can pass different values to @use — impossible in the source.
        let (before, after, changed) = run(FREEZE_SINK, PipelineMode::FixedFreezeBlind);
        assert!(changed, "blind mode sinks the freeze");
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(r.counterexample().is_some(), "§5.5 pitfall reproduced");
    }

    #[test]
    fn does_not_sink_values_used_after_the_loop() {
        let src = r#"
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  %x = add i4 %a, %b
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %head ]
  br i1 %cont, label %head, label %exit
exit:
  ret i4 %x
}
"#;
        let (_, _, changed) = run(src, PipelineMode::Fixed);
        assert!(!changed);
    }
}
