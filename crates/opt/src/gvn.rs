//! Global value numbering, with the equality propagation of §3.3.
//!
//! Two ingredients:
//!
//! 1. **Expression numbering**: identical pure expressions whose
//!    definitions dominate a later occurrence replace it. The *fixed*
//!    variant refuses to merge `freeze` instructions (two freezes of the
//!    same possibly-poison value may differ, §6); the *legacy* variant
//!    merges them, which the refinement checker flags.
//! 2. **Equality propagation**: after `br (icmp eq %a, %b), %t, ...`,
//!    uses of `%a` dominated by `%t` are replaced by `%b`. This is the
//!    §3.3 GVN transformation that is sound only when branch-on-poison
//!    is immediate UB — under the loop-unswitch interpretation
//!    (branch-on-poison = nondeterministic choice) it miscompiles, which
//!    is exactly the paper's conflict.

use std::collections::HashMap;

use frost_ir::dom::DomTree;
use frost_ir::{
    CfgAnalysis, Cond, DomTreeAnalysis, Function, FunctionAnalysisManager, Inst, InstId,
    PreservedAnalyses, Terminator, Value,
};

use crate::alias::may_alias;
use crate::pass::{Pass, PipelineMode};
use crate::util::erase_inst;

/// The GVN pass.
#[derive(Debug)]
pub struct Gvn {
    mode: PipelineMode,
}

impl Gvn {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> Gvn {
        Gvn { mode }
    }
}

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let dt = fam.get::<DomTreeAnalysis>(func);
        let cfg = fam.get::<CfgAnalysis>(func);
        // Both phases only rewrite values and erase duplicate
        // instructions; the block graph (and hence `dt`/`cfg`) stays
        // valid throughout.
        let mut changed = number_expressions(func, &dt, &cfg.rpo, self.mode);
        changed |= cse_loads(func, &cfg.rpo, self.mode);
        changed |= propagate_equalities(func, &dt, &cfg.preds);
        if changed {
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// A hashable key for pure expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ExprKey {
    mnemonic: &'static str,
    detail: String,
    operands: Vec<Value>,
}

fn expr_key(func: &Function, id: InstId, mode: PipelineMode) -> Option<ExprKey> {
    let inst = func.inst(id);
    // Never number side-effecting or memory-dependent instructions, and
    // phis (block-position-dependent).
    if inst.has_side_effects() || matches!(inst, Inst::Phi { .. } | Inst::Load { .. }) {
        return None;
    }
    if inst.is_freeze() && mode.freeze_aware() {
        // Fixed GVN: each freeze is unique. (A sound extension would
        // replace *all* uses of equal freezes at once — §6 notes the
        // caveat; we take the conservative route.)
        return None;
    }
    if inst.is_freeze() && mode == PipelineMode::FixedFreezeBlind {
        // Freeze-blind passes skip the unknown instruction entirely.
        return None;
    }
    let detail = match inst {
        Inst::Bin { op, flags, ty, .. } => format!("{op} {flags} {ty}"),
        Inst::Icmp { cond, ty, .. } => format!("{cond} {ty}"),
        Inst::Select { ty, .. } => format!("{ty}"),
        Inst::Freeze { ty, .. } => format!("{ty}"),
        Inst::Cast {
            kind,
            from_ty,
            to_ty,
            ..
        } => format!("{kind} {from_ty} {to_ty}"),
        Inst::Bitcast { from_ty, to_ty, .. } => format!("{from_ty} {to_ty}"),
        Inst::Gep {
            elem_ty, inbounds, ..
        } => format!("{elem_ty} {inbounds}"),
        Inst::ExtractElement { len, .. } | Inst::InsertElement { len, .. } => format!("{len}"),
        _ => return None,
    };
    let mut operands = inst.operands();
    // Canonicalize commutative binops so `a+b` and `b+a` number equal.
    if let Inst::Bin { op, .. } = inst {
        if op.is_commutative() {
            operands.sort_by_key(|v| format!("{v:?}"));
        }
    }
    Some(ExprKey {
        mnemonic: inst.mnemonic(),
        detail,
        operands,
    })
}

/// Replaces dominated duplicate expressions by their leader.
fn number_expressions(
    func: &mut Function,
    dt: &DomTree,
    rpo: &[frost_ir::BlockId],
    mode: PipelineMode,
) -> bool {
    let mut leaders: HashMap<ExprKey, (InstId, frost_ir::BlockId, usize)> = HashMap::new();
    let mut replace: Vec<(InstId, InstId)> = Vec::new();

    for &bb in rpo {
        for (pos, &id) in func.block(bb).insts.iter().enumerate() {
            let Some(key) = expr_key(func, id, mode) else {
                continue;
            };
            match leaders.get(&key) {
                Some(&(leader, lbb, lpos))
                    if lbb == bb && lpos < pos || dt.strictly_dominates(lbb, bb) =>
                {
                    replace.push((id, leader));
                }
                _ => {
                    leaders.insert(key, (id, bb, pos));
                }
            }
        }
    }
    let changed = !replace.is_empty();
    for (dup, leader) in replace {
        func.replace_all_uses(dup, &Value::Inst(leader));
        erase_inst(func, dup);
    }
    changed
}

/// Block-local load CSE: a repeated `load` of the same pointer with no
/// intervening may-aliasing `store` (and no call) reuses the earlier
/// result. The alias queries go through [`crate::alias`], so the
/// *legacy* variant inherits its escape-blindness: a store through an
/// `inttoptr`'d pointer does not kill an alloca's available load, and
/// the refinement checker exhibits the stale value on real memory.
fn cse_loads(func: &mut Function, rpo: &[frost_ir::BlockId], mode: PipelineMode) -> bool {
    let mut replace: Vec<(InstId, InstId)> = Vec::new();
    for &bb in rpo {
        // (pointer, loaded type, leader) triples still known good.
        let mut avail: Vec<(Value, frost_ir::Ty, InstId)> = Vec::new();
        for &id in &func.block(bb).insts {
            match func.inst(id) {
                Inst::Load { ty, ptr } => {
                    if let Some(&(_, _, leader)) =
                        avail.iter().find(|(p, t, _)| p == ptr && t == ty)
                    {
                        replace.push((id, leader));
                    } else {
                        avail.push((ptr.clone(), ty.clone(), id));
                    }
                }
                Inst::Store { ptr, .. } => {
                    let store_ptr = ptr.clone();
                    avail.retain(|(p, _, _)| !may_alias(func, p, &store_ptr, mode));
                }
                // Calls may write anything reachable from anywhere.
                Inst::Call { .. } => avail.clear(),
                _ => {}
            }
        }
    }
    let changed = !replace.is_empty();
    for (dup, leader) in replace {
        func.replace_all_uses(dup, &Value::Inst(leader));
        erase_inst(func, dup);
    }
    changed
}

/// §3.3 equality propagation: in the true successor of
/// `br (icmp eq %a, %b)`, replace `%a` with `%b` (and in the false
/// successor of `icmp ne`). The successor must have the branch block as
/// its only predecessor; the replacement applies there and in every
/// block it dominates.
fn propagate_equalities(
    func: &mut Function,
    dt: &DomTree,
    preds: &[Vec<frost_ir::BlockId>],
) -> bool {
    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        let Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } = &func.block(bb).term
        else {
            continue;
        };
        let Value::Inst(cmp) = cond else { continue };
        let Inst::Icmp {
            cond: cc, lhs, rhs, ..
        } = func.inst(*cmp)
        else {
            continue;
        };
        let (target, a, b) = match cc {
            Cond::Eq => (*then_bb, lhs.clone(), rhs.clone()),
            Cond::Ne => (*else_bb, lhs.clone(), rhs.clone()),
            _ => continue,
        };
        if preds[target.index()].len() != 1 || target == bb {
            continue;
        }
        // Prefer replacing an instruction result by the other side;
        // constants/arguments make better representatives.
        let (from, to) = match (&a, &b) {
            (Value::Inst(_), _) => (a.clone(), b.clone()),
            (_, Value::Inst(_)) => (b.clone(), a.clone()),
            _ => continue,
        };
        let Value::Inst(from_id) = &from else {
            continue;
        };
        // Rewrite uses in blocks dominated by the target.
        for user_bb in func.block_ids().collect::<Vec<_>>() {
            if !dt.dominates(target, user_bb) {
                continue;
            }
            let ids: Vec<InstId> = func.block(user_bb).insts.clone();
            for uid in ids {
                if uid == *from_id {
                    continue;
                }
                // Do not rewrite phis: their incoming values are
                // evaluated on the edge, not in this block.
                if matches!(func.inst(uid), Inst::Phi { .. }) {
                    continue;
                }
                let to2 = to.clone();
                let from2 = from.clone();
                func.inst_mut(uid).for_each_operand_mut(|v| {
                    if *v == from2 {
                        *v = to2.clone();
                        changed = true;
                    }
                });
            }
            let to2 = to.clone();
            let from2 = from.clone();
            let block = func.block_mut(user_bb);
            block.term.for_each_operand_mut(|v| {
                if *v == from2 {
                    *v = to2.clone();
                    changed = true;
                }
            });
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        for f in &mut after.functions {
            Gvn::new(mode).apply(f);
            f.compact();
        }
        (before, after)
    }

    #[test]
    fn merges_identical_expressions() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x, i4 %y) {
entry:
  %a = add i4 %x, %y
  %b = add i4 %y, %x
  %r = xor i4 %a, %b
  ret i4 %r
}
"#,
            PipelineMode::Fixed,
        );
        let f = after.function("f").unwrap();
        assert_eq!(f.placed_inst_count(), 2, "{}", function_to_string(f));
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn fixed_gvn_keeps_freezes_apart() {
        let src = r#"
define i4 @f(i4 %x) {
entry:
  %a = freeze i4 %x
  %b = freeze i4 %x
  %r = xor i4 %a, %b
  ret i4 %r
}
"#;
        let (before, after) = run(src, PipelineMode::Fixed);
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 3);
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();

        // Legacy GVN merges them: xor %a, %a = 0 becomes forced, but the
        // source can return any even... actually any xor of two
        // independent freezes. The refinement checker catches it.
        let (before, after) = run(src, PipelineMode::Legacy);
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 2);
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        // Merging freezes *shrinks* the behavior set (both uses now
        // agree), which is a refinement; the bug is the *other*
        // direction: uses that relied on a single freeze getting split.
        // Keeping them apart is the conservative choice; merging is
        // still a refinement here.
        r.assert_refines();
    }

    #[test]
    fn equality_propagation_matches_the_paper_example() {
        // §3.3: t = x + 1; if (t == y) { w = x + 1; foo(w); }
        let (before, after) = run(
            r#"
declare void @foo(i4)
define void @f(i4 %x, i4 %y) {
entry:
  %t = add i4 %x, 1
  %c = icmp eq i4 %t, %y
  br i1 %c, label %then, label %exit
then:
  %w = add i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        // w is numbered equal to t, and t is replaced by y in the then
        // block: foo(%y).
        assert!(text.contains("call void @foo(i4 %y)"), "{text}");
        // Sound when branch-on-poison is UB (proposed & legacy-gvn):
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn equality_propagation_unsound_under_unswitch_semantics() {
        // The same §3.3 transformation, checked under branch-on-poison =
        // nondeterministic choice: passing y (poison) to foo where the
        // source passed a defined w is a miscompilation.
        let (before, after) = run(
            r#"
declare void @foo(i4)
define void @f(i4 %x, i4 %y) {
entry:
  %t = add i4 %x, 1
  %c = icmp eq i4 %t, %y
  br i1 %c, label %then, label %exit
then:
  %w = add i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}
"#,
            PipelineMode::Fixed,
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_unswitch()),
        );
        assert!(
            r.counterexample().is_some(),
            "GVN equality propagation requires branch-on-poison = UB (§3.3)"
        );
    }

    #[test]
    fn does_not_merge_across_non_dominating_blocks() {
        let (before, after) = run(
            r#"
define i4 @f(i1 %c, i4 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %u = add i4 %x, 1
  ret i4 %u
b:
  %v = add i4 %x, 1
  ret i4 %v
}
"#,
            PipelineMode::Fixed,
        );
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 2);
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn repeated_loads_of_a_private_alloca_merge() {
        let (before, after) = run(
            r#"
define i8 @f() {
entry:
  %a = alloca i8
  store i8 5, i8* %a
  %v1 = load i8, i8* %a
  %v2 = load i8, i8* %a
  %r = xor i8 %v1, %v2
  ret i8 %r
}
"#,
            PipelineMode::Fixed,
        );
        let f = after.function("f").unwrap();
        assert_eq!(f.placed_inst_count(), 4, "{}", function_to_string(f));
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    /// The escape-blindness miscompilation: legacy alias analysis says a
    /// store through an `inttoptr`'d pointer cannot touch an alloca, so
    /// legacy GVN forwards the stale pre-store load. The block-based
    /// memory model executes the forged pointer for real and the checker
    /// returns the miscompiled memory state as a counterexample.
    const LAUNDERED_STORE: &str = r#"
define i8 @f() {
entry:
  %a = alloca i8
  store i8 1, i8* %a
  %v1 = load i8, i8* %a
  %i = ptrtoint i8* %a to i32
  %q = inttoptr i32 %i to i8*
  store i8 2, i8* %q
  %v2 = load i8, i8* %a
  %r = xor i8 %v1, %v2
  ret i8 %r
}
"#;

    #[test]
    fn legacy_load_cse_is_escape_blind_and_miscompiles() {
        let (before, after) = run(LAUNDERED_STORE, PipelineMode::Legacy);
        let f = after.function("f").unwrap();
        assert_eq!(
            f.placed_inst_count(),
            7,
            "legacy CSEs the second load: {}",
            function_to_string(f)
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        assert!(
            r.counterexample().is_some(),
            "source returns 1^2=3, target 1^1=0"
        );
    }

    #[test]
    fn fixed_load_cse_respects_escaped_allocas() {
        let (before, after) = run(LAUNDERED_STORE, PipelineMode::Fixed);
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 8);
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn loads_are_not_numbered() {
        let (_, after) = run(
            r#"
define i8 @f(i8* %p, i8* %q) {
entry:
  %a = load i8, i8* %p
  store i8 1, i8* %q
  %b = load i8, i8* %p
  %r = xor i8 %a, %b
  ret i8 %r
}
"#,
            PipelineMode::Fixed,
        );
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 4);
    }
}
