//! A tiny alias analysis over the §5 block-based memory model.
//!
//! Pointers are classified by their **underlying object** — the alloca
//! or function parameter a gep/bitcast chain bottoms out in. The model
//! makes three facts available for free:
//!
//! * distinct allocas are distinct logical blocks, so they never alias;
//! * an alloca'd block is fresh, so it never aliases a block that
//!   arrived through a parameter;
//! * a pointer of *unknown* provenance (`inttoptr`, loaded from memory,
//!   returned by a call) can only reach an alloca whose address
//!   **escaped** — the only way to forge a pointer to a block is to
//!   have observed its address with `ptrtoint` (or to have smuggled the
//!   pointer itself out through a store, call, or return).
//!
//! The *legacy* variant reproduces the classic escape-blindness bug:
//! it assumes an alloca can never alias an unknown pointer, full stop.
//! That is exactly the assumption `ptrtoint`/`inttoptr` round-trips
//! violate, and the GVN/LICM tests in this crate exhibit the resulting
//! miscompilations as refinement counterexamples over real memory.
//!
//! Two pointer **parameters** are conservatively treated as
//! may-aliasing each other: the refinement harness happens to bind each
//! pointer parameter to its own disjoint block, but real call sites may
//! pass the same pointer twice, so no-alias would be an unsound claim
//! about contexts the harness does not enumerate.

use frost_ir::{Function, Inst, InstId, Value};

use crate::pass::PipelineMode;

/// What a pointer chain bottoms out in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnderlyingObject {
    /// The block created by the given `alloca` instruction.
    Alloca(InstId),
    /// The block bound to the `i`-th (pointer) function parameter.
    Param(u32),
    /// Anything else: `inttoptr` results, call results, loaded
    /// pointers, …
    Unknown,
}

/// Chases gep/bitcast chains to the pointer's underlying object.
pub fn underlying_object(func: &Function, v: &Value) -> UnderlyingObject {
    let mut v = v.clone();
    // The chain length is bounded by the instruction count; the fuel is
    // belt-and-braces against malformed (cyclic) input.
    for _ in 0..func.insts.len() + 1 {
        match &v {
            Value::Arg(i) => return UnderlyingObject::Param(*i),
            Value::Inst(id) => match func.inst(*id) {
                Inst::Alloca { .. } => return UnderlyingObject::Alloca(*id),
                Inst::Gep { base, .. } => v = base.clone(),
                Inst::Bitcast { val, .. } => v = val.clone(),
                _ => return UnderlyingObject::Unknown,
            },
            _ => return UnderlyingObject::Unknown,
        }
    }
    UnderlyingObject::Unknown
}

/// Does the address of this alloca escape?
///
/// The derived-pointer set starts at the alloca and grows through gep
/// and bitcast. A member may be used as a load address, a store
/// *address*, or a gep/bitcast operand; any other use — `ptrtoint`,
/// a call argument, a stored *value*, a terminator operand, a phi or
/// select arm — publishes the address and counts as an escape.
pub fn escapes(func: &Function, alloca: InstId) -> bool {
    let mut derived: Vec<InstId> = vec![alloca];
    let mut changed = true;
    while changed {
        changed = false;
        for bb in func.block_ids() {
            for &id in &func.block(bb).insts {
                let in_set = |v: &Value| matches!(v, Value::Inst(i) if derived.contains(i));
                match func.inst(id) {
                    // Reading through the pointer does not publish it.
                    Inst::Load { .. } => {}
                    // Storing *through* it is fine; storing *it* leaks.
                    Inst::Store { val, .. } => {
                        if in_set(val) {
                            return true;
                        }
                    }
                    Inst::Gep { base, idx, .. } => {
                        if in_set(idx) {
                            return true;
                        }
                        if in_set(base) && !derived.contains(&id) {
                            derived.push(id);
                            changed = true;
                        }
                    }
                    Inst::Bitcast { val, .. } => {
                        if in_set(val) && !derived.contains(&id) {
                            derived.push(id);
                            changed = true;
                        }
                    }
                    other => {
                        let mut leaks = false;
                        other.for_each_operand(|v| leaks |= in_set(v));
                        if leaks {
                            return true;
                        }
                    }
                }
            }
            let mut leaks = false;
            func.block(bb)
                .term
                .for_each_operand(|v| leaks |= matches!(v, Value::Inst(i) if derived.contains(i)));
            if leaks {
                return true;
            }
        }
    }
    false
}

/// May the two pointers address overlapping memory?
///
/// The *legacy* mode answers "no" for any alloca-vs-unknown pair — the
/// escape-blind assumption that `ptrtoint`/`inttoptr` round-trips
/// falsify. The fixed modes consult [`escapes`].
pub fn may_alias(func: &Function, p: &Value, q: &Value, mode: PipelineMode) -> bool {
    use UnderlyingObject::{Alloca, Param, Unknown};
    match (underlying_object(func, p), underlying_object(func, q)) {
        (Alloca(a), Alloca(b)) => a == b,
        // A fresh block can never be the block a parameter points into.
        (Alloca(_), Param(_)) | (Param(_), Alloca(_)) => false,
        (Alloca(a), Unknown) | (Unknown, Alloca(a)) => {
            // Legacy bug: "allocas are private" — even after their
            // address was laundered through ptrtoint/inttoptr.
            mode != PipelineMode::Legacy && escapes(func, a)
        }
        // Conservative: a caller may pass the same pointer twice.
        (Param(_), Param(_)) | (Param(_), Unknown) | (Unknown, Param(_)) | (Unknown, Unknown) => {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;

    fn first_fn(src: &str) -> frost_ir::Module {
        parse_module(src).unwrap()
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let m = first_fn(
            r#"
define void @f() {
entry:
  %a = alloca i8
  %b = alloca i8
  store i8 1, i8* %a
  store i8 2, i8* %b
  ret void
}
"#,
        );
        let f = m.function("f").unwrap();
        let ids: Vec<_> = f.block(frost_ir::BlockId::ENTRY).insts.clone();
        let (a, b) = (Value::Inst(ids[0]), Value::Inst(ids[1]));
        assert!(!may_alias(f, &a, &b, PipelineMode::Fixed));
        assert!(may_alias(f, &a, &a, PipelineMode::Fixed));
    }

    #[test]
    fn gep_chains_reach_the_underlying_alloca() {
        let m = first_fn(
            r#"
define void @f() {
entry:
  %a = alloca i32
  %p = bitcast i32* %a to i8*
  %q = getelementptr i8, i8* %p, i4 2
  store i8 1, i8* %q
  ret void
}
"#,
        );
        let f = m.function("f").unwrap();
        let ids: Vec<_> = f.block(frost_ir::BlockId::ENTRY).insts.clone();
        assert_eq!(
            underlying_object(f, &Value::Inst(ids[2])),
            UnderlyingObject::Alloca(ids[0])
        );
        assert!(!escapes(f, ids[0]));
    }

    #[test]
    fn ptrtoint_escapes_and_only_fixed_mode_notices() {
        let m = first_fn(
            r#"
define void @f(i8* %u) {
entry:
  %a = alloca i8
  %i = ptrtoint i8* %a to i32
  %q = inttoptr i32 %i to i8*
  store i8 1, i8* %q
  ret void
}
"#,
        );
        let f = m.function("f").unwrap();
        let ids: Vec<_> = f.block(frost_ir::BlockId::ENTRY).insts.clone();
        let (a, q) = (Value::Inst(ids[0]), Value::Inst(ids[2]));
        assert!(escapes(f, ids[0]));
        assert_eq!(underlying_object(f, &q), UnderlyingObject::Unknown);
        assert!(may_alias(f, &a, &q, PipelineMode::Fixed));
        assert!(
            !may_alias(f, &a, &q, PipelineMode::Legacy),
            "legacy alias analysis is escape-blind"
        );
        // A non-escaping alloca stays private from unknown pointers.
        assert!(!may_alias(f, &a, &Value::Arg(0), PipelineMode::Fixed));
    }

    #[test]
    fn parameters_conservatively_alias_each_other() {
        let m = first_fn(
            r#"
define void @f(i8* %p, i8* %q) {
entry:
  ret void
}
"#,
        );
        let f = m.function("f").unwrap();
        assert!(may_alias(
            f,
            &Value::Arg(0),
            &Value::Arg(1),
            PipelineMode::Fixed
        ));
    }
}
