//! InstCombine: the peephole optimizer.
//!
//! Two rule sets coexist, selected by [`PipelineMode`]:
//!
//! * the **legacy** set reproduces the unsound select rules of §3.4 —
//!   `select %c, true, %x → or %c, %x` (wrong when the not-chosen arm is
//!   poison) and `select %c, %x, undef → %x` (wrong because poison is
//!   stronger than undef);
//! * the **fixed** set repairs them with `freeze` and adds the §6 freeze
//!   cleanups (`freeze(freeze x) → freeze x`, `freeze(const) → const`,
//!   `freeze x → x` when `x` is provably non-poison).
//!
//! Every fixed-mode rule is validated against the exhaustive refinement
//! checker in this crate's test suite and by `frost-fuzz`.

use frost_core::ops::{eval_binop, eval_cast, ScalarResult};
use frost_ir::value::truncate;
use frost_ir::{
    BinOp, CastKind, Cond, Constant, Flags, Function, FunctionAnalysisManager, Inst, InstId,
    PreservedAnalyses, Ty, Value,
};

use crate::pass::{Pass, PipelineMode};
use crate::util::{erase_inst, guaranteed_not_poison};

/// The peephole-optimization pass.
#[derive(Debug)]
pub struct InstCombine {
    mode: PipelineMode,
}

impl InstCombine {
    /// Creates the pass in the given mode.
    pub fn new(mode: PipelineMode) -> InstCombine {
        InstCombine { mode }
    }
}

impl Pass for InstCombine {
    fn name(&self) -> &'static str {
        "instcombine"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let mut changed = false;
        // Bounded fixpoint: each round scans all placed instructions.
        for _ in 0..8 {
            let mut round_changed = false;
            let placed: Vec<InstId> = func
                .blocks
                .iter()
                .flat_map(|b| b.insts.iter().copied())
                .collect();
            for id in placed {
                // The instruction may have been erased by an earlier
                // rewrite this round.
                if !func.blocks.iter().any(|b| b.insts.contains(&id)) {
                    continue;
                }
                if let Some(action) = simplify(func, id, self.mode) {
                    apply(func, id, action);
                    round_changed = true;
                }
            }
            changed |= round_changed;
            if !round_changed {
                break;
            }
        }
        if changed {
            // Instruction-level rewrites only; the block graph is
            // untouched.
            PreservedAnalyses::cfg()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// A deferred rewrite that may reference freshly inserted instructions
/// through the placeholder ids it is handed.
type RewriteWithIds = Box<dyn FnOnce(&[InstId]) -> Inst>;

/// The outcome of matching one instruction.
enum Action {
    /// Replace all uses of the instruction with a value and erase it.
    Replace(Value),
    /// Rewrite the instruction in place.
    Rewrite(Inst),
    /// Insert the given new instructions immediately before this one
    /// (they receive fresh ids in order) and then rewrite this one; the
    /// rewrite may reference the fresh instructions through the
    /// placeholder ids returned by the closure.
    ExpandAndRewrite(Vec<Inst>, RewriteWithIds),
}

fn apply(func: &mut Function, id: InstId, action: Action) {
    match action {
        Action::Replace(v) => {
            func.replace_all_uses(id, &v);
            erase_inst(func, id);
        }
        Action::Rewrite(inst) => {
            *func.inst_mut(id) = inst;
        }
        Action::ExpandAndRewrite(new_insts, build) => {
            let bb = func.block_of(id).expect("instruction is placed");
            let pos = func
                .block(bb)
                .insts
                .iter()
                .position(|&i| i == id)
                .expect("instruction is in its block");
            let mut ids = Vec::with_capacity(new_insts.len());
            for (k, inst) in new_insts.into_iter().enumerate() {
                let new_id = func.add_inst(inst);
                func.block_mut(bb).insts.insert(pos + k, new_id);
                ids.push(new_id);
            }
            *func.inst_mut(id) = build(&ids);
        }
    }
}

fn int_const(v: &Value) -> Option<(u32, u128)> {
    match v.as_const() {
        Some(Constant::Int { bits, value }) => Some((*bits, *value)),
        _ => None,
    }
}

fn is_poison_const(v: &Value) -> bool {
    v.as_const().is_some_and(Constant::contains_poison)
}

fn is_undef_const(v: &Value) -> bool {
    v.as_const().is_some_and(Constant::contains_undef)
}

fn simplify(func: &Function, id: InstId, mode: PipelineMode) -> Option<Action> {
    let inst = func.inst(id).clone();
    match &inst {
        Inst::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        } => simplify_bin(func, *op, *flags, ty, lhs, rhs, mode),
        Inst::Icmp { cond, ty, lhs, rhs } => simplify_icmp(func, *cond, ty, lhs, rhs),
        Inst::Select {
            cond,
            ty,
            tval,
            fval,
        } => simplify_select(func, cond, ty, tval, fval, mode),
        Inst::Freeze { ty, val } => simplify_freeze(func, ty, val, mode),
        Inst::Cast {
            kind,
            from_ty,
            to_ty,
            val,
        } => simplify_cast(func, *kind, from_ty, to_ty, val),
        Inst::Bitcast {
            from_ty,
            to_ty,
            val,
        } => {
            if from_ty == to_ty {
                return Some(Action::Replace(val.clone()));
            }
            None
        }
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn simplify_bin(
    func: &Function,
    op: BinOp,
    flags: Flags,
    ty: &Ty,
    lhs: &Value,
    rhs: &Value,
    mode: PipelineMode,
) -> Option<Action> {
    let bits = ty.int_bits()?; // scalar rules only; vector rules below could be added
    let all_ones = truncate(u128::MAX, bits);

    // Canonicalize: constant to the right for commutative ops.
    if op.is_commutative() && int_const(lhs).is_some() && int_const(rhs).is_none() {
        return Some(Action::Rewrite(Inst::Bin {
            op,
            flags,
            ty: ty.clone(),
            lhs: rhs.clone(),
            rhs: lhs.clone(),
        }));
    }

    // Constant folding (fully defined operands; never folds away
    // immediate UB).
    if let (Some((_, a)), Some((_, b))) = (int_const(lhs), int_const(rhs)) {
        match eval_binop(op, flags, bits, a, b) {
            ScalarResult::Val(v) => return Some(Action::Replace(Value::int(bits, v))),
            ScalarResult::Poison => {
                return Some(Action::Replace(Value::poison(ty.clone())));
            }
            ScalarResult::Ub => return None, // preserve the trap
        }
    }

    // Poison propagation at compile time: `op x, poison -> poison`
    // (except division, where a poison divisor is UB, preserved).
    if !op.may_have_immediate_ub() && (is_poison_const(lhs) || is_poison_const(rhs)) {
        return Some(Action::Replace(Value::poison(ty.clone())));
    }

    let rhs_c = int_const(rhs).map(|(_, v)| v);
    match (op, rhs_c) {
        // Identities.
        (BinOp::Add, Some(0))
        | (BinOp::Sub, Some(0))
        | (BinOp::Or, Some(0))
        | (BinOp::Xor, Some(0)) => return Some(Action::Replace(lhs.clone())),
        (BinOp::Mul, Some(1)) | (BinOp::UDiv, Some(1)) | (BinOp::SDiv, Some(1)) => {
            return Some(Action::Replace(lhs.clone()))
        }
        (BinOp::Shl | BinOp::LShr | BinOp::AShr, Some(0)) => {
            return Some(Action::Replace(lhs.clone()))
        }
        (BinOp::And, Some(c)) if c == all_ones => return Some(Action::Replace(lhs.clone())),
        // Annihilators. Replacing a possibly-poison expression with a
        // constant is a refinement (the constant refines poison).
        (BinOp::And, Some(0)) | (BinOp::Mul, Some(0)) => {
            return Some(Action::Replace(Value::int(bits, 0)))
        }
        (BinOp::Or, Some(c)) if c == all_ones => {
            return Some(Action::Replace(Value::int(bits, all_ones)))
        }
        (BinOp::URem, Some(1)) => return Some(Action::Replace(Value::int(bits, 0))),
        // §3.1: x * 2 -> x + x. Sound under the proposed semantics
        // (poison in = poison out on both sides); UNSOUND under legacy
        // undef, where each use of x may differ — kept in both modes
        // precisely because the paper's point is that the *semantics*,
        // not the rule, was at fault. The refinement checker flags it
        // under legacy and passes it under proposed.
        (BinOp::Mul, Some(2)) => {
            return Some(Action::Rewrite(Inst::Bin {
                op: BinOp::Add,
                flags: Flags::NONE,
                ty: ty.clone(),
                lhs: lhs.clone(),
                rhs: lhs.clone(),
            }));
        }
        // §3.4: udiv %a, C -> "icmp ult %a, C ? 0 : 1" for C with the
        // top bit set (any a / C is 0 or 1).
        (BinOp::UDiv, Some(c)) if c >> (bits - 1) == 1 && !flags.exact => {
            let lhs = lhs.clone();
            let ty2 = ty.clone();
            let bits2 = bits;
            return Some(Action::ExpandAndRewrite(
                vec![Inst::Icmp {
                    cond: Cond::Ult,
                    ty: ty.clone(),
                    lhs,
                    rhs: Value::int(bits, c),
                }],
                Box::new(move |ids| Inst::Select {
                    cond: Value::Inst(ids[0]),
                    ty: ty2,
                    tval: Value::int(bits2, 0),
                    fval: Value::int(bits2, 1),
                }),
            ));
        }
        _ => {}
    }

    // x - x -> 0, x ^ x -> 0 (sound: 0 refines poison and any
    // undef-resolution superset includes 0).
    if lhs == rhs {
        match op {
            BinOp::Sub | BinOp::Xor => return Some(Action::Replace(Value::int(bits, 0))),
            BinOp::And | BinOp::Or => return Some(Action::Replace(lhs.clone())),
            _ => {}
        }
    }

    let _ = (mode, func);
    None
}

fn simplify_icmp(func: &Function, cond: Cond, ty: &Ty, lhs: &Value, rhs: &Value) -> Option<Action> {
    let bits = ty.int_bits()?;
    // Constant fold.
    if let (Some((_, a)), Some((_, b))) = (int_const(lhs), int_const(rhs)) {
        return Some(Action::Replace(Value::bool(cond.eval(bits, a, b))));
    }
    if is_poison_const(lhs) || is_poison_const(rhs) {
        return Some(Action::Replace(Value::poison(Ty::i1())));
    }
    // x == x -> true etc. (replacing possibly-poison by a constant is a
    // refinement).
    if lhs == rhs {
        let v = match cond {
            Cond::Eq | Cond::Uge | Cond::Ule | Cond::Sge | Cond::Sle => true,
            Cond::Ne | Cond::Ugt | Cond::Ult | Cond::Sgt | Cond::Slt => false,
        };
        return Some(Action::Replace(Value::bool(v)));
    }
    // Range tautologies with a constant RHS.
    if let Some((_, c)) = int_const(rhs) {
        let umax = truncate(u128::MAX, bits);
        let smax = (1u128 << (bits - 1)) - 1;
        let smin = 1u128 << (bits - 1);
        let fold = match (cond, c) {
            (Cond::Ult, 0) => Some(false),
            (Cond::Uge, 0) => Some(true),
            (Cond::Ugt, c2) if c2 == umax => Some(false),
            (Cond::Ule, c2) if c2 == umax => Some(true),
            (Cond::Sgt, c2) if c2 == smax => Some(false),
            (Cond::Sle, c2) if c2 == smax => Some(true),
            (Cond::Slt, c2) if c2 == smin => Some(false),
            (Cond::Sge, c2) if c2 == smin => Some(true),
            _ => None,
        };
        if let Some(v) = fold {
            return Some(Action::Replace(Value::bool(v)));
        }
    }
    // §2.3: icmp sgt (add nsw %a, %b), %a -> icmp sgt %b, 0 (and the
    // slt/sge/sle variants). Justified by nsw-overflow-is-poison.
    if let Value::Inst(add_id) = lhs {
        if let Inst::Bin {
            op: BinOp::Add,
            flags,
            lhs: a,
            rhs: b,
            ..
        } = func.inst(*add_id)
        {
            if flags.nsw && matches!(cond, Cond::Sgt | Cond::Sge | Cond::Slt | Cond::Sle) {
                let other = if a == rhs {
                    Some(b.clone())
                } else if b == rhs {
                    Some(a.clone())
                } else {
                    None
                };
                if let Some(bv) = other {
                    return Some(Action::Rewrite(Inst::Icmp {
                        cond,
                        ty: ty.clone(),
                        lhs: bv,
                        rhs: Value::int(bits, 0),
                    }));
                }
            }
        }
    }
    None
}

fn simplify_select(
    func: &Function,
    cond: &Value,
    ty: &Ty,
    tval: &Value,
    fval: &Value,
    mode: PipelineMode,
) -> Option<Action> {
    // select c, x, x -> x.
    if tval == fval {
        return Some(Action::Replace(tval.clone()));
    }
    // select true/false, a, b -> a/b. (Folding on a *constant* condition
    // is sound in every mode: the condition is not poison.)
    if let Some((_, c)) = int_const(cond) {
        return Some(Action::Replace(if c == 1 {
            tval.clone()
        } else {
            fval.clone()
        }));
    }
    if is_poison_const(cond) {
        return Some(Action::Replace(Value::poison(ty.clone())));
    }

    let is_true = |v: &Value| v.is_int_const(1) && *ty == Ty::i1();
    let is_false = |v: &Value| v.is_int_const(0) && *ty == Ty::i1();

    match mode {
        PipelineMode::Legacy => {
            // §3.4 (unsound): select %c, true, %x -> or %c, %x.
            if is_true(tval) {
                return Some(Action::Rewrite(Inst::Bin {
                    op: BinOp::Or,
                    flags: Flags::NONE,
                    ty: Ty::i1(),
                    lhs: cond.clone(),
                    rhs: fval.clone(),
                }));
            }
            // §3.4 (unsound): select %c, %x, false -> and %c, %x.
            if is_false(fval) {
                return Some(Action::Rewrite(Inst::Bin {
                    op: BinOp::And,
                    flags: Flags::NONE,
                    ty: Ty::i1(),
                    lhs: cond.clone(),
                    rhs: tval.clone(),
                }));
            }
            // §3.4 (unsound even in legacy): select %c, %x, undef -> %x.
            // Poison is stronger than undef, so this can strengthen the
            // result. LLVM performed it; we reproduce it.
            if is_undef_const(fval) {
                return Some(Action::Replace(tval.clone()));
            }
            if is_undef_const(tval) {
                return Some(Action::Replace(fval.clone()));
            }
        }
        PipelineMode::Fixed | PipelineMode::FixedFreezeBlind => {
            // Fixed variants: freeze the arm that may leak poison into
            // the arithmetic form (§6 "a safe version requires
            // freezing").
            if is_true(tval) {
                let fv = fval.clone();
                let cv = cond.clone();
                if guaranteed_not_poison(func, &fv, 8) {
                    return Some(Action::Rewrite(Inst::Bin {
                        op: BinOp::Or,
                        flags: Flags::NONE,
                        ty: Ty::i1(),
                        lhs: cv,
                        rhs: fv,
                    }));
                }
                return Some(Action::ExpandAndRewrite(
                    vec![Inst::Freeze {
                        ty: Ty::i1(),
                        val: fv,
                    }],
                    Box::new(move |ids| Inst::Bin {
                        op: BinOp::Or,
                        flags: Flags::NONE,
                        ty: Ty::i1(),
                        lhs: cv,
                        rhs: Value::Inst(ids[0]),
                    }),
                ));
            }
            if is_false(fval) {
                let tv = tval.clone();
                let cv = cond.clone();
                if guaranteed_not_poison(func, &tv, 8) {
                    return Some(Action::Rewrite(Inst::Bin {
                        op: BinOp::And,
                        flags: Flags::NONE,
                        ty: Ty::i1(),
                        lhs: cv,
                        rhs: tv,
                    }));
                }
                return Some(Action::ExpandAndRewrite(
                    vec![Inst::Freeze {
                        ty: Ty::i1(),
                        val: tv,
                    }],
                    Box::new(move |ids| Inst::Bin {
                        op: BinOp::And,
                        flags: Flags::NONE,
                        ty: Ty::i1(),
                        lhs: cv,
                        rhs: Value::Inst(ids[0]),
                    }),
                ));
            }
        }
    }
    None
}

fn simplify_freeze(func: &Function, ty: &Ty, val: &Value, mode: PipelineMode) -> Option<Action> {
    if !mode.freeze_aware() {
        // Legacy has no freeze; freeze-blind mode conservatively leaves
        // them alone (§7.2's performance-regression mechanism).
        return None;
    }
    // freeze(defined const) -> const.
    if let Some(c) = val.as_const() {
        if !c.contains_poison() && !c.contains_undef() {
            return Some(Action::Replace(val.clone()));
        }
    }
    // freeze(freeze x) -> freeze x.
    if let Value::Inst(inner) = val {
        if func.inst(*inner).is_freeze() {
            return Some(Action::Replace(val.clone()));
        }
    }
    // freeze(x) -> x when x can't be poison.
    if guaranteed_not_poison(func, val, 8) {
        return Some(Action::Replace(val.clone()));
    }
    let _ = ty;
    None
}

fn simplify_cast(
    func: &Function,
    kind: CastKind,
    from_ty: &Ty,
    to_ty: &Ty,
    val: &Value,
) -> Option<Action> {
    let from_bits = from_ty.int_bits()?;
    let to_bits = to_ty.int_bits()?;
    if let Some((_, v)) = int_const(val) {
        return Some(Action::Replace(Value::int(
            to_bits,
            eval_cast(kind, from_bits, to_bits, v),
        )));
    }
    if is_poison_const(val) {
        return Some(Action::Replace(Value::poison(to_ty.clone())));
    }
    // trunc(zext x to W) to w -> x when widths round-trip.
    if kind == CastKind::Trunc {
        if let Value::Inst(inner) = val {
            if let Inst::Cast {
                kind: CastKind::Zext | CastKind::Sext,
                from_ty: f2,
                val: v2,
                ..
            } = func.inst(*inner)
            {
                if f2 == to_ty {
                    return Some(Action::Replace(v2.clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn combine(src: &str, mode: PipelineMode) -> (Module, Module) {
        let before = parse_module(src).expect("parses");
        let mut after = before.clone();
        let pass = InstCombine::new(mode);
        for f in &mut after.functions {
            pass.apply(f);
            crate::dce::Dce::new().apply(f);
            f.compact();
        }
        (before, after)
    }

    /// Runs InstCombine and checks the result refines the input under
    /// the matching semantics.
    fn combine_checked(src: &str, mode: PipelineMode, sem: Semantics) -> Module {
        let (before, after) = combine(src, mode);
        check_refinement(&before, "f", &after, "f", &CheckOptions::new(sem)).assert_refines();
        after
    }

    #[test]
    fn folds_constants() {
        let after = combine_checked(
            "define i4 @f() {\nentry:\n  %a = add i4 3, 4\n  ret i4 %a\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("ret i4 7"), "{text}");
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let (_, after) = combine(
            "define i4 @f() {\nentry:\n  %a = udiv i4 3, 0\n  ret i4 %a\n}",
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("udiv"), "the trap must be preserved: {text}");
    }

    #[test]
    fn identities_and_annihilators() {
        let after = combine_checked(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add i4 %x, 0
  %b = mul i4 %a, 1
  %c = or i4 %b, 0
  %d = and i4 %c, 15
  %e = xor i4 %d, 0
  ret i4 %e
}
"#,
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 0);
    }

    #[test]
    fn mul_two_becomes_add_and_is_sound_under_proposed() {
        let after = combine_checked(
            "define i4 @f(i4 %x) {\nentry:\n  %y = mul i4 %x, 2\n  ret i4 %y\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("add i4 %x, %x"), "{text}");
    }

    #[test]
    fn mul_two_rule_is_unsound_under_legacy_undef() {
        // §3.1 reproduced mechanically: the same rewrite fails refinement
        // when the multiplicand is undef.
        let (before, after) = combine(
            "define i4 @f() {\nentry:\n  %y = mul i4 undef, 2\n  ret i4 %y\n}",
            PipelineMode::Legacy,
        );
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_gvn()),
        );
        assert!(
            r.counterexample().is_some(),
            "mul undef, 2 -> add undef, undef must fail under legacy undef"
        );
    }

    #[test]
    fn select_to_or_uses_freeze_in_fixed_mode() {
        let after = combine_checked(
            "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %r = select i1 %c, i1 true, i1 %x\n  ret i1 %r\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(
            text.contains("freeze"),
            "fixed mode freezes the arm: {text}"
        );
        assert!(text.contains("or i1 %c"), "{text}");
    }

    #[test]
    fn legacy_select_to_or_is_unsound_under_proposed() {
        // The §3.4 rule without freeze leaks poison through the
        // not-taken arm.
        let src = "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %r = select i1 %c, i1 true, i1 %x\n  ret i1 %r\n}";
        let (before, after) = combine(src, PipelineMode::Legacy);
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("or i1 %c, %x"), "{text}");
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        );
        let ce = r
            .counterexample()
            .expect("select->or without freeze is unsound");
        // Witness: c = true, x = poison.
        assert!(ce.args.contains(&frost_core::Val::Poison));
    }

    #[test]
    fn select_x_undef_rule_is_unsound_even_in_legacy() {
        // §3.4's last example: select %c, %x, undef -> %x is wrong
        // because %x may be poison (poison is stronger than undef).
        // The defect needs the phi-like select reading (chosen arm
        // only), i.e. the legacy-unswitch interpretation: with c = false
        // the source yields undef while the target yields %p, which may
        // be poison — and poison does not refine undef.
        let src = "define i1 @f(i1 %c, i4 %a) {\nentry:\n  %x = add nsw i4 %a, 1\n  %p = icmp sgt i4 %x, 0\n  %r = select i1 %c, i1 %p, i1 undef\n  ret i1 %r\n}";
        let (before, after) = combine(src, PipelineMode::Legacy);
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_unswitch()),
        );
        assert!(r.counterexample().is_some(), "PR31633 reproduced");
    }

    #[test]
    fn freeze_folds_in_fixed_mode() {
        let after = combine_checked(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = freeze i4 7
  %b = freeze i4 %x
  %c = freeze i4 %b
  %d = add i4 %a, %c
  ret i4 %d
}
"#,
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        // freeze(7) folded; freeze(freeze x) collapsed to one freeze.
        assert_eq!(text.matches("freeze").count(), 1, "{text}");
    }

    #[test]
    fn freeze_left_alone_in_freeze_blind_mode() {
        let (_, after) = combine(
            "define i4 @f() {\nentry:\n  %a = freeze i4 7\n  ret i4 %a\n}",
            PipelineMode::FixedFreezeBlind,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(
            text.contains("freeze"),
            "freeze-blind mode does not fold: {text}"
        );
    }

    #[test]
    fn nsw_comparison_fold() {
        // §2.3: (a + b > a) with nsw -> b > 0.
        let after = combine_checked(
            "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %add = add nsw i4 %a, %b\n  %cmp = icmp sgt i4 %add, %a\n  ret i1 %cmp\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("icmp sgt i4 %b, 0"), "{text}");
    }

    #[test]
    fn udiv_by_big_constant_becomes_select() {
        let after = combine_checked(
            "define i4 @f(i4 %a) {\nentry:\n  %r = udiv i4 %a, 12\n  ret i4 %r\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("icmp ult i4 %a, 12"), "{text}");
        assert!(text.contains("select"), "{text}");
        assert!(!text.contains("udiv"), "{text}");
    }

    #[test]
    fn icmp_tautologies() {
        let after = combine_checked(
            r#"
define i1 @f(i4 %x) {
entry:
  %a = icmp ult i4 %x, 0
  %b = icmp eq i4 %x, %x
  %c = and i1 %a, %b
  ret i1 %c
}
"#,
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("ret i1 0"), "{text}");
    }

    #[test]
    fn trunc_of_zext_round_trip() {
        let after = combine_checked(
            "define i4 @f(i4 %x) {\nentry:\n  %a = zext i4 %x to i8\n  %b = trunc i8 %a to i4\n  ret i4 %b\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        assert_eq!(after.function("f").unwrap().placed_inst_count(), 0);
    }

    #[test]
    fn poison_constant_propagation() {
        let after = combine_checked(
            "define i4 @f(i4 %x) {\nentry:\n  %a = add i4 %x, poison\n  ret i4 %a\n}",
            PipelineMode::Fixed,
            Semantics::proposed(),
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("ret i4 poison"), "{text}");
    }

    #[test]
    fn every_fixed_rule_refines_on_i2_samples() {
        // A grab-bag of patterns, each checked exhaustively at i2.
        let cases = [
            "define i2 @f(i2 %x) {\nentry:\n  %a = sub i2 %x, %x\n  ret i2 %a\n}",
            "define i2 @f(i2 %x) {\nentry:\n  %a = xor i2 %x, %x\n  ret i2 %a\n}",
            "define i2 @f(i2 %x) {\nentry:\n  %a = and i2 %x, %x\n  ret i2 %a\n}",
            "define i2 @f(i2 %x) {\nentry:\n  %a = or i2 %x, 3\n  ret i2 %a\n}",
            "define i2 @f(i2 %x) {\nentry:\n  %a = udiv i2 %x, 2\n  ret i2 %a\n}",
            "define i2 @f(i2 %x) {\nentry:\n  %a = mul i2 %x, 2\n  ret i2 %a\n}",
            "define i1 @f(i2 %x) {\nentry:\n  %a = icmp ne i2 %x, %x\n  ret i1 %a\n}",
            "define i2 @f(i2 %x, i1 %c) {\nentry:\n  %a = select i1 %c, i2 %x, i2 %x\n  ret i2 %a\n}",
            "define i2 @f(i2 %x) {\nentry:\n  %a = freeze i2 %x\n  %b = freeze i2 %a\n  ret i2 %b\n}",
        ];
        for src in cases {
            combine_checked(src, PipelineMode::Fixed, Semantics::proposed());
        }
    }
}
