//! SimplifyCFG: constant-branch folding, block merging, and the
//! phi-to-select conversion of §3.4.
//!
//! The phi→select rewrite is the transformation whose soundness *forced*
//! the paper's select semantics: converting
//!
//! ```text
//!   br %c, %t, %f          ┐
//! t: br %m                 │    %x = select %c, %a, %b
//! f: br %m                 ├ →
//! m: %x = phi [%a,%t],[%b,%f]   ┘
//! ```
//!
//! is sound only if `select` on a poison condition is *no more* UB than
//! branch on poison, and only if `select` propagates poison from the
//! *chosen* arm alone (matching phi). Under the proposed semantics both
//! hold; under the legacy LangRef reading (select poisons from either
//! arm) the same rewrite is unsound — the pass is identical in both
//! modes, and the test suite demonstrates the semantics, not the code,
//! decides.

use frost_ir::{
    BlockId, Function, FunctionAnalysisManager, Inst, InstId, PreservedAnalyses, Terminator,
};

use crate::pass::{Pass, PipelineMode};
use crate::util::{fold_constant_branches, retarget_phi_edge, simplify_single_entry_phis};

/// The CFG-simplification pass.
#[derive(Debug)]
pub struct SimplifyCfg {
    #[allow(dead_code)]
    mode: PipelineMode,
}

impl SimplifyCfg {
    /// Creates the pass.
    pub fn new(mode: PipelineMode) -> SimplifyCfg {
        SimplifyCfg { mode }
    }
}

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let mut changed = false;
        for _ in 0..4 {
            let mut round = false;
            round |= fold_constant_branches(func);
            round |= crate::dce::remove_unreachable_blocks(func);
            round |= phi_to_select(func);
            round |= merge_straight_line_blocks(func);
            round |= simplify_single_entry_phis(func);
            changed |= round;
            if !round {
                break;
            }
        }
        if changed {
            // Every sub-rewrite here is CFG surgery.
            PreservedAnalyses::none()
        } else {
            PreservedAnalyses::all()
        }
    }
}

/// Converts diamonds with empty arms into selects.
///
/// Pattern: `E: br %c, %T, %F`; `T`/`F` empty, single-pred, both jump
/// to `M`; every phi in `M` over exactly the edges from `T` and `F`.
/// Rewrites each phi to a `select %c` in `E` and replaces the branch
/// with `br %M`.
pub fn phi_to_select(func: &mut Function) -> bool {
    let mut changed = false;
    let preds = func.predecessors();
    for e in func.block_ids().collect::<Vec<_>>() {
        let Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } = func.block(e).term.clone()
        else {
            continue;
        };
        if then_bb == else_bb || then_bb == e || else_bb == e {
            continue;
        }
        let arm_ok = |bb: BlockId| {
            func.block(bb).insts.is_empty()
                && preds[bb.index()].len() == 1
                && matches!(func.block(bb).term, Terminator::Jmp(_))
        };
        if !arm_ok(then_bb) || !arm_ok(else_bb) {
            continue;
        }
        let Terminator::Jmp(m1) = func.block(then_bb).term else {
            continue;
        };
        let Terminator::Jmp(m2) = func.block(else_bb).term else {
            continue;
        };
        if m1 != m2 || m1 == e {
            continue;
        }
        let merge = m1;
        // The merge block must have exactly these two predecessors;
        // otherwise phis carry other edges we cannot fold.
        if preds[merge.index()].len() != 2 {
            continue;
        }
        // Rewrite each phi into a select placed at the end of E.
        let phi_ids: Vec<InstId> = func
            .block(merge)
            .insts
            .iter()
            .copied()
            .filter(|&id| matches!(func.inst(id), Inst::Phi { .. }))
            .collect();
        let mut ok = true;
        let mut rewrites = Vec::new();
        for id in &phi_ids {
            let Inst::Phi { ty, incoming } = func.inst(*id) else {
                unreachable!()
            };
            let mut tv = None;
            let mut fv = None;
            for (v, from) in incoming {
                if *from == then_bb {
                    tv = Some(v.clone());
                } else if *from == else_bb {
                    fv = Some(v.clone());
                } else {
                    ok = false;
                }
            }
            match (tv, fv) {
                (Some(t), Some(f)) => rewrites.push((*id, ty.clone(), t, f)),
                _ => ok = false,
            }
        }
        if !ok {
            continue;
        }
        for (id, ty, tval, fval) in rewrites {
            *func.inst_mut(id) = Inst::Select {
                cond: cond.clone(),
                ty,
                tval,
                fval,
            };
            // Move the (former phi, now select) from the merge block to E.
            let pos = func
                .block(merge)
                .insts
                .iter()
                .position(|&i| i == id)
                .expect("in block");
            func.block_mut(merge).insts.remove(pos);
            func.block_mut(e).insts.push(id);
        }
        func.block_mut(e).term = Terminator::Jmp(merge);
        changed = true;
        return changed || phi_to_select(func); // preds are stale; restart
    }
    changed
}

/// Merges `A -> B` when A ends in `br label %B` and B has A as its only
/// predecessor (and B has no phis after single-entry simplification).
pub fn merge_straight_line_blocks(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = func.predecessors();
        let mut merged = false;
        for a in func.block_ids().collect::<Vec<_>>() {
            let Terminator::Jmp(b) = func.block(a).term else {
                continue;
            };
            if b == a || preds[b.index()].len() != 1 {
                continue;
            }
            if func
                .block(b)
                .insts
                .iter()
                .any(|&id| matches!(func.inst(id), Inst::Phi { .. }))
            {
                // Single-entry phis are cleaned by the caller first.
                continue;
            }
            if b == BlockId::ENTRY {
                continue;
            }
            // Move B's instructions into A and take B's terminator.
            let b_insts = std::mem::take(&mut func.block_mut(b).insts);
            func.block_mut(a).insts.extend(b_insts);
            let term = std::mem::replace(&mut func.block_mut(b).term, Terminator::Unreachable);
            // Successors of B now see A as predecessor.
            for succ in term.successors() {
                retarget_phi_edge(func, succ, b, a);
            }
            func.block_mut(a).term = term;
            merged = true;
            changed = true;
            break; // predecessor map is stale
        }
        if !merged {
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::Semantics;
    use frost_ir::{function_to_string, parse_module, Module};
    use frost_refine::{check_refinement, CheckOptions};

    fn run(src: &str, mode: PipelineMode) -> (Module, Module) {
        let before = parse_module(src).unwrap();
        let mut after = before.clone();
        for f in &mut after.functions {
            SimplifyCfg::new(mode).apply(f);
            f.compact();
        }
        (before, after)
    }

    const DIAMOND: &str = r#"
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}
"#;

    #[test]
    fn diamond_becomes_select() {
        let (before, after) = run(DIAMOND, PipelineMode::Fixed);
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("select i1 %c, i4 %a, i4 %b"), "{text}");
        assert!(!text.contains("phi"), "{text}");
        // Sound under the proposed semantics...
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn phi_to_select_is_unsound_under_langref_select() {
        // ...but the very same rewrite violates refinement under the
        // legacy reading where select propagates the unselected arm's
        // poison (§3.4 / PR31632).
        let (before, after) = run(DIAMOND, PipelineMode::Legacy);
        let r = check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::legacy_gvn()),
        );
        let ce = r
            .counterexample()
            .expect("poison arm breaks the legacy reading");
        assert!(ce.args.iter().any(|a| a == &frost_core::Val::Poison));
    }

    #[test]
    fn constant_branch_folds_and_blocks_merge() {
        let (before, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  br i1 true, label %a, label %b
a:
  %r = add i4 %x, 1
  br label %c
b:
  br label %c
c:
  %p = phi i4 [ %r, %a ], [ 0, %b ]
  ret i4 %p
}
"#,
            PipelineMode::Fixed,
        );
        let f = after.function("f").unwrap();
        let text = function_to_string(f);
        assert!(!text.contains("phi"), "{text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
        // Everything collapses into the entry block.
        let live: usize = f
            .block_ids()
            .filter(|&bb| frost_ir::cfg::reachable(f)[bb.index()])
            .count();
        assert_eq!(live, 1, "{text}");
    }

    #[test]
    fn triangle_is_left_alone() {
        // Only the two-empty-arm diamond is handled; a triangle with a
        // side-effecting arm must not be converted.
        let (before, after) = run(
            r#"
declare void @eff()
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %m
t:
  call void @eff()
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %entry ]
  ret i4 %x
}
"#,
            PipelineMode::Fixed,
        );
        let text = function_to_string(after.function("f").unwrap());
        assert!(text.contains("phi"), "side-effecting arm survives: {text}");
        check_refinement(
            &before,
            "f",
            &after,
            "f",
            &CheckOptions::new(Semantics::proposed()),
        )
        .assert_refines();
    }

    #[test]
    fn merge_keeps_verification() {
        let (_, after) = run(
            r#"
define i4 @f(i4 %x) {
entry:
  %a = add i4 %x, 1
  br label %next
next:
  %b = add i4 %a, 1
  br label %last
last:
  ret i4 %b
}
"#,
            PipelineMode::Fixed,
        );
        let f = after.function("f").unwrap();
        assert!(frost_ir::verify::verify_function(f).is_ok());
        assert!(matches!(f.block(BlockId::ENTRY).term, Terminator::Ret(_)));
    }
}
