//! # frost-cc
//!
//! A mini-C frontend for the frost compiler — the Clang stand-in for
//! reproducing *"Taming Undefined Behavior in LLVM"* (PLDI 2017).
//!
//! The C-to-IR undefined-behavior mapping is the one the paper
//! describes: signed arithmetic emits `nsw` (§2.1), pointer arithmetic
//! emits `getelementptr inbounds` (§2.4), and bit-field stores insert a
//! `freeze` of the loaded storage unit — the paper's one-line Clang
//! change (§5.3), toggleable via
//! [`CodegenOptions::freeze_bitfields`](irgen::CodegenOptions) to
//! reproduce the legacy lowering.
//!
//! ```
//! use frost_cc::{compile_source, CodegenOptions};
//!
//! let module = compile_source(
//!     r#"
//! int clamp_add(int a, int b) {
//!     int s = a + b;          // emits add nsw
//!     if (s > 100) s = 100;
//!     return s;
//! }
//! "#,
//!     &CodegenOptions::default(),
//! )?;
//! assert!(frost_ir::function_to_string(module.function("clamp_add").unwrap())
//!     .contains("add nsw i32"));
//! # Ok::<(), frost_cc::CcError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod irgen;
pub mod parse;

pub use ast::{CType, Program};
pub use irgen::{compile, CodegenOptions, CompileError};
pub use parse::{parse_program, CParseError};

/// A frontend failure: parse or codegen.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CcError {
    /// Syntax error.
    Parse(CParseError),
    /// Semantic/codegen error.
    Compile(CompileError),
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcError::Parse(e) => write!(f, "{e}"),
            CcError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CcError {}

/// Parses and compiles mini-C source to a frost IR module.
///
/// # Errors
///
/// Returns [`CcError`] on syntax or semantic errors.
pub fn compile_source(src: &str, opts: &CodegenOptions) -> Result<frost_ir::Module, CcError> {
    let prog = parse_program(src).map_err(CcError::Parse)?;
    compile(&prog, opts).map_err(CcError::Compile)
}

/// Like [`compile_source`], but follows irgen with the light
/// [`frost_opt::cleanup_pipeline`] (InstCombine, SimplifyCFG, DCE) —
/// the Clang-style tidy-up that removes the redundant loads,
/// single-entry phis, and dead temporaries naive lowering produces.
///
/// The cleanup threads `mam` through every pass, so CFG/dominator
/// analyses computed during the sweep are cached and precisely
/// invalidated rather than rebuilt per pass; pass a fresh
/// [`frost_ir::ModuleAnalysisManager`] unless you are interleaving
/// your own analysis queries.
///
/// # Errors
///
/// Returns [`CcError`] on syntax or semantic errors.
pub fn compile_source_cleaned(
    src: &str,
    opts: &CodegenOptions,
    mode: frost_opt::PipelineMode,
    mam: &mut frost_ir::ModuleAnalysisManager,
) -> Result<frost_ir::Module, CcError> {
    let mut module = compile_source(src, opts)?;
    frost_opt::cleanup_pipeline(mode).run_with(&mut module, mam);
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaned_compile_shrinks_ir_and_still_verifies() {
        let src = r#"
int f(int a, int b) {
    int s = a + b;
    int dead = a * 3;
    if (s > 10) s = 10;
    return s;
}
"#;
        let raw = compile_source(src, &CodegenOptions::default()).unwrap();
        let mut mam = frost_ir::ModuleAnalysisManager::new();
        let cleaned = compile_source_cleaned(
            src,
            &CodegenOptions::default(),
            frost_opt::PipelineMode::Fixed,
            &mut mam,
        )
        .unwrap();
        assert!(
            cleaned.inst_count() < raw.inst_count(),
            "cleanup removes the dead multiply: {} vs {}",
            cleaned.inst_count(),
            raw.inst_count()
        );
        for f in &cleaned.functions {
            assert!(frost_ir::verify::verify_function(f).is_ok());
        }
    }
}
