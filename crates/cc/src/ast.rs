//! The abstract syntax of mini-C: the C subset the paper's examples and
//! evaluation workloads are written in.
//!
//! Supported: signed/unsigned integer types of four widths, pointers,
//! structs with bit-fields (accessed through pointers), functions with
//! scalar/pointer parameters, local scalar variables, full expression
//! and structured-statement grammar (`if`/`while`/`for`, short-circuit
//! `&&`/`||`). Not supported (not needed by the evaluation): globals,
//! `goto`, address-of, struct values, floating point (the paper's CFP
//! workloads are integer-ized; see DESIGN.md).

use std::fmt;

/// A mini-C scalar or pointer type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    /// An integer type.
    Int {
        /// Width in bits (8, 16, 32, or 64).
        bits: u32,
        /// Signedness (drives `nsw` emission and division choice).
        signed: bool,
    },
    /// A pointer to a scalar or struct type.
    Ptr(Box<CType>),
    /// A named struct (usable only behind a pointer).
    Struct(String),
    /// The type of `void` functions.
    Void,
}

impl CType {
    /// `int`.
    pub fn int() -> CType {
        CType::Int {
            bits: 32,
            signed: true,
        }
    }

    /// `unsigned`.
    pub fn uint() -> CType {
        CType::Int {
            bits: 32,
            signed: false,
        }
    }

    /// `long`.
    pub fn long() -> CType {
        CType::Int {
            bits: 64,
            signed: true,
        }
    }

    /// Returns `true` for integer types.
    pub fn is_int(&self) -> bool {
        matches!(self, CType::Int { .. })
    }

    /// Returns `true` for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }

    /// Integer width, if an integer.
    pub fn bits(&self) -> Option<u32> {
        match self {
            CType::Int { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// Integer signedness, if an integer.
    pub fn signed(&self) -> Option<bool> {
        match self {
            CType::Int { signed, .. } => Some(*signed),
            _ => None,
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Int {
                bits: 32,
                signed: true,
            } => write!(f, "int"),
            CType::Int {
                bits: 32,
                signed: false,
            } => write!(f, "unsigned"),
            CType::Int {
                bits: 64,
                signed: true,
            } => write!(f, "long"),
            CType::Int {
                bits: 64,
                signed: false,
            } => write!(f, "unsigned long"),
            CType::Int {
                bits: 16,
                signed: true,
            } => write!(f, "short"),
            CType::Int {
                bits: 16,
                signed: false,
            } => write!(f, "unsigned short"),
            CType::Int {
                bits: 8,
                signed: true,
            } => write!(f, "char"),
            CType::Int {
                bits: 8,
                signed: false,
            } => write!(f, "unsigned char"),
            CType::Int { bits, signed } => {
                write!(f, "{}int{bits}", if *signed { "" } else { "u" })
            }
            CType::Ptr(p) => write!(f, "{p}*"),
            CType::Struct(n) => write!(f, "struct {n}"),
            CType::Void => write!(f, "void"),
        }
    }
}

/// One member of a struct.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type (integer for bit-fields).
    pub ty: CType,
    /// Bit-field width, when declared `ty name : width`.
    pub bit_width: Option<u32>,
}

/// A struct definition.
#[derive(Clone, PartialEq, Debug)]
pub struct StructDecl {
    /// Struct tag.
    pub name: String,
    /// Members in declaration order.
    pub fields: Vec<FieldDecl>,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,
    BitNot,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// An integer literal (type `int`, or `long` if suffixed `L`).
    IntLit(i64, CType),
    /// A variable reference.
    Var(String),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A function call.
    Call(String, Vec<Expr>),
    /// Array indexing `base[idx]` (base is a pointer).
    Index(Box<Expr>, Box<Expr>),
    /// `base->field` (base is a struct pointer).
    Arrow(Box<Expr>, String),
    /// An explicit cast `(type)expr`.
    Cast(CType, Box<Expr>),
    /// Ternary `cond ? t : f`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// An assignable location.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// A local variable.
    Var(String),
    /// `base[idx]`.
    Index(Expr, Expr),
    /// `base->field` (including bit-fields: the §5.3 path).
    Arrow(Expr, String),
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl(String, CType, Option<Expr>),
    /// Assignment.
    Assign(LValue, Expr),
    /// Expression evaluated for effect (calls).
    Expr(Expr),
    /// `if`/`else`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) body`.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `return` with optional value.
    Return(Option<Expr>),
}

/// A function parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct ParamDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: CType,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// An external function declaration (`extern int f(int);`).
#[derive(Clone, PartialEq, Debug)]
pub struct ExternDecl {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameter types.
    pub params: Vec<CType>,
}

/// A parsed translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDecl>,
    /// External declarations.
    pub externs: Vec<ExternDecl>,
    /// Function definitions.
    pub functions: Vec<FuncDef>,
}

/// The computed layout of one struct member.
#[derive(Clone, PartialEq, Debug)]
pub enum FieldLayout {
    /// An ordinary member at a byte offset.
    Plain {
        /// Byte offset from the struct start.
        offset: u32,
        /// Member type.
        ty: CType,
    },
    /// A bit-field packed into a 32-bit storage unit (the ABI shape the
    /// paper's §5.3 lowering works on).
    Bits {
        /// Byte offset of the storage unit.
        unit_offset: u32,
        /// Bit offset inside the unit.
        bit_offset: u32,
        /// Field width in bits.
        width: u32,
        /// Signedness of the field.
        signed: bool,
    },
}

/// The layout of a struct: member layouts plus total size.
#[derive(Clone, PartialEq, Debug)]
pub struct StructLayout {
    /// Field name -> layout.
    pub fields: Vec<(String, FieldLayout)>,
    /// Total size in bytes.
    pub size: u32,
}

/// Computes a struct's layout: plain members are naturally aligned;
/// consecutive bit-fields pack LSB-first into 32-bit storage units.
pub fn layout_struct(decl: &StructDecl) -> Result<StructLayout, String> {
    let mut fields = Vec::new();
    let mut offset: u32 = 0; // bytes
    let mut bit_cursor: Option<(u32, u32)> = None; // (unit_offset, bits used)
    for f in &decl.fields {
        match f.bit_width {
            Some(w) => {
                let bits =
                    f.ty.bits()
                        .ok_or_else(|| format!("bit-field {} must have integer type", f.name))?;
                if w == 0 || w > 32 || w > bits {
                    return Err(format!("bit-field {} has invalid width {w}", f.name));
                }
                let (unit, used) = match bit_cursor {
                    Some((unit, used)) if used + w <= 32 => (unit, used),
                    _ => {
                        let unit = align_to(offset, 4);
                        offset = unit + 4;
                        (unit, 0)
                    }
                };
                fields.push((
                    f.name.clone(),
                    FieldLayout::Bits {
                        unit_offset: unit,
                        bit_offset: used,
                        width: w,
                        signed: f.ty.signed().unwrap_or(false),
                    },
                ));
                bit_cursor = Some((unit, used + w));
            }
            None => {
                bit_cursor = None;
                let size = match &f.ty {
                    CType::Int { bits, .. } => bits / 8,
                    CType::Ptr(_) => 4,
                    other => return Err(format!("field {} has unsupported type {other}", f.name)),
                };
                let at = align_to(offset, size);
                fields.push((
                    f.name.clone(),
                    FieldLayout::Plain {
                        offset: at,
                        ty: f.ty.clone(),
                    },
                ));
                offset = at + size;
            }
        }
    }
    Ok(StructLayout {
        fields,
        size: align_to(offset.max(1), 4),
    })
}

fn align_to(v: u32, a: u32) -> u32 {
    v.div_ceil(a) * a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str, ty: CType, w: Option<u32>) -> FieldDecl {
        FieldDecl {
            name: name.into(),
            ty,
            bit_width: w,
        }
    }

    #[test]
    fn bitfields_pack_into_units() {
        let s = StructDecl {
            name: "s".into(),
            fields: vec![
                field("a", CType::int(), Some(3)),
                field("b", CType::uint(), Some(5)),
                field("c", CType::uint(), Some(30)), // does not fit: new unit
            ],
        };
        let l = layout_struct(&s).unwrap();
        assert_eq!(
            l.fields[0].1,
            FieldLayout::Bits {
                unit_offset: 0,
                bit_offset: 0,
                width: 3,
                signed: true
            }
        );
        assert_eq!(
            l.fields[1].1,
            FieldLayout::Bits {
                unit_offset: 0,
                bit_offset: 3,
                width: 5,
                signed: false
            }
        );
        assert_eq!(
            l.fields[2].1,
            FieldLayout::Bits {
                unit_offset: 4,
                bit_offset: 0,
                width: 30,
                signed: false
            }
        );
        assert_eq!(l.size, 8);
    }

    #[test]
    fn plain_fields_are_aligned() {
        let s = StructDecl {
            name: "s".into(),
            fields: vec![
                field(
                    "c",
                    CType::Int {
                        bits: 8,
                        signed: true,
                    },
                    None,
                ),
                field("i", CType::int(), None),
                field(
                    "s",
                    CType::Int {
                        bits: 16,
                        signed: true,
                    },
                    None,
                ),
            ],
        };
        let l = layout_struct(&s).unwrap();
        assert_eq!(
            l.fields[0].1,
            FieldLayout::Plain {
                offset: 0,
                ty: CType::Int {
                    bits: 8,
                    signed: true
                }
            }
        );
        assert_eq!(
            l.fields[1].1,
            FieldLayout::Plain {
                offset: 4,
                ty: CType::int()
            }
        );
        assert_eq!(
            l.fields[2].1,
            FieldLayout::Plain {
                offset: 8,
                ty: CType::Int {
                    bits: 16,
                    signed: true
                }
            }
        );
        assert_eq!(l.size, 12);
    }

    #[test]
    fn mixed_bits_and_plain() {
        let s = StructDecl {
            name: "s".into(),
            fields: vec![
                field("a", CType::uint(), Some(12)),
                field("x", CType::int(), None),
                field("b", CType::uint(), Some(12)),
            ],
        };
        let l = layout_struct(&s).unwrap();
        // a in unit at 0; x at 4; b starts a fresh unit at 8.
        assert!(matches!(
            l.fields[0].1,
            FieldLayout::Bits {
                unit_offset: 0,
                bit_offset: 0,
                ..
            }
        ));
        assert!(matches!(
            l.fields[1].1,
            FieldLayout::Plain { offset: 4, .. }
        ));
        assert!(matches!(
            l.fields[2].1,
            FieldLayout::Bits {
                unit_offset: 8,
                bit_offset: 0,
                ..
            }
        ));
    }

    #[test]
    fn invalid_widths_are_rejected() {
        let s = StructDecl {
            name: "s".into(),
            fields: vec![field("a", CType::int(), Some(33))],
        };
        assert!(layout_struct(&s).is_err());
        let s0 = StructDecl {
            name: "s".into(),
            fields: vec![field("a", CType::int(), Some(0))],
        };
        assert!(layout_struct(&s0).is_err());
    }
}
