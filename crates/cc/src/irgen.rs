//! IR generation from the mini-C AST.
//!
//! The undefined-behavior mapping follows Clang as the paper describes
//! it:
//!
//! * signed `+`/`-`/`*` emit `nsw` (signed overflow is deferred UB,
//!   §2.1's "about one in eight addition instructions");
//! * pointer arithmetic emits `getelementptr inbounds` (§2.4);
//! * **bit-field stores** load the storage unit, **freeze** it, merge,
//!   and store back — the paper's one-line Clang change (§5.3). The
//!   freeze is controlled by [`CodegenOptions::freeze_bitfields`] so
//!   the legacy lowering can be produced for comparison.
//!
//! Local scalars are translated directly to SSA (structured control
//! flow only, so phi placement needs no dominance frontiers).

use std::collections::{HashMap, HashSet};

use frost_ir::{BinOp, Cond, DeclAttrs, Flags, FuncDecl, FunctionBuilder, Module, Ty, Value};

use crate::ast::*;

/// Code-generation options.
#[derive(Clone, Copy, Debug)]
pub struct CodegenOptions {
    /// Insert `freeze` in bit-field store sequences (§5.3). Turning
    /// this off reproduces the pre-paper lowering whose store of an
    /// uninitialized unit is always poison.
    pub freeze_bitfields: bool,
    /// Emit `nsw` on signed arithmetic (and `inbounds` on geps).
    pub emit_wrap_flags: bool,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions {
            freeze_bitfields: true,
            emit_wrap_flags: true,
        }
    }
}

/// A code-generation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

type Result<T> = std::result::Result<T, CompileError>;

fn err<T>(m: impl Into<String>) -> Result<T> {
    Err(CompileError(m.into()))
}

/// Compiles a program to a frost IR module.
///
/// # Errors
///
/// Returns [`CompileError`] on type errors or unsupported constructs.
pub fn compile(prog: &Program, opts: &CodegenOptions) -> Result<Module> {
    let mut layouts = HashMap::new();
    for s in &prog.structs {
        layouts.insert(s.name.clone(), layout_struct(s).map_err(CompileError)?);
    }
    let mut signatures: HashMap<String, (Vec<CType>, CType)> = HashMap::new();
    for e in &prog.externs {
        signatures.insert(e.name.clone(), (e.params.clone(), e.ret.clone()));
    }
    for f in &prog.functions {
        signatures.insert(
            f.name.clone(),
            (
                f.params.iter().map(|p| p.ty.clone()).collect(),
                f.ret.clone(),
            ),
        );
    }

    let mut module = Module::new();
    for e in &prog.externs {
        module.declarations.push(FuncDecl {
            name: e.name.clone(),
            params: e.params.iter().map(ir_ty).collect::<Result<_>>()?,
            ret_ty: ir_ty_ret(&e.ret)?,
            attrs: DeclAttrs {
                readnone: false,
                willreturn: true,
            },
        });
    }
    for f in &prog.functions {
        let cx = FnCx {
            prog_layouts: &layouts,
            signatures: &signatures,
            opts: *opts,
        };
        module.functions.push(cx.gen_function(f)?);
    }
    Ok(module)
}

/// The IR type of a mini-C type. Struct pointers become `i8*` (field
/// access goes through byte geps + bitcasts).
fn ir_ty(t: &CType) -> Result<Ty> {
    match t {
        CType::Int { bits, .. } => Ok(Ty::Int(*bits)),
        CType::Ptr(inner) => match &**inner {
            CType::Struct(_) => Ok(Ty::ptr_to(Ty::i8())),
            other => Ok(Ty::ptr_to(ir_ty(other)?)),
        },
        CType::Struct(n) => err(format!("struct {n} used by value")),
        CType::Void => err("void used as a value type"),
    }
}

fn ir_ty_ret(t: &CType) -> Result<Ty> {
    if *t == CType::Void {
        Ok(Ty::Void)
    } else {
        ir_ty(t)
    }
}

/// A typed SSA value.
#[derive(Clone, Debug)]
struct TV {
    v: Value,
    ty: CType,
}

struct FnCx<'p> {
    prog_layouts: &'p HashMap<String, StructLayout>,
    signatures: &'p HashMap<String, (Vec<CType>, CType)>,
    opts: CodegenOptions,
}

/// Mutable per-function generation state.
struct GenState {
    b: FunctionBuilder,
    /// Flat variable environment (scoping handled by save/restore).
    env: HashMap<String, TV>,
    /// Has the current block been terminated (return emitted)?
    terminated: bool,
    ret: CType,
    /// Counter for unique block labels.
    block_counter: u32,
}

impl GenState {
    fn new_block(&mut self, hint: &str) -> frost_ir::BlockId {
        self.block_counter += 1;
        let name = format!("{hint}{}", self.block_counter);
        self.b.block(&name)
    }
}

impl<'p> FnCx<'p> {
    fn gen_function(&self, f: &FuncDef) -> Result<frost_ir::Function> {
        let params: Vec<(String, Ty)> = f
            .params
            .iter()
            .map(|p| Ok((p.name.clone(), ir_ty(&p.ty)?)))
            .collect::<Result<_>>()?;
        let param_refs: Vec<(&str, Ty)> = params
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        let b = FunctionBuilder::new(&f.name, &param_refs, ir_ty_ret(&f.ret)?);
        let mut st = GenState {
            b,
            env: HashMap::new(),
            terminated: false,
            ret: f.ret.clone(),
            block_counter: 0,
        };
        for (i, p) in f.params.iter().enumerate() {
            st.env.insert(
                p.name.clone(),
                TV {
                    v: st.b.arg(i as u32),
                    ty: p.ty.clone(),
                },
            );
        }
        self.gen_stmts(&mut st, &f.body)?;
        if !st.terminated {
            if f.ret == CType::Void {
                st.b.ret_void();
            } else {
                // Falling off a non-void function: C says the value is
                // unspecified; executing the implicit return without
                // using the value is fine — model as returning poison.
                let ty = ir_ty(&f.ret)?;
                st.b.ret(Value::poison(ty));
            }
        }
        let func = st.b.finish();
        frost_ir::verify::verify_function_legacy(&func).map_err(|e| {
            CompileError(format!(
                "internal: generated IR fails verification: {}\n{}",
                e.join("; "),
                func
            ))
        })?;
        Ok(func)
    }

    fn gen_stmts(&self, st: &mut GenState, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            if st.terminated {
                break; // unreachable statements are dropped
            }
            self.gen_stmt(st, s)?;
        }
        Ok(())
    }

    fn gen_stmt(&self, st: &mut GenState, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Decl(name, ty, init) => {
                let v = match init {
                    Some(e) => {
                        let tv = self.gen_expr(st, e)?;
                        self.convert(st, tv, ty)?
                    }
                    None => {
                        // Uninitialized local: poison until assigned.
                        TV {
                            v: Value::poison(ir_ty(ty)?),
                            ty: ty.clone(),
                        }
                    }
                };
                st.env.insert(
                    name.clone(),
                    TV {
                        v: v.v,
                        ty: ty.clone(),
                    },
                );
                Ok(())
            }
            Stmt::Assign(lv, e) => self.gen_assign(st, lv, e),
            Stmt::Expr(e) => {
                self.gen_expr(st, e)?;
                Ok(())
            }
            Stmt::Return(e) => {
                match (e, st.ret.clone()) {
                    (None, CType::Void) => st.b.ret_void(),
                    (Some(e), ret_ty) => {
                        let tv = self.gen_expr(st, e)?;
                        let tv = self.convert(st, tv, &ret_ty)?;
                        st.b.ret(tv.v);
                    }
                    (None, _) => return err("return without a value in a non-void function"),
                }
                st.terminated = true;
                Ok(())
            }
            Stmt::If(cond, then_s, else_s) => self.gen_if(st, cond, then_s, else_s),
            Stmt::While(cond, body) => self.gen_while(st, cond, body),
            Stmt::For(init, cond, step, body) => {
                // Scoped desugaring to while.
                let saved: Option<TV> = match &**init {
                    Stmt::Decl(n, _, _) => st.env.get(n).cloned(),
                    _ => None,
                };
                self.gen_stmt(st, init)?;
                let mut body2 = body.to_vec();
                body2.push((**step).clone());
                self.gen_while(st, cond, &body2)?;
                if let (Stmt::Decl(n, _, _), Some(old)) = (&**init, saved) {
                    st.env.insert(n.clone(), old);
                }
                Ok(())
            }
        }
    }

    fn gen_if(
        &self,
        st: &mut GenState,
        cond: &Expr,
        then_s: &[Stmt],
        else_s: &[Stmt],
    ) -> Result<()> {
        let c = self.gen_cond(st, cond)?;
        let then_bb = st.new_block("if.then.");
        let else_bb = st.new_block("if.else.");
        let merge_bb = st.new_block("if.end.");
        st.b.br(c, then_bb, else_bb);

        let outer_env = st.env.clone();

        st.b.switch_to(then_bb);
        st.terminated = false;
        self.gen_stmts(st, then_s)?;
        let then_end = st.b.current_block();
        let then_term = st.terminated;
        let then_env = st.env.clone();
        if !then_term {
            st.b.jmp(merge_bb);
        }

        st.env = outer_env.clone();
        st.b.switch_to(else_bb);
        st.terminated = false;
        self.gen_stmts(st, else_s)?;
        let else_end = st.b.current_block();
        let else_term = st.terminated;
        let else_env = st.env.clone();
        if !else_term {
            st.b.jmp(merge_bb);
        }

        st.b.switch_to(merge_bb);
        st.terminated = then_term && else_term;
        if st.terminated {
            st.b.unreachable();
            return Ok(());
        }
        // Merge environments with phis for outer variables (sorted for
        // deterministic output — codegen must not depend on hash order).
        let mut merged = HashMap::new();
        let mut names: Vec<&String> = outer_env.keys().collect();
        names.sort();
        for name in names {
            let outer = &outer_env[name];
            let tv_then = then_env.get(name).unwrap_or(outer);
            let tv_else = else_env.get(name).unwrap_or(outer);
            let v = match (then_term, else_term) {
                (true, false) => tv_else.v.clone(),
                (false, true) => tv_then.v.clone(),
                _ if tv_then.v == tv_else.v => tv_then.v.clone(),
                _ => {
                    let ty = ir_ty(&outer.ty)?;
                    st.b.phi(
                        ty,
                        vec![(tv_then.v.clone(), then_end), (tv_else.v.clone(), else_end)],
                    )
                }
            };
            merged.insert(
                name.clone(),
                TV {
                    v,
                    ty: outer.ty.clone(),
                },
            );
        }
        st.env = merged;
        Ok(())
    }

    fn gen_while(&self, st: &mut GenState, cond: &Expr, body: &[Stmt]) -> Result<()> {
        let head = st.new_block("while.head.");
        let body_bb = st.new_block("while.body.");
        let exit = st.new_block("while.end.");
        let preheader = st.b.current_block();
        st.b.jmp(head);

        // Variables (of the outer env) assigned in the body get header
        // phis.
        let mut bound = HashSet::new();
        let mut assigned_set = HashSet::new();
        assigned_free_vars(body, &mut bound, &mut assigned_set);
        let mut assigned: Vec<String> = assigned_set.into_iter().collect();
        assigned.sort();
        let mut phis: Vec<(String, Value)> = Vec::new();

        st.b.switch_to(head);
        for name in assigned.iter() {
            let Some(outer) = st.env.get(name).cloned() else {
                continue;
            };
            let ty = ir_ty(&outer.ty)?;
            let phi = st.b.phi(ty, vec![(outer.v.clone(), preheader)]);
            st.env.insert(
                name.clone(),
                TV {
                    v: phi.clone(),
                    ty: outer.ty,
                },
            );
            phis.push((name.clone(), phi));
        }
        let head_env = st.env.clone();
        // The condition may create blocks of its own (short-circuit
        // `&&`/`||`); the loop branch goes at its end. The header phis
        // stay in `head`, the back-edge target.
        let c = self.gen_cond(st, cond)?;
        st.b.br(c, body_bb, exit);

        st.b.switch_to(body_bb);
        st.terminated = false;
        self.gen_stmts(st, body)?;
        let latch = st.b.current_block();
        if !st.terminated {
            // Back-fill the phis from the latch.
            for (name, phi) in &phis {
                let cur = st.env.get(name).expect("variable still bound").v.clone();
                st.b.phi_add_incoming(phi, cur, latch);
            }
            st.b.jmp(head);
        }

        st.b.switch_to(exit);
        st.terminated = false;
        st.env = head_env;
        Ok(())
    }

    /// Generates an `i1` for a C condition (short-circuiting as
    /// control flow).
    fn gen_cond(&self, st: &mut GenState, e: &Expr) -> Result<Value> {
        match e {
            Expr::Binary(op, l, r)
                if matches!(
                    op,
                    BinaryOp::Lt
                        | BinaryOp::Le
                        | BinaryOp::Gt
                        | BinaryOp::Ge
                        | BinaryOp::Eq
                        | BinaryOp::Ne
                ) =>
            {
                let (lv, rv, signed) = self.usual_conversions(st, l, r)?;
                let cond = cond_for(*op, signed);
                Ok(st.b.icmp(cond, lv.v, rv.v))
            }
            Expr::Unary(UnaryOp::Not, inner) => {
                let c = self.gen_cond(st, inner)?;
                Ok(st.b.xor(c, Value::bool(true)))
            }
            Expr::Binary(BinaryOp::LogicalAnd, l, r) => {
                // l ? (bool)r : false
                let lc = self.gen_cond(st, l)?;
                let rhs_bb = st.new_block("and.rhs.");
                let merge = st.new_block("and.end.");
                let from = st.b.current_block();
                st.b.br(lc, rhs_bb, merge);
                st.b.switch_to(rhs_bb);
                let rc = self.gen_cond(st, r)?;
                let rhs_end = st.b.current_block();
                st.b.jmp(merge);
                st.b.switch_to(merge);
                Ok(st
                    .b
                    .phi(Ty::i1(), vec![(Value::bool(false), from), (rc, rhs_end)]))
            }
            Expr::Binary(BinaryOp::LogicalOr, l, r) => {
                let lc = self.gen_cond(st, l)?;
                let rhs_bb = st.new_block("or.rhs.");
                let merge = st.new_block("or.end.");
                let from = st.b.current_block();
                st.b.br(lc, merge, rhs_bb);
                st.b.switch_to(rhs_bb);
                let rc = self.gen_cond(st, r)?;
                let rhs_end = st.b.current_block();
                st.b.jmp(merge);
                st.b.switch_to(merge);
                Ok(st
                    .b
                    .phi(Ty::i1(), vec![(Value::bool(true), from), (rc, rhs_end)]))
            }
            other => {
                let tv = self.gen_expr(st, other)?;
                if !tv.ty.is_int() && !tv.ty.is_ptr() {
                    return err(format!("condition of type {} is not scalar", tv.ty));
                }
                if tv.ty.is_ptr() {
                    let ty = ir_ty(&tv.ty)?;
                    return Ok(st.b.icmp(
                        Cond::Ne,
                        tv.v,
                        Value::Const(frost_ir::Constant::Null(ty)),
                    ));
                }
                let bits = tv.ty.bits().expect("int");
                Ok(st.b.icmp(Cond::Ne, tv.v, Value::int(bits, 0)))
            }
        }
    }

    fn gen_expr(&self, st: &mut GenState, e: &Expr) -> Result<TV> {
        match e {
            Expr::IntLit(v, ty) => {
                let bits = ty.bits().expect("literal is int");
                Ok(TV {
                    v: Value::int(bits, *v as u128),
                    ty: ty.clone(),
                })
            }
            Expr::Var(n) => st
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| CompileError(format!("unknown variable '{n}'"))),
            Expr::Cast(ty, inner) => {
                let tv = self.gen_expr(st, inner)?;
                self.convert(st, tv, ty)
            }
            Expr::Unary(UnaryOp::Neg, inner) => {
                let tv = self.gen_expr(st, inner)?;
                let bits = tv
                    .ty
                    .bits()
                    .ok_or(CompileError("negating a pointer".into()))?;
                let flags = self.signed_flags(&tv.ty);
                let v = st.b.bin(BinOp::Sub, flags, Value::int(bits, 0), tv.v);
                Ok(TV { v, ty: tv.ty })
            }
            Expr::Unary(UnaryOp::BitNot, inner) => {
                let tv = self.gen_expr(st, inner)?;
                let bits = tv.ty.bits().ok_or(CompileError("~ on a pointer".into()))?;
                let v = st.b.xor(tv.v, Value::int(bits, u128::MAX));
                Ok(TV { v, ty: tv.ty })
            }
            Expr::Unary(UnaryOp::Not, _)
            | Expr::Binary(
                BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr,
                _,
                _,
            ) => {
                // A boolean used as a value: zext to int.
                let c = self.gen_cond(st, e)?;
                let v = st.b.zext(c, Ty::i32());
                Ok(TV {
                    v,
                    ty: CType::int(),
                })
            }
            Expr::Binary(op, l, r) => {
                let (lv, rv, signed) = self.usual_conversions(st, l, r)?;
                let bits = lv
                    .ty
                    .bits()
                    .ok_or(CompileError("arithmetic on pointers".into()))?;
                let _ = bits;
                let (irop, flags) = match op {
                    BinaryOp::Add => (BinOp::Add, self.signed_flags(&lv.ty)),
                    BinaryOp::Sub => (BinOp::Sub, self.signed_flags(&lv.ty)),
                    BinaryOp::Mul => (BinOp::Mul, self.signed_flags(&lv.ty)),
                    BinaryOp::Div => (if signed { BinOp::SDiv } else { BinOp::UDiv }, Flags::NONE),
                    BinaryOp::Rem => (if signed { BinOp::SRem } else { BinOp::URem }, Flags::NONE),
                    BinaryOp::Shl => (BinOp::Shl, Flags::NONE),
                    BinaryOp::Shr => (if signed { BinOp::AShr } else { BinOp::LShr }, Flags::NONE),
                    BinaryOp::And => (BinOp::And, Flags::NONE),
                    BinaryOp::Or => (BinOp::Or, Flags::NONE),
                    BinaryOp::Xor => (BinOp::Xor, Flags::NONE),
                    _ => unreachable!("comparisons handled above"),
                };
                let v = st.b.bin(irop, flags, lv.v, rv.v);
                Ok(TV { v, ty: lv.ty })
            }
            Expr::Index(base, idx) => {
                let (ptr, elem_ty) = self.gen_index_ptr(st, base, idx)?;
                let ir = ir_ty(&elem_ty)?;
                let v = st.b.load(ir, ptr);
                Ok(TV { v, ty: elem_ty })
            }
            Expr::Arrow(base, field) => self.gen_field_load(st, base, field),
            Expr::Ternary(c, t, f) => {
                // Lower as control flow (either arm may have effects).
                let cv = self.gen_cond(st, c)?;
                let t_bb = st.new_block("sel.t.");
                let f_bb = st.new_block("sel.f.");
                let m_bb = st.new_block("sel.end.");
                st.b.br(cv, t_bb, f_bb);
                st.b.switch_to(t_bb);
                let tv = self.gen_expr(st, t)?;
                let t_end = st.b.current_block();
                st.b.switch_to(f_bb);
                let fv = self.gen_expr(st, f)?;
                let fv = self.convert(st, fv, &tv.ty)?;
                let f_end = st.b.current_block();
                st.b.switch_to(t_end);
                st.b.jmp(m_bb);
                st.b.switch_to(f_end);
                st.b.jmp(m_bb);
                st.b.switch_to(m_bb);
                let ty = ir_ty(&tv.ty)?;
                let v = st.b.phi(ty, vec![(tv.v, t_end), (fv.v, f_end)]);
                Ok(TV { v, ty: tv.ty })
            }
            Expr::Call(name, args) => {
                let (param_tys, ret) = self
                    .signatures
                    .get(name)
                    .cloned()
                    .ok_or_else(|| CompileError(format!("unknown function '{name}'")))?;
                if param_tys.len() != args.len() {
                    return err(format!("wrong argument count for '{name}'"));
                }
                let mut vals = Vec::with_capacity(args.len());
                for (a, pty) in args.iter().zip(&param_tys) {
                    let tv = self.gen_expr(st, a)?;
                    vals.push(self.convert(st, tv, pty)?.v);
                }
                let ret_ir = ir_ty_ret(&ret)?;
                let v = st.b.call(ret_ir, name, vals);
                Ok(TV {
                    v,
                    ty: if ret == CType::Void {
                        CType::int()
                    } else {
                        ret
                    },
                })
            }
        }
    }

    fn gen_assign(&self, st: &mut GenState, lv: &LValue, e: &Expr) -> Result<()> {
        match lv {
            LValue::Var(n) => {
                let target_ty = st
                    .env
                    .get(n)
                    .map(|tv| tv.ty.clone())
                    .ok_or_else(|| CompileError(format!("unknown variable '{n}'")))?;
                let tv = self.gen_expr(st, e)?;
                let tv = self.convert(st, tv, &target_ty)?;
                st.env.insert(
                    n.clone(),
                    TV {
                        v: tv.v,
                        ty: target_ty,
                    },
                );
                Ok(())
            }
            LValue::Index(base, idx) => {
                let (ptr, elem_ty) = self.gen_index_ptr(st, base, idx)?;
                let tv = self.gen_expr(st, e)?;
                let tv = self.convert(st, tv, &elem_ty)?;
                st.b.store(tv.v, ptr);
                Ok(())
            }
            LValue::Arrow(base, field) => self.gen_field_store(st, base, field, e),
        }
    }

    /// Pointer + element type for `base[idx]`.
    fn gen_index_ptr(&self, st: &mut GenState, base: &Expr, idx: &Expr) -> Result<(Value, CType)> {
        let b = self.gen_expr(st, base)?;
        let CType::Ptr(elem) = b.ty.clone() else {
            return err(format!("indexing a non-pointer of type {}", b.ty));
        };
        if matches!(*elem, CType::Struct(_)) {
            return err("indexing arrays of structs is not supported");
        }
        let i = self.gen_expr(st, idx)?;
        if !i.ty.is_int() {
            return err("array index must be an integer");
        }
        // Pointer-width (64-bit ptrdiff) index arithmetic: narrow
        // indices are sign-extended — the per-iteration `cltq` that
        // §2.4/Figure 3's induction-variable widening exists to remove.
        let i = self.convert(st, i, &CType::long())?;
        let ptr = st.b.gep(b.v, i.v, self.opts.emit_wrap_flags);
        Ok((ptr, (*elem).clone()))
    }

    fn field_layout(&self, base_ty: &CType, field: &str) -> Result<(FieldLayout, String)> {
        let CType::Ptr(inner) = base_ty else {
            return err(format!("-> on non-pointer type {base_ty}"));
        };
        let CType::Struct(sname) = &**inner else {
            return err(format!("-> on non-struct pointer {base_ty}"));
        };
        let layout = self
            .prog_layouts
            .get(sname)
            .ok_or_else(|| CompileError(format!("unknown struct '{sname}'")))?;
        let fl = layout
            .fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, l)| l.clone())
            .ok_or_else(|| CompileError(format!("struct {sname} has no field '{field}'")))?;
        Ok((fl, sname.clone()))
    }

    /// Byte-offset pointer into a struct, bitcast to `as_ty*`.
    fn gen_member_ptr(
        &self,
        st: &mut GenState,
        base: Value,
        offset: u32,
        as_ty: Ty,
    ) -> Result<Value> {
        let p = if offset == 0 {
            base
        } else {
            st.b.gep(
                base,
                Value::int(32, u128::from(offset)),
                self.opts.emit_wrap_flags,
            )
        };
        if as_ty == Ty::i8() {
            Ok(p)
        } else {
            Ok(st.b.bitcast(p, Ty::ptr_to(as_ty)))
        }
    }

    fn gen_field_load(&self, st: &mut GenState, base: &Expr, field: &str) -> Result<TV> {
        let b = self.gen_expr(st, base)?;
        let (fl, _) = self.field_layout(&b.ty, field)?;
        match fl {
            FieldLayout::Plain { offset, ty } => {
                let ir = ir_ty(&ty)?;
                let ptr = self.gen_member_ptr(st, b.v, offset, ir.clone())?;
                let v = st.b.load(ir, ptr);
                Ok(TV { v, ty })
            }
            FieldLayout::Bits {
                unit_offset,
                bit_offset,
                width,
                signed,
            } => {
                let ptr = self.gen_member_ptr(st, b.v, unit_offset, Ty::i32())?;
                let unit = st.b.load(Ty::i32(), ptr);
                // Extract [bit_offset, bit_offset+width).
                let v = if signed {
                    let up =
                        st.b.shl(unit, Value::int(32, u128::from(32 - bit_offset - width)));
                    st.b.ashr(up, Value::int(32, u128::from(32 - width)))
                } else {
                    let down = st.b.lshr(unit, Value::int(32, u128::from(bit_offset)));
                    st.b.and(down, Value::int(32, (1u128 << width) - 1))
                };
                Ok(TV {
                    v,
                    ty: CType::Int { bits: 32, signed },
                })
            }
        }
    }

    /// §5.3: the bit-field store sequence. `f->field = e` with a
    /// bit-field lowers to
    ///
    /// ```text
    ///   %val  = load i32, %unit
    ///   %val2 = freeze i32 %val        ; the paper's one-line change
    ///   ...mask/merge %val2 and %e...
    ///   store i32 %val3, %unit
    /// ```
    fn gen_field_store(&self, st: &mut GenState, base: &Expr, field: &str, e: &Expr) -> Result<()> {
        let b = self.gen_expr(st, base)?;
        let (fl, _) = self.field_layout(&b.ty, field)?;
        match fl {
            FieldLayout::Plain { offset, ty } => {
                let ir = ir_ty(&ty)?;
                let ptr = self.gen_member_ptr(st, b.v, offset, ir)?;
                let tv = self.gen_expr(st, e)?;
                let tv = self.convert(st, tv, &ty)?;
                st.b.store(tv.v, ptr);
                Ok(())
            }
            FieldLayout::Bits {
                unit_offset,
                bit_offset,
                width,
                signed,
            } => {
                let ptr = self.gen_member_ptr(st, b.v, unit_offset, Ty::i32())?;
                let loaded = st.b.load(Ty::i32(), ptr.clone());
                // The unit may be uninitialized (poison): without the
                // freeze, the very first bit-field store would poison
                // every neighbouring field forever (§5.3).
                let unit = if self.opts.freeze_bitfields {
                    st.b.freeze(loaded)
                } else {
                    loaded
                };
                let tv = self.gen_expr(st, e)?;
                let tv = self.convert(st, tv, &CType::Int { bits: 32, signed })?;
                let mask: u128 = (1u128 << width) - 1;
                let cleared = st.b.and(unit, Value::int(32, !(mask << bit_offset)));
                let masked = st.b.and(tv.v, Value::int(32, mask));
                let placed = if bit_offset == 0 {
                    masked
                } else {
                    st.b.shl(masked, Value::int(32, u128::from(bit_offset)))
                };
                let merged = st.b.or(cleared, placed);
                st.b.store(merged, ptr);
                Ok(())
            }
        }
    }

    fn signed_flags(&self, ty: &CType) -> Flags {
        if self.opts.emit_wrap_flags && ty.signed() == Some(true) {
            Flags::NSW
        } else {
            Flags::NONE
        }
    }

    /// The usual arithmetic conversions: both operands to the common
    /// type; returns the converted operands and the signedness.
    fn usual_conversions(&self, st: &mut GenState, l: &Expr, r: &Expr) -> Result<(TV, TV, bool)> {
        let lv = self.gen_expr(st, l)?;
        let rv = self.gen_expr(st, r)?;
        // Pointer comparisons compare addresses.
        if lv.ty.is_ptr() && rv.ty.is_ptr() {
            return Ok((lv.clone(), rv, true));
        }
        let (lb, ls) = (lv.ty.bits().unwrap_or(32), lv.ty.signed().unwrap_or(true));
        let (rb, rs) = (rv.ty.bits().unwrap_or(32), rv.ty.signed().unwrap_or(true));
        // Promote to at least int, then to the larger; unsigned wins at
        // equal rank.
        let bits = lb.max(rb).max(32);
        let signed = if lb.max(32) == rb.max(32) {
            ls && rs
        } else if lb > rb {
            ls
        } else {
            rs
        };
        let target = CType::Int { bits, signed };
        let lc = self.convert(st, lv, &target)?;
        let rc = self.convert(st, rv, &target)?;
        Ok((lc, rc, signed))
    }

    /// Converts a value to `target` (integer widen/narrow; pointers
    /// only to themselves).
    fn convert(&self, st: &mut GenState, tv: TV, target: &CType) -> Result<TV> {
        if tv.ty == *target {
            return Ok(tv);
        }
        match (&tv.ty, target) {
            (
                CType::Int {
                    bits: fb,
                    signed: fs,
                },
                CType::Int { bits: tb, .. },
            ) => {
                let v = if tb > fb {
                    if *fs {
                        st.b.sext(tv.v, Ty::Int(*tb))
                    } else {
                        st.b.zext(tv.v, Ty::Int(*tb))
                    }
                } else if tb < fb {
                    st.b.trunc(tv.v, Ty::Int(*tb))
                } else {
                    tv.v // same width, signedness reinterpreted
                };
                Ok(TV {
                    v,
                    ty: target.clone(),
                })
            }
            (CType::Ptr(_), CType::Ptr(_)) => {
                // Pointer casts reinterpret; both are 32-bit.
                let ir = ir_ty(target)?;
                let v = st.b.bitcast(tv.v, ir);
                Ok(TV {
                    v,
                    ty: target.clone(),
                })
            }
            (from, to) => err(format!("cannot convert {from} to {to}")),
        }
    }
}

fn cond_for(op: BinaryOp, signed: bool) -> Cond {
    match (op, signed) {
        (BinaryOp::Eq, _) => Cond::Eq,
        (BinaryOp::Ne, _) => Cond::Ne,
        (BinaryOp::Lt, true) => Cond::Slt,
        (BinaryOp::Lt, false) => Cond::Ult,
        (BinaryOp::Le, true) => Cond::Sle,
        (BinaryOp::Le, false) => Cond::Ule,
        (BinaryOp::Gt, true) => Cond::Sgt,
        (BinaryOp::Gt, false) => Cond::Ugt,
        (BinaryOp::Ge, true) => Cond::Sge,
        (BinaryOp::Ge, false) => Cond::Uge,
        _ => unreachable!("not a comparison"),
    }
}

/// Collects variables assigned in `stmts` that are *free* (not locally
/// declared), for loop phi placement.
fn assigned_free_vars(stmts: &[Stmt], bound: &mut HashSet<String>, out: &mut HashSet<String>) {
    let snapshot = bound.clone();
    for s in stmts {
        match s {
            Stmt::Decl(n, _, _) => {
                bound.insert(n.clone());
            }
            Stmt::Assign(LValue::Var(n), _) => {
                if !bound.contains(n) {
                    out.insert(n.clone());
                }
            }
            Stmt::Assign(_, _) | Stmt::Expr(_) | Stmt::Return(_) => {}
            Stmt::If(_, t, e) => {
                assigned_free_vars(t, bound, out);
                assigned_free_vars(e, bound, out);
            }
            Stmt::While(_, b) => assigned_free_vars(b, bound, out),
            Stmt::For(init, _, step, b) => {
                let mut inner = bound.clone();
                assigned_free_vars(std::slice::from_ref(init), &mut inner, out);
                assigned_free_vars(b, &mut inner, out);
                assigned_free_vars(std::slice::from_ref(step), &mut inner, out);
            }
        }
    }
    *bound = snapshot;
}
